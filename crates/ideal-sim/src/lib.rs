//! The Section-4 idealized PBBF simulator.
//!
//! The paper's analytical section is backed by "idealized simulations": a
//! grid network with an **ideal MAC and physical layer — no collisions or
//! interference** — running IEEE 802.11 PSM as the sleep-scheduling
//! protocol with PBBF layered on top. This crate reproduces that
//! simulator.
//!
//! # Model
//!
//! Time is divided into frames of `T_frame` seconds. Each frame opens with
//! an active (ATIM) window of `T_active` seconds in which every node is
//! awake; the remainder is the data phase. Within a frame:
//!
//! * A node holding a packet queued for *normal* broadcast announces it in
//!   the ATIM window and transmits at `T_active + L1` (channel access time
//!   `L1`); **all** its neighbors receive it, having heard the ATIM.
//! * A node that decides to forward *immediately* (probability `p`)
//!   transmits `L1` seconds after its own reception, still inside the
//!   current data phase; only neighbors that are **awake** at that instant
//!   receive it — nodes whose `q`-coin kept them on, nodes busy with their
//!   own traffic, and announced receivers still within their listening
//!   window. Immediate forwards can chain multiple hops per frame; a
//!   forward that would overrun the frame is deferred to a normal
//!   broadcast in the next frame.
//! * Duplicate receptions are dropped (each broadcast traverses each link
//!   at most once — the bond-percolation structure of Section 4.1).
//!
//! Energy is billed per node with the Table-1 Mica2 power profile: the
//! active window and `q`-retained data phases at `P_I`, sleep at `P_S`,
//! transmissions at `P_TX`, plus the marginal awake time caused by the
//! update's own traffic. Per-update energy is the steady-state share: one
//! inter-update interval (`1/λ`) of baseline duty-cycle energy plus the
//! full marginal cost of one dissemination.
//!
//! # Examples
//!
//! ```
//! use pbbf_core::PbbfParams;
//! use pbbf_ideal_sim::{IdealConfig, IdealSim, Mode};
//!
//! let mut cfg = IdealConfig::table1();
//! cfg.grid_side = 15; // keep the doctest fast
//! cfg.updates = 2;
//! let sim = IdealSim::new(cfg, Mode::SleepScheduled(PbbfParams::PSM));
//! let stats = sim.run(42);
//! // Plain PSM delivers every update to every node.
//! assert_eq!(stats.fraction_of_updates_with_reliability(1.0), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dissemination;
mod sim;
mod stats;

pub use config::{IdealConfig, Mode};
pub use sim::IdealSim;
pub use stats::{RunStats, UpdateStats};
