//! Run statistics and the figure-level aggregations.

use pbbf_metrics::Summary;
use pbbf_topology::NodeId;

/// Everything measured about one update's dissemination.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStats {
    /// Per node: `(latency from generation, links traversed)` of the first
    /// delivered copy; `None` if the update never reached the node. The
    /// source holds `Some((0.0, 0))`.
    pub received: Vec<Option<(f64, u32)>>,
    /// Energy billed to this update, averaged per node (J).
    pub energy_joules_per_node: f64,
    /// Immediate (unannounced) transmissions.
    pub immediate_tx: u64,
    /// Normal (announced) transmissions.
    pub normal_tx: u64,
    /// Immediate forwards demoted to normal because they would have
    /// overrun the data phase.
    pub deferred_immediates: u64,
    /// Frames the dissemination occupied.
    pub frames_used: u32,
}

impl UpdateStats {
    /// Fraction of nodes (including the source) that received the update.
    #[must_use]
    pub fn delivered_fraction(&self) -> f64 {
        let n = self.received.len();
        if n == 0 {
            return 0.0;
        }
        self.received.iter().flatten().count() as f64 / n as f64
    }

    /// Total transmissions of any kind.
    #[must_use]
    pub fn total_tx(&self) -> u64 {
        self.immediate_tx + self.normal_tx
    }
}

/// The result of one seeded run: several updates over one topology.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Shortest-path (BFS) distance of every node from the source.
    pub shortest: Vec<u32>,
    /// The broadcast source.
    pub source: NodeId,
    /// Per-update measurements.
    pub updates: Vec<UpdateStats>,
}

impl RunStats {
    /// Figure 4/5 metric: the fraction of updates that reached at least
    /// `reliability` of all nodes.
    ///
    /// # Panics
    ///
    /// Panics if `reliability` is outside `(0, 1]`.
    #[must_use]
    pub fn fraction_of_updates_with_reliability(&self, reliability: f64) -> f64 {
        assert!(
            reliability > 0.0 && reliability <= 1.0,
            "reliability {reliability} outside (0, 1]"
        );
        if self.updates.is_empty() {
            return 0.0;
        }
        let hits = self
            .updates
            .iter()
            .filter(|u| u.delivered_fraction() >= reliability - 1e-12)
            .count();
        hits as f64 / self.updates.len() as f64
    }

    /// Figure 8 metric: mean per-node energy per update (J).
    #[must_use]
    pub fn mean_energy_per_update(&self) -> f64 {
        self.updates
            .iter()
            .map(|u| u.energy_joules_per_node)
            .collect::<Summary>()
            .mean()
    }

    /// Mean delivered fraction across updates (the Figure 16 metric of the
    /// realistic simulator, also informative here).
    #[must_use]
    pub fn mean_delivered_fraction(&self) -> f64 {
        self.updates
            .iter()
            .map(UpdateStats::delivered_fraction)
            .collect::<Summary>()
            .mean()
    }

    /// Figure 9/10 metric: mean links traversed by delivered copies over
    /// nodes at shortest distance `d`, together with how many such nodes
    /// exist and how many were reached. Returns `None` when the grid has
    /// no node at that distance or none were ever reached.
    #[must_use]
    pub fn mean_hops_at_distance(&self, d: u32) -> Option<f64> {
        let mut s = Summary::new();
        for u in &self.updates {
            for (i, r) in u.received.iter().enumerate() {
                if self.shortest[i] == d {
                    if let Some((_, hops)) = r {
                        s.record(f64::from(*hops));
                    }
                }
            }
        }
        (!s.is_empty()).then(|| s.mean())
    }

    /// Number of nodes at shortest distance `d` from the source (the "
    /// Number of 20-Hop Nodes in Grid" annotation of Figs 9/10).
    #[must_use]
    pub fn nodes_at_distance(&self, d: u32) -> usize {
        self.shortest.iter().filter(|&&x| x == d).count()
    }

    /// Figure 11 metric: mean per-hop latency (delivery latency divided by
    /// links traversed) over all delivered non-source copies. `None` if
    /// nothing was delivered beyond the source.
    #[must_use]
    pub fn mean_per_hop_latency(&self) -> Option<f64> {
        let mut s = Summary::new();
        for u in &self.updates {
            for r in u.received.iter().flatten() {
                let (latency, hops) = *r;
                if hops > 0 {
                    s.record(latency / f64::from(hops));
                }
            }
        }
        (!s.is_empty()).then(|| s.mean())
    }

    /// Mean delivery latency over nodes at shortest distance `d` (the
    /// Figure 14/15 metric, applied to the grid). `None` if none reached.
    #[must_use]
    pub fn mean_latency_at_distance(&self, d: u32) -> Option<f64> {
        let mut s = Summary::new();
        for u in &self.updates {
            for (i, r) in u.received.iter().enumerate() {
                if self.shortest[i] == d {
                    if let Some((latency, _)) = r {
                        s.record(*latency);
                    }
                }
            }
        }
        (!s.is_empty()).then(|| s.mean())
    }

    /// Mean transmissions per update (for the duplicate-suppression
    /// ablation).
    #[must_use]
    pub fn mean_total_tx(&self) -> f64 {
        self.updates
            .iter()
            .map(|u| u.total_tx() as f64)
            .collect::<Summary>()
            .mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(received: Vec<Vec<Option<(f64, u32)>>>, shortest: Vec<u32>) -> RunStats {
        RunStats {
            shortest,
            source: NodeId(0),
            updates: received
                .into_iter()
                .map(|r| UpdateStats {
                    received: r,
                    energy_joules_per_node: 1.0,
                    immediate_tx: 2,
                    normal_tx: 3,
                    deferred_immediates: 0,
                    frames_used: 1,
                })
                .collect(),
        }
    }

    #[test]
    fn delivered_fraction_counts_source() {
        let u = UpdateStats {
            received: vec![Some((0.0, 0)), Some((1.0, 1)), None, None],
            energy_joules_per_node: 0.0,
            immediate_tx: 0,
            normal_tx: 0,
            deferred_immediates: 0,
            frames_used: 0,
        };
        assert_eq!(u.delivered_fraction(), 0.5);
        assert_eq!(u.total_tx(), 0);
    }

    #[test]
    fn reliability_fraction_thresholds() {
        let s = stats_with(
            vec![
                vec![Some((0.0, 0)), Some((1.0, 1)), Some((2.0, 2))], // 100%
                vec![Some((0.0, 0)), Some((1.0, 1)), None],           // 66%
            ],
            vec![0, 1, 2],
        );
        assert_eq!(s.fraction_of_updates_with_reliability(1.0), 0.5);
        assert_eq!(s.fraction_of_updates_with_reliability(0.6), 1.0);
    }

    #[test]
    fn hops_and_latency_aggregations() {
        let s = stats_with(
            vec![vec![
                Some((0.0, 0)),
                Some((10.0, 1)),
                Some((40.0, 4)), // stretched path to a d=2 node
            ]],
            vec![0, 1, 2],
        );
        assert_eq!(s.mean_hops_at_distance(2), Some(4.0));
        assert_eq!(s.mean_hops_at_distance(1), Some(1.0));
        assert_eq!(s.mean_hops_at_distance(9), None);
        assert_eq!(s.nodes_at_distance(2), 1);
        // Per-hop: (10/1 + 40/4) / 2 = 10.
        assert_eq!(s.mean_per_hop_latency(), Some(10.0));
        assert_eq!(s.mean_latency_at_distance(2), Some(40.0));
    }

    #[test]
    fn empty_updates_are_neutral() {
        let s = stats_with(vec![], vec![0, 1]);
        assert_eq!(s.fraction_of_updates_with_reliability(0.9), 0.0);
        assert_eq!(s.mean_energy_per_update(), 0.0);
        assert_eq!(s.mean_per_hop_latency(), None);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn invalid_reliability_panics() {
        let s = stats_with(vec![], vec![]);
        let _ = s.fraction_of_updates_with_reliability(0.0);
    }
}
