//! Configuration of the idealized simulator.

use pbbf_core::{AnalysisParams, PbbfParams};
use serde::{Deserialize, Serialize};

/// Which protocol the network runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Mode {
    /// No power saving: radios always on, pure flooding, every reception
    /// forwarded immediately. The paper's `NO PSM` baseline.
    AlwaysOn,
    /// A sleep-scheduled MAC (802.11 PSM-style frames) running PBBF with
    /// the given parameters; `PbbfParams::PSM` is the plain-PSM baseline.
    SleepScheduled(PbbfParams),
    /// Gossip-based flooding (the paper's [5], its Section-2 contrast):
    /// radios always on, every node *forwards* a received broadcast with
    /// the given probability — a **site** percolation process, versus
    /// PBBF's bond percolation.
    Gossip {
        /// Probability that a node rebroadcasts at all.
        forward_probability: f64,
    },
}

impl Mode {
    /// The paper's legend label for this mode (`NO PSM`, `PSM`,
    /// `PBBF-<p>`, `GOSSIP-<g>`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Mode::AlwaysOn => "NO PSM".to_string(),
            Mode::SleepScheduled(p) if *p == PbbfParams::PSM => "PSM".to_string(),
            Mode::SleepScheduled(p) => format!("PBBF-{}", p.p()),
            Mode::Gossip {
                forward_probability,
            } => format!("GOSSIP-{forward_probability}"),
        }
    }
}

/// Full configuration of one idealized-simulation scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdealConfig {
    /// Grid side (Table 1: 75, i.e. N = 5625).
    pub grid_side: u32,
    /// Power, traffic and schedule parameters (Table 1).
    pub analysis: AnalysisParams,
    /// Number of source updates to disseminate per run.
    pub updates: u32,
    /// Data-packet airtime in seconds (64 bytes at 19.2 kbps ≈ 26.7 ms).
    pub t_packet: f64,
    /// Safety cap on frames simulated per update.
    pub max_frames_per_update: u32,
}

impl IdealConfig {
    /// The Table-1 configuration: 75×75 grid, Mica2 power, λ = 0.01/s,
    /// `L1` ≈ 1.5 s, 10 s frames with 1 s active windows.
    #[must_use]
    pub fn table1() -> Self {
        let analysis = AnalysisParams::table1();
        Self {
            grid_side: analysis.grid_side,
            analysis,
            updates: 5,
            t_packet: 64.0 * 8.0 / 19_200.0,
            max_frames_per_update: 10_000,
        }
    }

    /// Number of nodes in the configured grid.
    #[must_use]
    pub fn node_count(&self) -> u32 {
        self.grid_side * self.grid_side
    }
}

impl Default for IdealConfig {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = IdealConfig::table1();
        assert_eq!(c.grid_side, 75);
        assert_eq!(c.node_count(), 5625);
        assert_eq!(c.updates, 5);
        assert!((c.t_packet - 0.026_666).abs() < 1e-4);
    }

    #[test]
    fn mode_labels_match_paper_legends() {
        assert_eq!(Mode::AlwaysOn.label(), "NO PSM");
        assert_eq!(Mode::SleepScheduled(PbbfParams::PSM).label(), "PSM");
        let pbbf = Mode::SleepScheduled(PbbfParams::new(0.5, 0.25).unwrap());
        assert_eq!(pbbf.label(), "PBBF-0.5");
        assert_eq!(
            Mode::Gossip {
                forward_probability: 0.7
            }
            .label(),
            "GOSSIP-0.7"
        );
    }
}
