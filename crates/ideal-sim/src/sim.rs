//! The idealized simulator driver.

use pbbf_des::SimRng;
use pbbf_topology::{Grid, NodeId};

use crate::dissemination::{disseminate, DisseminationSetup};
use crate::stats::{RunStats, UpdateStats};
use crate::{IdealConfig, Mode};

/// The Section-4 simulator: a grid network under an ideal MAC/PHY running
/// either always-on flooding or a sleep-scheduled MAC with PBBF.
///
/// Construction builds the grid once; [`IdealSim::run`] executes a seeded,
/// fully deterministic run of `config.updates` independent update
/// disseminations.
#[derive(Debug, Clone)]
pub struct IdealSim {
    config: IdealConfig,
    mode: Mode,
    grid: Grid,
    source: NodeId,
    shortest: Vec<u32>,
}

impl IdealSim {
    /// Builds a simulator. The broadcast source is the grid-center node,
    /// as in the paper.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero grid side).
    #[must_use]
    pub fn new(config: IdealConfig, mode: Mode) -> Self {
        let grid = Grid::square(config.grid_side);
        let source = grid.center();
        let shortest = grid
            .topology()
            .hop_distances(source)
            .into_iter()
            .map(|d| d.expect("grid is connected"))
            .collect();
        Self {
            config,
            mode,
            grid,
            source,
            shortest,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &IdealConfig {
        &self.config
    }

    /// The protocol mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The broadcast source (grid center).
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Runs `config.updates` disseminations; fully determined by `seed`.
    #[must_use]
    pub fn run(&self, seed: u64) -> RunStats {
        self.run_with(seed, true, false)
    }

    /// Ablation entry point: `chaining` allows immediate forwards to
    /// trigger further immediate forwards within one frame;
    /// `source_normal_only` forces the source to announce every update.
    #[must_use]
    pub fn run_with(&self, seed: u64, chaining: bool, source_normal_only: bool) -> RunStats {
        let root = SimRng::new(seed);
        let updates = (0..self.config.updates)
            .map(|u| {
                let mut rng = root.substream(u64::from(u));
                match self.mode {
                    Mode::AlwaysOn => self.run_always_on(),
                    Mode::Gossip {
                        forward_probability,
                    } => self.run_gossip(forward_probability, &mut rng),
                    Mode::SleepScheduled(params) => {
                        let a = &self.config.analysis;
                        let billing_frames =
                            (1.0 / (a.lambda * a.schedule.t_frame())).round().max(1.0) as u32;
                        let setup = DisseminationSetup {
                            params,
                            schedule: a.schedule,
                            power: a.power,
                            l1: a.l1,
                            t_packet: self.config.t_packet,
                            billing_frames,
                            max_frames: self.config.max_frames_per_update,
                            chaining,
                            source_normal_only,
                        };
                        let d = disseminate(self.grid.topology(), self.source, &setup, &mut rng);
                        UpdateStats {
                            received: d.received,
                            energy_joules_per_node: d.energy_joules
                                / self.grid.topology().len() as f64,
                            immediate_tx: d.immediate_tx,
                            normal_tx: d.normal_tx,
                            deferred_immediates: d.deferred_immediates,
                            frames_used: d.frames_used,
                        }
                    }
                }
            })
            .collect();
        RunStats {
            shortest: self.shortest.clone(),
            source: self.source,
            updates,
        }
    }

    /// Gossip-based flooding ([5] of the paper): radios always on; each
    /// node, on first reception, rebroadcasts with probability `g` or
    /// stays silent for this update — **site** percolation, the model the
    /// paper's Section 2 contrasts with PBBF's bond percolation. The
    /// source always transmits.
    fn run_gossip(&self, g: f64, rng: &mut SimRng) -> UpdateStats {
        assert!(
            (0.0..=1.0).contains(&g),
            "forward probability {g} outside [0, 1]"
        );
        let topo = self.grid.topology();
        let a = &self.config.analysis;
        let per_hop = a.l1 + self.config.t_packet;
        let n = topo.len();
        let mut received: Vec<Option<(f64, u32)>> = vec![None; n];
        received[self.source.index()] = Some((0.0, 0));
        let mut tx = 0u64;
        // BFS through forwarders; non-forwarders receive but do not extend.
        let mut frontier = vec![self.source];
        let mut depth = 0u32;
        while !frontier.is_empty() {
            depth += 1;
            let mut next = Vec::new();
            for &node in &frontier {
                tx += 1;
                for &nb in topo.neighbors(node) {
                    if received[nb.index()].is_some() {
                        continue;
                    }
                    received[nb.index()] = Some((f64::from(depth) * per_hop, depth));
                    if rng.chance(g) {
                        next.push(nb);
                    }
                }
            }
            frontier = next;
        }
        let energy_per_node = a.power.idle / a.lambda
            + (a.power.tx - a.power.idle) * self.config.t_packet * tx as f64 / n as f64;
        UpdateStats {
            received,
            energy_joules_per_node: energy_per_node,
            immediate_tx: tx,
            normal_tx: 0,
            deferred_immediates: 0,
            frames_used: 0,
        }
    }

    /// `NO PSM`: every radio is always on and every reception is forwarded
    /// immediately — a deterministic flood along BFS order, with per-hop
    /// latency `L1 + t_packet` and always-on idle energy.
    fn run_always_on(&self) -> UpdateStats {
        let topo = self.grid.topology();
        let a = &self.config.analysis;
        let per_hop = a.l1 + self.config.t_packet;
        let received: Vec<Option<(f64, u32)>> = self
            .shortest
            .iter()
            .map(|&d| Some((f64::from(d) * per_hop, d)))
            .collect();
        // Every node except leaves-with-no-fresh-neighbors transmits once
        // in a flood; in the worst (and standard flooding) case all N
        // transmit.
        let tx = topo.len() as u64;
        let energy_per_node = a.power.idle / a.lambda
            + (a.power.tx - a.power.idle) * self.config.t_packet * tx as f64 / topo.len() as f64;
        UpdateStats {
            received,
            energy_joules_per_node: energy_per_node,
            immediate_tx: tx,
            normal_tx: 0,
            deferred_immediates: 0,
            frames_used: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbbf_core::PbbfParams;

    fn small_config(side: u32, updates: u32) -> IdealConfig {
        let mut c = IdealConfig::table1();
        c.grid_side = side;
        c.updates = updates;
        c
    }

    #[test]
    fn psm_delivers_everything_deterministically() {
        let sim = IdealSim::new(small_config(11, 3), Mode::SleepScheduled(PbbfParams::PSM));
        let stats = sim.run(1);
        for u in &stats.updates {
            assert!(u.received.iter().all(Option::is_some));
            assert_eq!(u.immediate_tx, 0);
            // Every node transmits a normal broadcast exactly once.
            assert_eq!(u.normal_tx, 121);
        }
    }

    #[test]
    fn psm_latency_is_frame_per_hop() {
        // PSM: source announces in frame 0 (generated mid-window) and
        // transmits at T_active + L1 + t_pkt; each later hop costs exactly
        // one frame.
        let cfg = small_config(11, 1);
        let sim = IdealSim::new(cfg, Mode::SleepScheduled(PbbfParams::PSM));
        let stats = sim.run(2);
        let a = cfg.analysis;
        let first_hop = a.schedule.t_active() + a.l1 + cfg.t_packet - 0.5 * a.schedule.t_active();
        let u = &stats.updates[0];
        for (i, r) in u.received.iter().enumerate() {
            let (latency, hops) = r.unwrap();
            let d = stats.shortest[i];
            assert_eq!(hops, d, "PSM travels shortest paths");
            if d > 0 {
                let expected = first_hop + f64::from(d - 1) * a.schedule.t_frame();
                assert!(
                    (latency - expected).abs() < 1e-9,
                    "node {i} at d={d}: {latency} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn always_on_floods_at_l1_per_hop() {
        let cfg = small_config(9, 2);
        let sim = IdealSim::new(cfg, Mode::AlwaysOn);
        let stats = sim.run(3);
        let per_hop = cfg.analysis.l1 + cfg.t_packet;
        for u in &stats.updates {
            for (i, r) in u.received.iter().enumerate() {
                let (latency, hops) = r.unwrap();
                assert_eq!(hops, stats.shortest[i]);
                assert!((latency - f64::from(hops) * per_hop).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn always_on_energy_matches_analysis() {
        let cfg = small_config(9, 1);
        let sim = IdealSim::new(cfg, Mode::AlwaysOn);
        let stats = sim.run(4);
        let expected = pbbf_core::analysis::joules_per_update_always_on(&cfg.analysis);
        let got = stats.updates[0].energy_joules_per_node;
        // Transmission surcharge is tiny but positive.
        assert!(got >= expected);
        assert!((got - expected) < 0.01, "{got} vs {expected}");
    }

    #[test]
    fn psm_energy_tracks_eq8_baseline() {
        let cfg = small_config(15, 2);
        let sim = IdealSim::new(cfg, Mode::SleepScheduled(PbbfParams::PSM));
        let stats = sim.run(5);
        let baseline = pbbf_core::analysis::joules_per_update(&cfg.analysis, 0.0);
        for u in &stats.updates {
            // Baseline plus a small marginal activity term (two listen
            // intervals of ~L1 + t_pkt per node per update, at 30 mW).
            assert!(u.energy_joules_per_node > baseline);
            assert!(
                u.energy_joules_per_node < baseline + 0.2,
                "{} vs baseline {}",
                u.energy_joules_per_node,
                baseline
            );
        }
    }

    #[test]
    fn pbbf_energy_grows_linearly_in_q_and_ignores_p() {
        let cfg = small_config(15, 3);
        let mut means = Vec::new();
        for (p, q) in [(0.25, 0.2), (0.75, 0.2), (0.25, 0.8), (0.75, 0.8)] {
            let sim = IdealSim::new(cfg, Mode::SleepScheduled(PbbfParams::new(p, q).unwrap()));
            let stats = sim.run(6);
            means.push(stats.mean_energy_per_update());
        }
        // Same q, different p: close (the only p-dependence is marginal
        // activity energy, which shrinks when high p kills the broadcast).
        assert!((means[0] - means[1]).abs() / means[0] < 0.15);
        assert!((means[2] - means[3]).abs() / means[2] < 0.08);
        // Larger q costs much more.
        assert!(means[2] > means[0] * 2.0);
    }

    #[test]
    fn high_p_low_q_loses_updates() {
        // p = 0.75, q = 0: p_edge = 0.25, far below the bond threshold;
        // the broadcast dies near the source.
        let sim = IdealSim::new(
            small_config(21, 4),
            Mode::SleepScheduled(PbbfParams::new(0.75, 0.0).unwrap()),
        );
        let stats = sim.run(7);
        let mean = stats.mean_delivered_fraction();
        assert!(mean < 0.3, "delivered {mean}");
    }

    #[test]
    fn high_p_high_q_delivers_fast() {
        let cfg = small_config(15, 3);
        let fast = IdealSim::new(
            cfg,
            Mode::SleepScheduled(PbbfParams::new(0.75, 1.0).unwrap()),
        );
        let slow = IdealSim::new(cfg, Mode::SleepScheduled(PbbfParams::PSM));
        let f = fast.run(8);
        let s = slow.run(8);
        assert!((f.mean_delivered_fraction() - 1.0).abs() < 1e-12);
        assert!(
            f.mean_per_hop_latency().unwrap() < s.mean_per_hop_latency().unwrap() / 2.0,
            "immediate chains should beat one-hop-per-frame PSM"
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let sim = IdealSim::new(
            small_config(13, 3),
            Mode::SleepScheduled(PbbfParams::new(0.5, 0.5).unwrap()),
        );
        let a = sim.run(99);
        let b = sim.run(99);
        assert_eq!(a.updates.len(), b.updates.len());
        for (x, y) in a.updates.iter().zip(&b.updates) {
            assert_eq!(x.received, y.received);
            assert_eq!(x.immediate_tx, y.immediate_tx);
        }
        let c = sim.run(100);
        assert!(
            a.updates
                .iter()
                .zip(&c.updates)
                .any(|(x, y)| x.received != y.received),
            "different seeds should differ"
        );
    }

    #[test]
    fn deferred_immediates_become_normals() {
        // With chaining on and L1 = 1.5 s in a 9 s data phase, chains of
        // ~6 hops defer the rest; the stats record them.
        let sim = IdealSim::new(
            small_config(25, 2),
            Mode::SleepScheduled(PbbfParams::new(1.0, 1.0).unwrap()),
        );
        let stats = sim.run(11);
        let total_deferred: u64 = stats.updates.iter().map(|u| u.deferred_immediates).sum();
        assert!(
            total_deferred > 0,
            "long grids must overflow the data phase"
        );
        // Everything still arrives (p_edge = 1).
        assert!((stats.mean_delivered_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gossip_shows_site_percolation_threshold() {
        // Site percolation on the square lattice has threshold ~0.593:
        // gossip at g = 0.3 dies near the source; g = 0.9 blankets the
        // grid (bimodal behavior of the paper's [5]).
        let cfg = small_config(21, 4);
        let low = IdealSim::new(
            cfg,
            Mode::Gossip {
                forward_probability: 0.3,
            },
        );
        let high = IdealSim::new(
            cfg,
            Mode::Gossip {
                forward_probability: 0.9,
            },
        );
        let frac_low = low.run(13).mean_delivered_fraction();
        let frac_high = high.run(13).mean_delivered_fraction();
        assert!(frac_low < 0.4, "subcritical gossip dies: {frac_low}");
        assert!(
            frac_high > 0.9,
            "supercritical gossip blankets: {frac_high}"
        );
    }

    #[test]
    fn gossip_at_one_equals_flooding() {
        let cfg = small_config(11, 2);
        let gossip = IdealSim::new(
            cfg,
            Mode::Gossip {
                forward_probability: 1.0,
            },
        )
        .run(14);
        let flood = IdealSim::new(cfg, Mode::AlwaysOn).run(14);
        assert!((gossip.mean_delivered_fraction() - 1.0).abs() < 1e-12);
        for (g, f) in gossip.updates[0]
            .received
            .iter()
            .zip(&flood.updates[0].received)
        {
            assert_eq!(g.unwrap().1, f.unwrap().1, "same hop counts as flooding");
        }
    }

    #[test]
    fn ablation_chaining_off_slows_dissemination() {
        let cfg = small_config(21, 3);
        let sim = IdealSim::new(
            cfg,
            Mode::SleepScheduled(PbbfParams::new(1.0, 1.0).unwrap()),
        );
        let with = sim.run_with(12, true, false);
        let without = sim.run_with(12, false, false);
        assert!(
            without.mean_per_hop_latency().unwrap() > with.mean_per_hop_latency().unwrap(),
            "chaining must reduce latency"
        );
    }
}
