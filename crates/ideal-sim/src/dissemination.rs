//! The per-update frame loop: disseminating one broadcast over the grid.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pbbf_core::{PbbfParams, PowerProfile, SleepSchedule};
use pbbf_des::SimRng;
use pbbf_topology::{NodeId, Topology};

/// Tunables of one dissemination, separated from [`crate::IdealConfig`] so
/// the ablation benches can toggle individual mechanisms.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DisseminationSetup {
    pub params: PbbfParams,
    pub schedule: SleepSchedule,
    pub power: PowerProfile,
    /// Channel-access time `L1` (s).
    pub l1: f64,
    /// Packet airtime (s).
    pub t_packet: f64,
    /// Frames of baseline duty-cycle energy billed to this update
    /// (`1/(λ·T_frame)` for the steady-state share).
    pub billing_frames: u32,
    pub max_frames: u32,
    /// When false, an immediate forward may not trigger further immediate
    /// forwards in the same frame (ablation: chaining off). Receptions
    /// from it are still delivered; their forwards defer to the next
    /// frame.
    pub chaining: bool,
    /// When true the source always uses a normal (announced) broadcast
    /// regardless of `p` (ablation: Figure-2 source behavior off).
    pub source_normal_only: bool,
}

/// Everything measured about one update's dissemination.
#[derive(Debug, Clone)]
pub(crate) struct Dissemination {
    /// Per node: latency from generation to first reception (s) and the
    /// number of links the delivered copy traversed. The source holds
    /// `Some((0.0, 0))`.
    pub received: Vec<Option<(f64, u32)>>,
    pub immediate_tx: u64,
    pub normal_tx: u64,
    /// Immediate forwards that would have overrun the frame and were
    /// demoted to normal broadcasts.
    pub deferred_immediates: u64,
    /// Total energy billed to this update, all nodes (J).
    pub energy_joules: f64,
    pub frames_used: u32,
}

/// Disseminates one update from `source`, consuming randomness from `rng`.
pub(crate) fn disseminate(
    topology: &Topology,
    source: NodeId,
    setup: &DisseminationSetup,
    rng: &mut SimRng,
) -> Dissemination {
    let n = topology.len();
    let p = setup.params.p();
    let q = setup.params.q();
    let t_active = setup.schedule.t_active();
    let t_frame = setup.schedule.t_frame();
    let t_sleep = setup.schedule.t_sleep();
    let rx_done = t_active + setup.l1 + setup.t_packet;

    // Generation happens mid-ATIM-window of frame 0 (Section 5.1: "new
    // packets always arrive at the source during the ATIM window").
    let gen_time = 0.5 * t_active;

    let mut received: Vec<Option<(f64, u32)>> = vec![None; n];
    received[source.index()] = Some((0.0, 0));

    // Nodes queued to announce + transmit a normal broadcast next frame.
    let mut pending_normal: Vec<NodeId> = Vec::new();
    // Immediate forwards scheduled within the current frame:
    // (tx time in integer ns from frame start, node).
    let mut imm: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();

    let mut immediate_tx = 0u64;
    let mut normal_tx = 0u64;
    let mut deferred = 0u64;
    let mut energy = 0.0f64;

    // Per-frame awake bookkeeping (reset each frame).
    let mut awake_until = vec![0.0f64; n];
    let mut act_start = vec![f64::INFINITY; n];
    let mut act_end = vec![0.0f64; n];
    let mut coin = vec![false; n];

    // The source's own forwarding decision. An immediate source
    // transmission still happens after the ATIM window (data may not be
    // sent during the window) but is *unannounced*: only awake neighbors
    // receive it.
    let source_immediate = !setup.source_normal_only && rng.chance(p);
    let mut frame0_normal: Vec<NodeId> = Vec::new();
    if source_immediate {
        imm.push(Reverse((secs_to_ns(t_active + setup.l1), source.0)));
    } else {
        frame0_normal.push(source);
    }

    let ns_frame_limit = secs_to_ns(t_frame - setup.t_packet);
    let mut frame = 0u32;
    loop {
        let frame_start = f64::from(frame) * t_frame;

        // ---- Sleep-Decision-Handler coins for this frame's data phase.
        if q > 0.0 {
            for c in coin.iter_mut() {
                *c = rng.chance(q);
            }
        } else if frame == 0 {
            coin.fill(false);
        }

        // ---- Who transmits a normal (announced) broadcast this frame.
        let mut normal_now = std::mem::take(&mut pending_normal);
        if frame == 0 {
            normal_now.append(&mut frame0_normal);
        }
        normal_now.sort_unstable();

        if normal_now.is_empty() && imm.is_empty() {
            break;
        }

        // ---- Awake intervals.
        for (i, au) in awake_until.iter_mut().enumerate() {
            *au = if coin[i] { t_frame } else { 0.0 };
            act_start[i] = f64::INFINITY;
            act_end[i] = 0.0;
        }
        for &tx in &normal_now {
            awake_until[tx.index()] = awake_until[tx.index()].max(rx_done);
            note_activity(&mut act_start, &mut act_end, tx.index(), t_active, rx_done);
            for &nb in topology.neighbors(tx) {
                // Every neighbor heard the ATIM and listens for the data.
                awake_until[nb.index()] = awake_until[nb.index()].max(rx_done);
                note_activity(&mut act_start, &mut act_end, nb.index(), t_active, rx_done);
            }
        }

        // ---- Normal data transmissions (all at T_active + L1; ideal
        // channel, no collisions). Every neighbor receives.
        let t_norm_rx = t_active + setup.l1 + setup.t_packet;
        for &tx in &normal_now {
            normal_tx += 1;
            for &nb in topology.neighbors(tx) {
                if received[nb.index()].is_some() {
                    continue; // duplicate: dropped
                }
                let hops = received[tx.index()].expect("transmitter holds packet").1 + 1;
                let latency = frame_start + t_norm_rx - gen_time;
                received[nb.index()] = Some((latency, hops));
                decide_forward(
                    nb,
                    t_norm_rx,
                    setup,
                    p,
                    rng,
                    &mut imm,
                    &mut pending_normal,
                    &mut deferred,
                    ns_frame_limit,
                    true,
                );
            }
        }

        // ---- Immediate forwards, in time order, chaining within the
        // frame.
        while let Some(Reverse((t_ns, node_raw))) = imm.pop() {
            let node = NodeId(node_raw);
            let t_tx = ns_to_secs(t_ns);
            let t_rx = t_tx + setup.t_packet;
            immediate_tx += 1;
            // The forwarder is awake from its reception through its
            // transmission.
            awake_until[node.index()] = awake_until[node.index()].max(t_rx);
            note_activity(
                &mut act_start,
                &mut act_end,
                node.index(),
                t_tx - setup.l1,
                t_rx,
            );
            for &nb in topology.neighbors(node) {
                if awake_until[nb.index()] < t_tx {
                    continue; // asleep: the bond is closed for this copy
                }
                if received[nb.index()].is_some() {
                    continue;
                }
                let hops = received[node.index()].expect("forwarder holds packet").1 + 1;
                let latency = frame_start + t_rx - gen_time;
                received[nb.index()] = Some((latency, hops));
                note_activity(&mut act_start, &mut act_end, nb.index(), t_tx, t_rx);
                decide_forward(
                    nb,
                    t_rx,
                    setup,
                    p,
                    rng,
                    &mut imm,
                    &mut pending_normal,
                    &mut deferred,
                    ns_frame_limit,
                    setup.chaining,
                );
            }
        }

        // ---- Energy for this frame.
        let idle = setup.power.idle;
        let sleep = setup.power.sleep;
        if frame < setup.billing_frames {
            // Baseline duty-cycle share billed to this update.
            for &c in &coin {
                energy += idle * t_active + if c { idle * t_sleep } else { sleep * t_sleep };
            }
        }
        // Marginal activity: awake time the update caused beyond what the
        // coin (already billed, possibly to another update's window) covers.
        for i in 0..n {
            if act_end[i] > 0.0 && !coin[i] {
                let duration = (act_end[i] - act_start[i].min(act_end[i])).max(0.0);
                energy += (idle - sleep) * duration;
            }
        }

        frame += 1;
        if frame >= setup.max_frames {
            break;
        }
    }

    // Baseline duty-cycle energy for billing-window frames the
    // dissemination did not span (the update's steady-state share covers
    // the full inter-update interval even if the broadcast died early).
    for _ in frame..setup.billing_frames {
        for _ in 0..n {
            let c = q > 0.0 && rng.chance(q);
            energy += setup.power.idle * t_active
                + if c {
                    setup.power.idle * t_sleep
                } else {
                    setup.power.sleep * t_sleep
                };
        }
    }

    // Transmission surcharge over idle listening.
    energy +=
        (setup.power.tx - setup.power.idle) * setup.t_packet * (immediate_tx + normal_tx) as f64;

    Dissemination {
        received,
        immediate_tx,
        normal_tx,
        deferred_immediates: deferred,
        energy_joules: energy,
        frames_used: frame,
    }
}

/// `Receive-Broadcast` (Fig. 3) applied inside the frame loop.
#[allow(clippy::too_many_arguments)]
fn decide_forward(
    node: NodeId,
    now: f64,
    setup: &DisseminationSetup,
    p: f64,
    rng: &mut SimRng,
    imm: &mut BinaryHeap<Reverse<(u64, u32)>>,
    pending_normal: &mut Vec<NodeId>,
    deferred: &mut u64,
    ns_frame_limit: u64,
    allow_immediate: bool,
) {
    if rng.chance(p) {
        let t_tx = secs_to_ns(now + setup.l1);
        if allow_immediate && t_tx <= ns_frame_limit {
            imm.push(Reverse((t_tx, node.0)));
        } else {
            // Would overrun the data phase (or chaining disabled): demote
            // to a normal broadcast next frame.
            *deferred += 1;
            pending_normal.push(node);
        }
    } else {
        pending_normal.push(node);
    }
}

fn note_activity(starts: &mut [f64], ends: &mut [f64], i: usize, from: f64, to: f64) {
    if from < starts[i] {
        starts[i] = from;
    }
    if to > ends[i] {
        ends[i] = to;
    }
}

fn secs_to_ns(s: f64) -> u64 {
    (s * 1e9).round() as u64
}

fn ns_to_secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}
