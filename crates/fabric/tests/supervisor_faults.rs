//! Supervisor failure-path tests against scripted in-process mock
//! workers: every recovery route — crash, hang, corrupt output,
//! quarantine, spawn failure, fleet collapse, duplicate replies — must
//! end in the same values a faultless run produces.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Duration;

use pbbf_fabric::protocol::{result_reply, ShardError, ShardSpec, WorkerReply};
use pbbf_fabric::{
    run_sweep, CacheTelemetry, ShardInput, SweepOptions, SweepScheduler, WorkerEvent,
    WorkerFactory, WorkerLink,
};
use serde::{Deserialize, Serialize};
use serde_json::Value as Json;

/// The mock job: shard `k` must produce `n` values `k*100 + i`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct MockJob {
    k: u64,
    n: u64,
}

fn inputs(shards: u64, runs: u64) -> Vec<ShardInput> {
    (0..shards)
        .map(|k| ShardInput {
            job: serde::to_value(&MockJob { k, n: runs }),
            expect: runs as usize,
        })
        .collect()
}

fn expected_values(k: u64, n: u64) -> Vec<Option<f64>> {
    (0..n).map(|i| Some((k * 100 + i) as f64)).collect()
}

fn exec(job: &Json) -> Result<Vec<Option<f64>>, String> {
    let job: MockJob = serde::from_value(job.clone()).map_err(|e| e.to_string())?;
    Ok(expected_values(job.k, job.n))
}

fn valid_reply(spec: &ShardSpec) -> String {
    let job: MockJob = serde::from_value(spec.job.clone()).expect("mock job");
    serde_json::to_string(&result_reply(spec.id, &expected_values(job.k, job.n)))
        .expect("render reply")
}

fn corrupt_checksum_reply(spec: &ShardSpec) -> String {
    let WorkerReply::Result(mut r) = serde_json::from_str(&valid_reply(spec)).unwrap() else {
        unreachable!("valid_reply builds a Result");
    };
    r.checksum ^= 0xBAD_C0DE;
    serde_json::to_string(&WorkerReply::Result(r)).unwrap()
}

/// What a scripted worker does upon receiving one shard spec.
enum Action {
    /// Emit this raw stdout line.
    Reply(String),
    /// Emit this raw line attributed to *another* worker id — the
    /// late-duplicate shape: a reply from a worker written off earlier
    /// arrives while the shard's retry is in flight elsewhere.
    ReplyAs(u64, String),
    /// Die: emit `Gone` and fail all further sends.
    Die,
    /// Say nothing (the hang shape — the deadline must catch it).
    Silent,
    /// Transport dropped and came back: emit `Reset` (the in-flight
    /// shard is lost on the far side, the worker survives).
    Reset,
}

type Script = dyn Fn(usize, &ShardSpec) -> Vec<Action> + Send + Sync;

struct MockFactory {
    script: Arc<Script>,
    /// Slots whose spawn fails outright.
    fail_slots: Vec<usize>,
    /// Spawn links that claim to be remote (host-liveness applies).
    remote: bool,
    /// Slots exempt from `remote` (mixed-fleet tests). A scripted mock
    /// can't heartbeat while idle the way a real TCP worker does, so
    /// liveness tests mark only the misbehaving slot remote.
    local_slots: Vec<usize>,
}

impl MockFactory {
    fn new(script: impl Fn(usize, &ShardSpec) -> Vec<Action> + Send + Sync + 'static) -> Self {
        Self {
            script: Arc::new(script),
            fail_slots: Vec::new(),
            remote: false,
            local_slots: Vec::new(),
        }
    }

    fn remote(script: impl Fn(usize, &ShardSpec) -> Vec<Action> + Send + Sync + 'static) -> Self {
        Self {
            remote: true,
            ..Self::new(script)
        }
    }
}

struct MockLink {
    slot: usize,
    worker: u64,
    events: Sender<WorkerEvent>,
    script: Arc<Script>,
    dead: bool,
    remote: bool,
}

impl WorkerLink for MockLink {
    fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        if self.dead {
            return Err(std::io::Error::other("mock worker is dead"));
        }
        let spec: ShardSpec = serde_json::from_str(line)
            .map_err(|e| std::io::Error::other(format!("bad spec: {e}")))?;
        for action in (self.script)(self.slot, &spec) {
            match action {
                Action::Reply(reply) => {
                    let _ = self.events.send(WorkerEvent::Line {
                        worker: self.worker,
                        line: reply,
                    });
                }
                Action::ReplyAs(worker, reply) => {
                    let _ = self.events.send(WorkerEvent::Line {
                        worker,
                        line: reply,
                    });
                }
                Action::Die => {
                    self.dead = true;
                    let _ = self.events.send(WorkerEvent::Gone {
                        worker: self.worker,
                    });
                }
                Action::Silent => {}
                Action::Reset => {
                    let _ = self.events.send(WorkerEvent::Reset {
                        worker: self.worker,
                    });
                }
            }
        }
        Ok(())
    }

    fn kill(&mut self) {
        if !self.dead {
            self.dead = true;
            let _ = self.events.send(WorkerEvent::Gone {
                worker: self.worker,
            });
        }
    }

    fn remote(&self) -> bool {
        self.remote
    }
}

impl WorkerFactory for MockFactory {
    fn spawn(
        &self,
        slot: usize,
        worker: u64,
        events: Sender<WorkerEvent>,
    ) -> std::io::Result<Box<dyn WorkerLink>> {
        if self.fail_slots.contains(&slot) {
            return Err(std::io::Error::other("mock spawn failure"));
        }
        Ok(Box::new(MockLink {
            slot,
            worker,
            events,
            script: Arc::clone(&self.script),
            dead: false,
            remote: self.remote && !self.local_slots.contains(&slot),
        }))
    }
}

/// Fast-retry options so failure tests finish in milliseconds.
fn opts(workers: usize) -> SweepOptions {
    SweepOptions {
        workers,
        shard_timeout: Duration::from_secs(5),
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(10),
        ..SweepOptions::default()
    }
}

fn assert_all_values(values: &[Vec<Option<f64>>], shards: u64, runs: u64) {
    assert_eq!(values.len(), shards as usize);
    for (k, vals) in values.iter().enumerate() {
        assert_eq!(vals, &expected_values(k as u64, runs), "shard {k}");
    }
}

#[test]
fn healthy_fleet_completes() {
    let factory = MockFactory::new(|_, spec| vec![Action::Reply(valid_reply(spec))]);
    let out = run_sweep(inputs(8, 3), &opts(3), &factory, exec).unwrap();
    assert_all_values(&out.values, 8, 3);
    assert_eq!(out.stats.workers_spawned, 3);
    assert_eq!(out.stats.retries, 0);
    assert_eq!(out.stats.inproc_shards, 0);
}

#[test]
fn crashed_shard_retries_on_a_healthy_worker() {
    // Whoever gets shard 2 first dies mid-shard; the retry succeeds.
    let factory = MockFactory::new(|_, spec| {
        if spec.id == 2 && spec.attempt == 0 {
            vec![Action::Die]
        } else {
            vec![Action::Reply(valid_reply(spec))]
        }
    });
    let out = run_sweep(inputs(6, 2), &opts(3), &factory, exec).unwrap();
    assert_all_values(&out.values, 6, 2);
    assert_eq!(out.stats.crashes, 1);
    assert!(out.stats.retries >= 1);
    assert_eq!(out.stats.inproc_shards, 0, "a worker retry sufficed");
}

#[test]
fn hung_shard_times_out_quarantines_and_retries() {
    let factory = MockFactory::new(|_, spec| {
        if spec.id == 1 && spec.attempt == 0 {
            vec![Action::Silent]
        } else {
            vec![Action::Reply(valid_reply(spec))]
        }
    });
    let mut o = opts(3);
    o.shard_timeout = Duration::from_millis(50);
    let out = run_sweep(inputs(5, 2), &o, &factory, exec).unwrap();
    assert_all_values(&out.values, 5, 2);
    assert_eq!(out.stats.timeouts, 1);
    assert_eq!(out.stats.quarantined, 1, "a wedged worker is not reused");
}

#[test]
fn corrupt_reply_is_rejected_and_retried() {
    let factory = MockFactory::new(|_, spec| {
        if spec.id == 0 && spec.attempt == 0 {
            vec![Action::Reply(corrupt_checksum_reply(spec))]
        } else {
            vec![Action::Reply(valid_reply(spec))]
        }
    });
    let out = run_sweep(inputs(4, 2), &opts(2), &factory, exec).unwrap();
    assert_all_values(&out.values, 4, 2);
    assert_eq!(out.stats.corrupt, 1);
    assert_eq!(out.stats.quarantined, 0, "one strike is forgiven");
}

#[test]
fn wrong_length_reply_is_corrupt() {
    let factory = MockFactory::new(|_, spec| {
        if spec.id == 3 && spec.attempt == 0 {
            // Truncated values under a *recomputed* checksum: length
            // validation, not the checksum, must catch this one.
            let truncated = result_reply(spec.id, &[Some(1.0)]);
            vec![Action::Reply(serde_json::to_string(&truncated).unwrap())]
        } else {
            vec![Action::Reply(valid_reply(spec))]
        }
    });
    let out = run_sweep(inputs(5, 3), &opts(2), &factory, exec).unwrap();
    assert_all_values(&out.values, 5, 3);
    assert_eq!(out.stats.corrupt, 1);
}

#[test]
fn persistently_corrupt_worker_is_quarantined() {
    // Slot 0 corrupts everything it touches; slot 1 is honest. The
    // fabric must bench slot 0 after max_worker_strikes and still
    // finish every shard correctly.
    let factory = MockFactory::new(|slot, spec| {
        if slot == 0 {
            vec![Action::Reply(corrupt_checksum_reply(spec))]
        } else {
            vec![Action::Reply(valid_reply(spec))]
        }
    });
    let out = run_sweep(inputs(8, 2), &opts(2), &factory, exec).unwrap();
    assert_all_values(&out.values, 8, 2);
    assert_eq!(out.stats.quarantined, 1);
    assert!(out.stats.corrupt >= 2, "strikes accumulated to the limit");
}

#[test]
fn spawn_failure_degrades_to_in_process() {
    let mut factory = MockFactory::new(|_, spec| vec![Action::Reply(valid_reply(spec))]);
    factory.fail_slots = (0..3).collect();
    let out = run_sweep(inputs(6, 2), &opts(3), &factory, exec).unwrap();
    assert_all_values(&out.values, 6, 2);
    assert_eq!(out.stats.workers_spawned, 0);
    assert_eq!(out.stats.spawn_failures, 3);
    assert_eq!(out.stats.inproc_shards, 6, "every shard ran in-process");
}

#[test]
fn fleet_collapse_drains_in_process() {
    // The only worker dies on its first shard; everything else must
    // complete through the in-process drain.
    let factory = MockFactory::new(|_, _| vec![Action::Die]);
    let out = run_sweep(inputs(5, 2), &opts(1), &factory, exec).unwrap();
    assert_all_values(&out.values, 5, 2);
    assert_eq!(out.stats.crashes, 1);
    assert_eq!(out.stats.inproc_shards, 5);
}

#[test]
fn duplicate_replies_fold_once() {
    // A worker that answers every shard twice (the late-retry shape).
    let factory = MockFactory::new(|_, spec| {
        vec![
            Action::Reply(valid_reply(spec)),
            Action::Reply(valid_reply(spec)),
        ]
    });
    let out = run_sweep(inputs(7, 2), &opts(2), &factory, exec).unwrap();
    assert_all_values(&out.values, 7, 2);
    assert_eq!(out.stats.corrupt, 0, "duplicates are not corruption");
}

#[test]
fn refused_shards_fall_back_to_in_process() {
    // Every worker refuses shard 2 (as if its job were malformed from
    // where they stand); the in-process executor settles it.
    let factory = MockFactory::new(|_, spec| {
        if spec.id == 2 {
            let refusal = WorkerReply::Error(ShardError {
                id: spec.id,
                error: "not on my watch".into(),
            });
            vec![Action::Reply(serde_json::to_string(&refusal).unwrap())]
        } else {
            vec![Action::Reply(valid_reply(spec))]
        }
    });
    let out = run_sweep(inputs(5, 2), &opts(2), &factory, exec).unwrap();
    assert_all_values(&out.values, 5, 2);
    assert_eq!(out.stats.refused, 4, "one refusal per worker attempt");
    assert_eq!(out.stats.inproc_shards, 1);
}

#[test]
fn garbage_line_is_a_strike_not_a_crash() {
    let factory = MockFactory::new(|_, spec| {
        if spec.id == 1 && spec.attempt == 0 {
            vec![Action::Reply("{not json at all".into())]
        } else {
            vec![Action::Reply(valid_reply(spec))]
        }
    });
    let out = run_sweep(inputs(4, 2), &opts(2), &factory, exec).unwrap();
    assert_all_values(&out.values, 4, 2);
    assert_eq!(out.stats.corrupt, 1);
}

#[test]
fn empty_manifest_is_a_noop() {
    let factory = MockFactory::new(|_, spec| vec![Action::Reply(valid_reply(spec))]);
    let out = run_sweep(Vec::new(), &opts(2), &factory, exec).unwrap();
    assert!(out.values.is_empty());
    assert_eq!(out.stats.workers_spawned, 0);
}

fn heartbeat_line(t: CacheTelemetry) -> String {
    serde_json::to_string(&WorkerReply::Heartbeat(t)).unwrap()
}

#[test]
fn silent_remote_host_trips_liveness_not_the_shard_deadline() {
    // Slot 0 goes completely dark on its first shard — the vanished-host
    // shape. The shard deadline is far away; host liveness must be what
    // reclaims the shard, and the honest worker finishes the sweep.
    let mut factory = MockFactory::remote(|slot, spec| {
        if slot == 0 {
            vec![Action::Silent]
        } else {
            vec![Action::Reply(valid_reply(spec))]
        }
    });
    // Only the dark host is remote: an idle scripted mock can't
    // heartbeat, so an all-remote fleet would trip liveness at rest.
    factory.local_slots = vec![1];
    let mut o = opts(2);
    o.liveness_timeout = Duration::from_millis(50);
    let out = run_sweep(inputs(5, 2), &o, &factory, exec).unwrap();
    assert_all_values(&out.values, 5, 2);
    assert_eq!(out.stats.hosts_lost, 1);
    assert_eq!(out.stats.quarantined, 1);
    assert_eq!(out.stats.timeouts, 0, "liveness fired, not the deadline");
}

#[test]
fn local_workers_are_exempt_from_liveness() {
    // The same silence from a *local* (pipe) worker must NOT trip the
    // host-liveness detector — pipes report death via Gone; only the
    // per-shard deadline may reclaim this shard.
    let factory = MockFactory::new(|slot, spec| {
        if slot == 0 && spec.attempt == 0 {
            vec![Action::Silent]
        } else {
            vec![Action::Reply(valid_reply(spec))]
        }
    });
    let mut o = opts(2);
    o.liveness_timeout = Duration::from_millis(20);
    o.shard_timeout = Duration::from_millis(120);
    let out = run_sweep(inputs(4, 2), &o, &factory, exec).unwrap();
    assert_all_values(&out.values, 4, 2);
    assert_eq!(out.stats.hosts_lost, 0);
    assert_eq!(out.stats.timeouts, 1, "the deadline caught it instead");
}

#[test]
fn transport_reset_requeues_without_losing_the_worker() {
    // The yanked-cable-plugged-back-in path: the link reconnects mid-
    // shard. The in-flight shard must requeue, the worker must stay in
    // the fleet (it later completes the retry), and nothing counts as a
    // crash or lost host.
    let factory = MockFactory::remote(|_, spec| {
        if spec.id == 2 && spec.attempt == 0 {
            vec![Action::Reset]
        } else {
            vec![Action::Reply(valid_reply(spec))]
        }
    });
    let out = run_sweep(inputs(6, 2), &opts(2), &factory, exec).unwrap();
    assert_all_values(&out.values, 6, 2);
    assert_eq!(out.stats.reconnects, 1);
    assert_eq!(out.stats.crashes, 0);
    assert_eq!(out.stats.hosts_lost, 0);
    assert_eq!(out.stats.quarantined, 0);
    assert!(out.stats.retries >= 1, "the lost shard was requeued");
}

#[test]
fn heartbeat_telemetry_aggregates_across_the_fleet() {
    // Each worker heartbeats its cache counters after every reply; the
    // supervisor must keep the *latest* per worker and sum the fleet.
    let factory = MockFactory::remote(|slot, spec| {
        let t = if slot == 0 {
            CacheTelemetry {
                hits: 5,
                misses: 2,
                evictions: 1,
            }
        } else {
            CacheTelemetry {
                hits: 7,
                misses: 3,
                evictions: 0,
            }
        };
        vec![
            Action::Reply(valid_reply(spec)),
            Action::Reply(heartbeat_line(t)),
        ]
    });
    let out = run_sweep(inputs(6, 2), &opts(2), &factory, exec).unwrap();
    assert_all_values(&out.values, 6, 2);
    assert_eq!(out.stats.cache_hits, 12);
    assert_eq!(out.stats.cache_misses, 5);
    assert_eq!(out.stats.cache_evictions, 1);
}

#[test]
fn reconnect_accumulates_both_sessions_telemetry() {
    // Heartbeats carry per-session totals; a transport reset starts a
    // new session whose counters restart from zero. The sweep total
    // must be the SUM of sessions, not the last session's counters —
    // losing the first session's {5,2,1} was the historical bug.
    let factory = MockFactory::new(|_, spec| match (spec.id, spec.attempt) {
        (0, 0) => vec![
            Action::Reply(heartbeat_line(CacheTelemetry {
                hits: 5,
                misses: 2,
                evictions: 1,
            })),
            Action::Reset,
        ],
        (0, _) => vec![
            Action::Reply(heartbeat_line(CacheTelemetry {
                hits: 3,
                misses: 1,
                evictions: 1,
            })),
            Action::Reply(valid_reply(spec)),
        ],
        _ => vec![Action::Reply(valid_reply(spec))],
    });
    let out = run_sweep(inputs(2, 2), &opts(1), &factory, exec).unwrap();
    assert_all_values(&out.values, 2, 2);
    assert_eq!(out.stats.reconnects, 1);
    assert_eq!(out.stats.crashes, 0);
    assert_eq!(out.stats.cache_hits, 8, "5 before + 3 after the reset");
    assert_eq!(out.stats.cache_misses, 3);
    assert_eq!(out.stats.cache_evictions, 2);
}

#[test]
fn corrupt_duplicate_naming_another_shard_does_not_yank_the_current_one() {
    // Worker 1, while holding shard 1, emits a corrupt line naming the
    // already-settled shard 0, then its own (valid) shard 1 reply. The
    // corruption must strike the sender but say nothing about shard 1:
    // requeueing the in-flight shard on a cross-shard strike was the
    // historical bug (it showed up as a phantom retry).
    let factory = MockFactory::new(|slot, spec| {
        if slot == 1 && spec.id == 1 && spec.attempt == 0 {
            let settled = ShardSpec {
                id: 0,
                attempt: 0,
                expect: 2,
                job: serde::to_value(&MockJob { k: 0, n: 2 }),
            };
            vec![
                Action::Reply(corrupt_checksum_reply(&settled)),
                Action::Reply(valid_reply(spec)),
            ]
        } else {
            vec![Action::Reply(valid_reply(spec))]
        }
    });
    let out = run_sweep(inputs(4, 2), &opts(2), &factory, exec).unwrap();
    assert_all_values(&out.values, 4, 2);
    assert_eq!(out.stats.corrupt, 1);
    assert_eq!(out.stats.retries, 0, "the in-flight shard was not requeued");
    assert_eq!(out.stats.quarantined, 0);
    assert_eq!(out.stats.timeouts, 0);
}

#[test]
fn late_duplicate_frees_only_the_replying_worker() {
    // The full late-duplicate shape. Shard 0 wedges on worker 1 (slot
    // 0), times out, and its retry lands on slot 1 — which stays
    // silent while the *original* worker's late copy arrives. That
    // copy settles the shard but must NOT free slot 1: it is still
    // grinding. Fresh work (shard 2's final retry) must therefore go
    // to slot 2; dealing it to slot 1 — the historical behavior — let
    // its deadline tick against stolen time and ended in a spurious
    // timeout + quarantine of a healthy worker.
    const ST: Duration = Duration::from_millis(500);
    let factory = MockFactory::new(|slot, spec| match (slot, spec.id, spec.attempt) {
        (0, 0, 0) => vec![Action::Silent], // the wedge
        (_, 0, 1) => vec![Action::ReplyAs(1, valid_reply(spec))], // late copy, retry-holder silent
        (2, 2, 0) => vec![Action::Reply(corrupt_checksum_reply(spec))],
        (1, 2, 1) => vec![Action::Reply(corrupt_checksum_reply(spec))],
        (1, 2, _) => vec![Action::Silent], // slot 1 is busy with stale shard 0
        _ => vec![Action::Reply(valid_reply(spec))],
    });
    let mut o = opts(3);
    o.shard_timeout = ST;
    o.backoff_base = Duration::from_millis(375);
    o.backoff_cap = Duration::from_millis(1000);
    let out = run_sweep(inputs(4, 2), &o, &factory, exec).unwrap();
    assert_all_values(&out.values, 4, 2);
    assert_eq!(out.stats.timeouts, 1, "only the original wedge timed out");
    assert_eq!(
        out.stats.quarantined, 1,
        "no spurious quarantine of the duplicate-holder"
    );
    assert_eq!(out.stats.corrupt, 2);
    assert_eq!(out.stats.retries, 3);
    assert_eq!(out.stats.crashes, 0);
    assert_eq!(out.stats.inproc_shards, 0);
}

#[test]
fn inproc_escalation_is_not_counted_as_a_retry() {
    // With max_shard_attempts = 4 a hopeless shard is delivered 4
    // times and then escalates in-process: that is 3 redeliveries.
    // Counting the escalation itself as a 4th retry was the bug.
    let factory = MockFactory::new(|_, spec| {
        let refusal = WorkerReply::Error(ShardError {
            id: spec.id,
            error: "not on my watch".into(),
        });
        vec![Action::Reply(serde_json::to_string(&refusal).unwrap())]
    });
    let out = run_sweep(inputs(1, 2), &opts(1), &factory, exec).unwrap();
    assert_all_values(&out.values, 1, 2);
    assert_eq!(out.stats.refused, 4, "one refusal per delivery");
    assert_eq!(
        out.stats.retries, 3,
        "the in-process escalation is not a retry"
    );
    assert_eq!(out.stats.inproc_shards, 1);
}

/// [`MockFactory`] plus a spawn counter, to pin fleet residency.
struct CountingFactory {
    inner: MockFactory,
    spawns: AtomicUsize,
}

impl WorkerFactory for CountingFactory {
    fn spawn(
        &self,
        slot: usize,
        worker: u64,
        events: Sender<WorkerEvent>,
    ) -> std::io::Result<Box<dyn WorkerLink>> {
        self.spawns.fetch_add(1, Ordering::SeqCst);
        self.inner.spawn(slot, worker, events)
    }
}

#[test]
fn queued_sweeps_multiplex_onto_one_fleet() {
    // Three manifests (one empty) through one scheduler: every shard
    // streams to the sink under its own sweep's index, each sweep gets
    // its own stats, and the fleet is spawned exactly once.
    let factory = CountingFactory {
        inner: MockFactory::new(|_, spec| vec![Action::Reply(valid_reply(spec))]),
        spawns: AtomicUsize::new(0),
    };
    let mut sched = SweepScheduler::new(opts(2), &factory);
    let queue = vec![inputs(3, 2), Vec::new(), inputs(2, 2)];
    let mut got: Vec<Vec<Option<Vec<Option<f64>>>>> =
        vec![vec![None; 3], Vec::new(), vec![None; 2]];
    let stats = sched
        .run_queue(queue, exec, |sweep, shard, values| {
            assert!(got[sweep][shard].is_none(), "each shard settles once");
            got[sweep][shard] = Some(values);
        })
        .unwrap();
    assert_eq!(stats.len(), 3);
    for (sweep, slots) in got.into_iter().enumerate() {
        let values: Vec<_> = slots.into_iter().map(Option::unwrap).collect();
        assert_all_values(&values, values.len() as u64, 2);
        assert_eq!(stats[sweep].workers_spawned, 2);
        assert_eq!(stats[sweep].inproc_shards, 0);
    }
    assert_eq!(factory.spawns.load(Ordering::SeqCst), 2);
}

#[test]
fn resident_fleet_survives_across_sweeps_with_disjoint_telemetry() {
    // Two sweeps, one scheduler: no respawn in between, and because
    // the workers' session counters don't grow between sweeps, sweep 2
    // must report a zero telemetry delta — consecutive sweeps see
    // non-overlapping windows of the same monotone fleet total.
    let beat = CacheTelemetry {
        hits: 5,
        misses: 2,
        evictions: 1,
    };
    let factory = CountingFactory {
        inner: MockFactory::new(move |_, spec| {
            vec![
                Action::Reply(valid_reply(spec)),
                Action::Reply(heartbeat_line(beat)),
            ]
        }),
        spawns: AtomicUsize::new(0),
    };
    let mut sched = SweepScheduler::new(opts(2), &factory);
    let out1 = sched.run_sweep(inputs(4, 2), exec).unwrap();
    assert_all_values(&out1.values, 4, 2);
    let out2 = sched.run_sweep(inputs(3, 2), exec).unwrap();
    assert_all_values(&out2.values, 3, 2);
    assert_eq!(factory.spawns.load(Ordering::SeqCst), 2, "no respawn");
    assert_eq!(out2.stats.workers_spawned, 2);
    assert_eq!(out1.stats.cache_hits, 10, "both workers' session totals");
    assert_eq!(
        out2.stats.cache_hits, 0,
        "no new hits since sweep 1 settled"
    );
}

#[test]
fn stale_reply_from_a_previous_sweep_is_ignored() {
    // Sweep 2's first delivery (global wire id 4) is preceded by a
    // leftover duplicate of sweep 1's shard 0. Global wire ids make it
    // stale by construction: it must be dropped without a strike and
    // without colliding with sweep 2's own shard 0.
    let factory = MockFactory::new(|_, spec| {
        if spec.id == 4 {
            let old = ShardSpec {
                id: 0,
                attempt: 0,
                expect: 2,
                job: serde::to_value(&MockJob { k: 0, n: 2 }),
            };
            vec![
                Action::Reply(valid_reply(&old)),
                Action::Reply(valid_reply(spec)),
            ]
        } else {
            vec![Action::Reply(valid_reply(spec))]
        }
    });
    let mut sched = SweepScheduler::new(opts(2), &factory);
    let out1 = sched.run_sweep(inputs(4, 2), exec).unwrap();
    assert_all_values(&out1.values, 4, 2);
    let out2 = sched.run_sweep(inputs(3, 2), exec).unwrap();
    assert_all_values(&out2.values, 3, 2);
    assert_eq!(out2.stats.corrupt, 0, "a stale reply is not corruption");
    assert_eq!(out2.stats.retries, 0);
    assert_eq!(out2.stats.quarantined, 0);
}
