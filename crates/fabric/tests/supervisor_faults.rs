//! Supervisor failure-path tests against scripted in-process mock
//! workers: every recovery route — crash, hang, corrupt output,
//! quarantine, spawn failure, fleet collapse, duplicate replies — must
//! end in the same values a faultless run produces.

use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Duration;

use pbbf_fabric::protocol::{result_reply, ShardError, ShardSpec, WorkerReply};
use pbbf_fabric::{
    run_sweep, CacheTelemetry, ShardInput, SweepOptions, WorkerEvent, WorkerFactory, WorkerLink,
};
use serde::{Deserialize, Serialize};
use serde_json::Value as Json;

/// The mock job: shard `k` must produce `n` values `k*100 + i`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct MockJob {
    k: u64,
    n: u64,
}

fn inputs(shards: u64, runs: u64) -> Vec<ShardInput> {
    (0..shards)
        .map(|k| ShardInput {
            job: serde::to_value(&MockJob { k, n: runs }),
            expect: runs as usize,
        })
        .collect()
}

fn expected_values(k: u64, n: u64) -> Vec<Option<f64>> {
    (0..n).map(|i| Some((k * 100 + i) as f64)).collect()
}

fn exec(job: &Json) -> Result<Vec<Option<f64>>, String> {
    let job: MockJob = serde::from_value(job.clone()).map_err(|e| e.to_string())?;
    Ok(expected_values(job.k, job.n))
}

fn valid_reply(spec: &ShardSpec) -> String {
    let job: MockJob = serde::from_value(spec.job.clone()).expect("mock job");
    serde_json::to_string(&result_reply(spec.id, &expected_values(job.k, job.n)))
        .expect("render reply")
}

fn corrupt_checksum_reply(spec: &ShardSpec) -> String {
    let WorkerReply::Result(mut r) = serde_json::from_str(&valid_reply(spec)).unwrap() else {
        unreachable!("valid_reply builds a Result");
    };
    r.checksum ^= 0xBAD_C0DE;
    serde_json::to_string(&WorkerReply::Result(r)).unwrap()
}

/// What a scripted worker does upon receiving one shard spec.
enum Action {
    /// Emit this raw stdout line.
    Reply(String),
    /// Die: emit `Gone` and fail all further sends.
    Die,
    /// Say nothing (the hang shape — the deadline must catch it).
    Silent,
    /// Transport dropped and came back: emit `Reset` (the in-flight
    /// shard is lost on the far side, the worker survives).
    Reset,
}

type Script = dyn Fn(usize, &ShardSpec) -> Vec<Action> + Send + Sync;

struct MockFactory {
    script: Arc<Script>,
    /// Slots whose spawn fails outright.
    fail_slots: Vec<usize>,
    /// Spawn links that claim to be remote (host-liveness applies).
    remote: bool,
    /// Slots exempt from `remote` (mixed-fleet tests). A scripted mock
    /// can't heartbeat while idle the way a real TCP worker does, so
    /// liveness tests mark only the misbehaving slot remote.
    local_slots: Vec<usize>,
}

impl MockFactory {
    fn new(script: impl Fn(usize, &ShardSpec) -> Vec<Action> + Send + Sync + 'static) -> Self {
        Self {
            script: Arc::new(script),
            fail_slots: Vec::new(),
            remote: false,
            local_slots: Vec::new(),
        }
    }

    fn remote(script: impl Fn(usize, &ShardSpec) -> Vec<Action> + Send + Sync + 'static) -> Self {
        Self {
            remote: true,
            ..Self::new(script)
        }
    }
}

struct MockLink {
    slot: usize,
    worker: u64,
    events: Sender<WorkerEvent>,
    script: Arc<Script>,
    dead: bool,
    remote: bool,
}

impl WorkerLink for MockLink {
    fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        if self.dead {
            return Err(std::io::Error::other("mock worker is dead"));
        }
        let spec: ShardSpec = serde_json::from_str(line)
            .map_err(|e| std::io::Error::other(format!("bad spec: {e}")))?;
        for action in (self.script)(self.slot, &spec) {
            match action {
                Action::Reply(reply) => {
                    let _ = self.events.send(WorkerEvent::Line {
                        worker: self.worker,
                        line: reply,
                    });
                }
                Action::Die => {
                    self.dead = true;
                    let _ = self.events.send(WorkerEvent::Gone {
                        worker: self.worker,
                    });
                }
                Action::Silent => {}
                Action::Reset => {
                    let _ = self.events.send(WorkerEvent::Reset {
                        worker: self.worker,
                    });
                }
            }
        }
        Ok(())
    }

    fn kill(&mut self) {
        if !self.dead {
            self.dead = true;
            let _ = self.events.send(WorkerEvent::Gone {
                worker: self.worker,
            });
        }
    }

    fn remote(&self) -> bool {
        self.remote
    }
}

impl WorkerFactory for MockFactory {
    fn spawn(
        &self,
        slot: usize,
        worker: u64,
        events: Sender<WorkerEvent>,
    ) -> std::io::Result<Box<dyn WorkerLink>> {
        if self.fail_slots.contains(&slot) {
            return Err(std::io::Error::other("mock spawn failure"));
        }
        Ok(Box::new(MockLink {
            slot,
            worker,
            events,
            script: Arc::clone(&self.script),
            dead: false,
            remote: self.remote && !self.local_slots.contains(&slot),
        }))
    }
}

/// Fast-retry options so failure tests finish in milliseconds.
fn opts(workers: usize) -> SweepOptions {
    SweepOptions {
        workers,
        shard_timeout: Duration::from_secs(5),
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(10),
        ..SweepOptions::default()
    }
}

fn assert_all_values(values: &[Vec<Option<f64>>], shards: u64, runs: u64) {
    assert_eq!(values.len(), shards as usize);
    for (k, vals) in values.iter().enumerate() {
        assert_eq!(vals, &expected_values(k as u64, runs), "shard {k}");
    }
}

#[test]
fn healthy_fleet_completes() {
    let factory = MockFactory::new(|_, spec| vec![Action::Reply(valid_reply(spec))]);
    let out = run_sweep(inputs(8, 3), &opts(3), &factory, exec).unwrap();
    assert_all_values(&out.values, 8, 3);
    assert_eq!(out.stats.workers_spawned, 3);
    assert_eq!(out.stats.retries, 0);
    assert_eq!(out.stats.inproc_shards, 0);
}

#[test]
fn crashed_shard_retries_on_a_healthy_worker() {
    // Whoever gets shard 2 first dies mid-shard; the retry succeeds.
    let factory = MockFactory::new(|_, spec| {
        if spec.id == 2 && spec.attempt == 0 {
            vec![Action::Die]
        } else {
            vec![Action::Reply(valid_reply(spec))]
        }
    });
    let out = run_sweep(inputs(6, 2), &opts(3), &factory, exec).unwrap();
    assert_all_values(&out.values, 6, 2);
    assert_eq!(out.stats.crashes, 1);
    assert!(out.stats.retries >= 1);
    assert_eq!(out.stats.inproc_shards, 0, "a worker retry sufficed");
}

#[test]
fn hung_shard_times_out_quarantines_and_retries() {
    let factory = MockFactory::new(|_, spec| {
        if spec.id == 1 && spec.attempt == 0 {
            vec![Action::Silent]
        } else {
            vec![Action::Reply(valid_reply(spec))]
        }
    });
    let mut o = opts(3);
    o.shard_timeout = Duration::from_millis(50);
    let out = run_sweep(inputs(5, 2), &o, &factory, exec).unwrap();
    assert_all_values(&out.values, 5, 2);
    assert_eq!(out.stats.timeouts, 1);
    assert_eq!(out.stats.quarantined, 1, "a wedged worker is not reused");
}

#[test]
fn corrupt_reply_is_rejected_and_retried() {
    let factory = MockFactory::new(|_, spec| {
        if spec.id == 0 && spec.attempt == 0 {
            vec![Action::Reply(corrupt_checksum_reply(spec))]
        } else {
            vec![Action::Reply(valid_reply(spec))]
        }
    });
    let out = run_sweep(inputs(4, 2), &opts(2), &factory, exec).unwrap();
    assert_all_values(&out.values, 4, 2);
    assert_eq!(out.stats.corrupt, 1);
    assert_eq!(out.stats.quarantined, 0, "one strike is forgiven");
}

#[test]
fn wrong_length_reply_is_corrupt() {
    let factory = MockFactory::new(|_, spec| {
        if spec.id == 3 && spec.attempt == 0 {
            // Truncated values under a *recomputed* checksum: length
            // validation, not the checksum, must catch this one.
            let truncated = result_reply(spec.id, &[Some(1.0)]);
            vec![Action::Reply(serde_json::to_string(&truncated).unwrap())]
        } else {
            vec![Action::Reply(valid_reply(spec))]
        }
    });
    let out = run_sweep(inputs(5, 3), &opts(2), &factory, exec).unwrap();
    assert_all_values(&out.values, 5, 3);
    assert_eq!(out.stats.corrupt, 1);
}

#[test]
fn persistently_corrupt_worker_is_quarantined() {
    // Slot 0 corrupts everything it touches; slot 1 is honest. The
    // fabric must bench slot 0 after max_worker_strikes and still
    // finish every shard correctly.
    let factory = MockFactory::new(|slot, spec| {
        if slot == 0 {
            vec![Action::Reply(corrupt_checksum_reply(spec))]
        } else {
            vec![Action::Reply(valid_reply(spec))]
        }
    });
    let out = run_sweep(inputs(8, 2), &opts(2), &factory, exec).unwrap();
    assert_all_values(&out.values, 8, 2);
    assert_eq!(out.stats.quarantined, 1);
    assert!(out.stats.corrupt >= 2, "strikes accumulated to the limit");
}

#[test]
fn spawn_failure_degrades_to_in_process() {
    let mut factory = MockFactory::new(|_, spec| vec![Action::Reply(valid_reply(spec))]);
    factory.fail_slots = (0..3).collect();
    let out = run_sweep(inputs(6, 2), &opts(3), &factory, exec).unwrap();
    assert_all_values(&out.values, 6, 2);
    assert_eq!(out.stats.workers_spawned, 0);
    assert_eq!(out.stats.spawn_failures, 3);
    assert_eq!(out.stats.inproc_shards, 6, "every shard ran in-process");
}

#[test]
fn fleet_collapse_drains_in_process() {
    // The only worker dies on its first shard; everything else must
    // complete through the in-process drain.
    let factory = MockFactory::new(|_, _| vec![Action::Die]);
    let out = run_sweep(inputs(5, 2), &opts(1), &factory, exec).unwrap();
    assert_all_values(&out.values, 5, 2);
    assert_eq!(out.stats.crashes, 1);
    assert_eq!(out.stats.inproc_shards, 5);
}

#[test]
fn duplicate_replies_fold_once() {
    // A worker that answers every shard twice (the late-retry shape).
    let factory = MockFactory::new(|_, spec| {
        vec![
            Action::Reply(valid_reply(spec)),
            Action::Reply(valid_reply(spec)),
        ]
    });
    let out = run_sweep(inputs(7, 2), &opts(2), &factory, exec).unwrap();
    assert_all_values(&out.values, 7, 2);
    assert_eq!(out.stats.corrupt, 0, "duplicates are not corruption");
}

#[test]
fn refused_shards_fall_back_to_in_process() {
    // Every worker refuses shard 2 (as if its job were malformed from
    // where they stand); the in-process executor settles it.
    let factory = MockFactory::new(|_, spec| {
        if spec.id == 2 {
            let refusal = WorkerReply::Error(ShardError {
                id: spec.id,
                error: "not on my watch".into(),
            });
            vec![Action::Reply(serde_json::to_string(&refusal).unwrap())]
        } else {
            vec![Action::Reply(valid_reply(spec))]
        }
    });
    let out = run_sweep(inputs(5, 2), &opts(2), &factory, exec).unwrap();
    assert_all_values(&out.values, 5, 2);
    assert_eq!(out.stats.refused, 4, "one refusal per worker attempt");
    assert_eq!(out.stats.inproc_shards, 1);
}

#[test]
fn garbage_line_is_a_strike_not_a_crash() {
    let factory = MockFactory::new(|_, spec| {
        if spec.id == 1 && spec.attempt == 0 {
            vec![Action::Reply("{not json at all".into())]
        } else {
            vec![Action::Reply(valid_reply(spec))]
        }
    });
    let out = run_sweep(inputs(4, 2), &opts(2), &factory, exec).unwrap();
    assert_all_values(&out.values, 4, 2);
    assert_eq!(out.stats.corrupt, 1);
}

#[test]
fn empty_manifest_is_a_noop() {
    let factory = MockFactory::new(|_, spec| vec![Action::Reply(valid_reply(spec))]);
    let out = run_sweep(Vec::new(), &opts(2), &factory, exec).unwrap();
    assert!(out.values.is_empty());
    assert_eq!(out.stats.workers_spawned, 0);
}

fn heartbeat_line(t: CacheTelemetry) -> String {
    serde_json::to_string(&WorkerReply::Heartbeat(t)).unwrap()
}

#[test]
fn silent_remote_host_trips_liveness_not_the_shard_deadline() {
    // Slot 0 goes completely dark on its first shard — the vanished-host
    // shape. The shard deadline is far away; host liveness must be what
    // reclaims the shard, and the honest worker finishes the sweep.
    let mut factory = MockFactory::remote(|slot, spec| {
        if slot == 0 {
            vec![Action::Silent]
        } else {
            vec![Action::Reply(valid_reply(spec))]
        }
    });
    // Only the dark host is remote: an idle scripted mock can't
    // heartbeat, so an all-remote fleet would trip liveness at rest.
    factory.local_slots = vec![1];
    let mut o = opts(2);
    o.liveness_timeout = Duration::from_millis(50);
    let out = run_sweep(inputs(5, 2), &o, &factory, exec).unwrap();
    assert_all_values(&out.values, 5, 2);
    assert_eq!(out.stats.hosts_lost, 1);
    assert_eq!(out.stats.quarantined, 1);
    assert_eq!(out.stats.timeouts, 0, "liveness fired, not the deadline");
}

#[test]
fn local_workers_are_exempt_from_liveness() {
    // The same silence from a *local* (pipe) worker must NOT trip the
    // host-liveness detector — pipes report death via Gone; only the
    // per-shard deadline may reclaim this shard.
    let factory = MockFactory::new(|slot, spec| {
        if slot == 0 && spec.attempt == 0 {
            vec![Action::Silent]
        } else {
            vec![Action::Reply(valid_reply(spec))]
        }
    });
    let mut o = opts(2);
    o.liveness_timeout = Duration::from_millis(20);
    o.shard_timeout = Duration::from_millis(120);
    let out = run_sweep(inputs(4, 2), &o, &factory, exec).unwrap();
    assert_all_values(&out.values, 4, 2);
    assert_eq!(out.stats.hosts_lost, 0);
    assert_eq!(out.stats.timeouts, 1, "the deadline caught it instead");
}

#[test]
fn transport_reset_requeues_without_losing_the_worker() {
    // The yanked-cable-plugged-back-in path: the link reconnects mid-
    // shard. The in-flight shard must requeue, the worker must stay in
    // the fleet (it later completes the retry), and nothing counts as a
    // crash or lost host.
    let factory = MockFactory::remote(|_, spec| {
        if spec.id == 2 && spec.attempt == 0 {
            vec![Action::Reset]
        } else {
            vec![Action::Reply(valid_reply(spec))]
        }
    });
    let out = run_sweep(inputs(6, 2), &opts(2), &factory, exec).unwrap();
    assert_all_values(&out.values, 6, 2);
    assert_eq!(out.stats.reconnects, 1);
    assert_eq!(out.stats.crashes, 0);
    assert_eq!(out.stats.hosts_lost, 0);
    assert_eq!(out.stats.quarantined, 0);
    assert!(out.stats.retries >= 1, "the lost shard was requeued");
}

#[test]
fn heartbeat_telemetry_aggregates_across_the_fleet() {
    // Each worker heartbeats its cache counters after every reply; the
    // supervisor must keep the *latest* per worker and sum the fleet.
    let factory = MockFactory::remote(|slot, spec| {
        let t = if slot == 0 {
            CacheTelemetry {
                hits: 5,
                misses: 2,
                evictions: 1,
            }
        } else {
            CacheTelemetry {
                hits: 7,
                misses: 3,
                evictions: 0,
            }
        };
        vec![
            Action::Reply(valid_reply(spec)),
            Action::Reply(heartbeat_line(t)),
        ]
    });
    let out = run_sweep(inputs(6, 2), &opts(2), &factory, exec).unwrap();
    assert_all_values(&out.values, 6, 2);
    assert_eq!(out.stats.cache_hits, 12);
    assert_eq!(out.stats.cache_misses, 5);
    assert_eq!(out.stats.cache_evictions, 1);
}
