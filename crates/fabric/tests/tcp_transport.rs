//! Loopback-socket tests for the TCP transport: every failure mode a
//! real network adds — torn writes, half-open connections, garbage,
//! slow peers, duplicate replies after reconnect — must end in the
//! exact values a faultless run produces, because the merger folds by
//! manifest position and shard values are deterministic.
//!
//! The worker side is either the real [`serve_listener`] loop (happy
//! path, telemetry) or a hand-scripted socket server (fault shapes a
//! healthy worker would never produce).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pbbf_fabric::protocol::{result_reply, ShardSpec, WorkerReply};
use pbbf_fabric::{
    run_sweep, serve_listener, CacheTelemetry, ServeOptions, ShardInput, SweepOptions, TcpOptions,
    TcpWorkerFactory,
};
use serde::{Deserialize, Serialize};
use serde_json::Value as Json;

/// The mock job: shard `k` must produce `n` values `k*100 + i`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct MockJob {
    k: u64,
    n: u64,
}

fn inputs(shards: u64, runs: u64) -> Vec<ShardInput> {
    (0..shards)
        .map(|k| ShardInput {
            job: serde::to_value(&MockJob { k, n: runs }),
            expect: runs as usize,
        })
        .collect()
}

fn expected_values(k: u64, n: u64) -> Vec<Option<f64>> {
    (0..n).map(|i| Some((k * 100 + i) as f64)).collect()
}

fn exec(job: &Json) -> Result<Vec<Option<f64>>, String> {
    let job: MockJob = serde::from_value(job.clone()).map_err(|e| e.to_string())?;
    Ok(expected_values(job.k, job.n))
}

fn assert_all_values(values: &[Vec<Option<f64>>], shards: u64, runs: u64) {
    assert_eq!(values.len(), shards as usize);
    for (k, vals) in values.iter().enumerate() {
        assert_eq!(vals, &expected_values(k as u64, runs), "shard {k}");
    }
}

/// Fast transport knobs so fault tests finish in milliseconds.
fn tcp_opts() -> TcpOptions {
    TcpOptions {
        connect_timeout: Duration::from_secs(2),
        read_poll: Duration::from_millis(10),
        max_reconnects: 2,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(20),
    }
}

fn sweep_opts(workers: usize) -> SweepOptions {
    SweepOptions {
        workers,
        shard_timeout: Duration::from_secs(5),
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(10),
        liveness_timeout: Duration::from_secs(2),
        ..SweepOptions::default()
    }
}

fn factory(addr: &str) -> TcpWorkerFactory {
    TcpWorkerFactory {
        hosts: vec![addr.to_string()],
        options: tcp_opts(),
    }
}

/// Binds a loopback listener and runs `server` over it on a thread;
/// returns the address to dial. The thread is deliberately leaked —
/// fault-shaped servers may be blocked in `accept` when the test ends.
fn script_server(server: impl FnOnce(TcpListener) + Send + 'static) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    std::thread::spawn(move || server(listener));
    addr
}

fn read_spec(reader: &mut impl BufRead) -> Option<ShardSpec> {
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return None,
            Ok(_) if line.trim().is_empty() => {}
            Ok(_) => return serde_json::from_str(line.trim_end()).ok(),
        }
    }
}

fn write_reply(stream: &mut TcpStream, reply: &WorkerReply) {
    let mut line = serde_json::to_string(reply).expect("render reply");
    line.push('\n');
    let _ = stream.write_all(line.as_bytes());
}

fn valid_reply(spec: &ShardSpec) -> WorkerReply {
    let job: MockJob = serde::from_value(spec.job.clone()).expect("mock job");
    result_reply(spec.id, &expected_values(job.k, job.n))
}

/// A server connection that answers every spec correctly, plus an
/// immediate heartbeat (so liveness stays satisfied without a timer).
fn serve_honestly(stream: TcpStream) {
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    while let Some(spec) = read_spec(&mut reader) {
        write_reply(&mut writer, &valid_reply(&spec));
        write_reply(
            &mut writer,
            &WorkerReply::Heartbeat(CacheTelemetry::default()),
        );
    }
}

#[test]
fn loopback_sweep_completes_and_aggregates_telemetry() {
    // The real worker serve loop: executed shards bump a counter the
    // telemetry closure reports, and the supervisor must fold those
    // heartbeats into SweepStats.
    let execs = Arc::new(AtomicU64::new(0));
    let server_execs = Arc::clone(&execs);
    let addr = script_server(move |listener| {
        let count = Arc::clone(&server_execs);
        let telemetry = move || CacheTelemetry {
            hits: count.load(Ordering::SeqCst),
            misses: 0,
            evictions: 0,
        };
        let count = Arc::clone(&server_execs);
        let exec = move |job: &Json| {
            count.fetch_add(1, Ordering::SeqCst);
            exec(job)
        };
        let options = ServeOptions {
            heartbeat: Duration::from_millis(25),
            once: true,
        };
        let _ = serve_listener(&listener, &options, exec, telemetry);
    });
    let out = run_sweep(inputs(4, 2), &sweep_opts(1), &factory(&addr), exec).unwrap();
    assert_all_values(&out.values, 4, 2);
    assert_eq!(out.stats.workers_spawned, 1);
    assert_eq!(out.stats.hosts_lost, 0);
    assert_eq!(out.stats.reconnects, 0);
    assert_eq!(out.stats.inproc_shards, 0);
    // The very last per-shard heartbeat may still be in flight when the
    // merger completes, so the floor is shards - 1.
    assert!(
        out.stats.cache_hits >= 3,
        "telemetry reached stats: {}",
        out.stats
    );
}

#[test]
fn partial_line_at_disconnect_is_struck_and_retried() {
    // Connection 1 tears mid-reply: half a JSON line, no newline, then
    // close. The fragment must be struck as corrupt, the reconnect must
    // surface as Reset, and the retry (connection 2) settles the shard.
    let addr = script_server(|listener| {
        let (stream, _) = listener.accept().expect("first connection");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        if read_spec(&mut reader).is_some() {
            let _ = writer.write_all(b"{\"Result\":{\"id\":0,\"val");
            let _ = writer.shutdown(std::net::Shutdown::Both);
        }
        drop(writer);
        drop(reader);
        let (stream, _) = listener.accept().expect("second connection");
        serve_honestly(stream);
    });
    let out = run_sweep(inputs(3, 2), &sweep_opts(1), &factory(&addr), exec).unwrap();
    assert_all_values(&out.values, 3, 2);
    assert_eq!(out.stats.corrupt, 1, "the torn fragment was struck");
    assert_eq!(out.stats.reconnects, 1);
    assert_eq!(out.stats.crashes, 0);
    assert_eq!(out.stats.inproc_shards, 0);
}

#[test]
fn half_open_silent_peer_trips_host_liveness() {
    // The server accepts and then says nothing, ever — no heartbeats,
    // no replies, connection held open. That is indistinguishable from
    // a vanished host and must be quarantined by the liveness window,
    // not the (much longer) shard deadline.
    let addr = script_server(|listener| {
        let (stream, _) = listener.accept().expect("connection");
        // Hold the socket open without writing; read so the peer's
        // writes don't block, then park until the test tears us down.
        let mut reader = BufReader::new(stream);
        let mut sink = String::new();
        while let Ok(n) = reader.read_line(&mut sink) {
            if n == 0 {
                return;
            }
        }
    });
    let mut o = sweep_opts(1);
    o.liveness_timeout = Duration::from_millis(100);
    let out = run_sweep(inputs(3, 2), &o, &factory(&addr), exec).unwrap();
    assert_all_values(&out.values, 3, 2);
    assert_eq!(out.stats.hosts_lost, 1);
    assert_eq!(out.stats.timeouts, 0, "liveness fired, not the deadline");
    assert_eq!(
        out.stats.inproc_shards, 3,
        "the fleet collapsed to in-process"
    );
}

#[test]
fn garbage_mid_stream_is_a_strike_not_a_disconnect() {
    let addr = script_server(|listener| {
        let (stream, _) = listener.accept().expect("connection");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let mut first = true;
        while let Some(spec) = read_spec(&mut reader) {
            if std::mem::take(&mut first) {
                let _ = writer.write_all(b"%% line noise, not JSON %%\n");
            }
            write_reply(&mut writer, &valid_reply(&spec));
            write_reply(
                &mut writer,
                &WorkerReply::Heartbeat(CacheTelemetry::default()),
            );
        }
    });
    let out = run_sweep(inputs(4, 2), &sweep_opts(1), &factory(&addr), exec).unwrap();
    assert_all_values(&out.values, 4, 2);
    assert_eq!(out.stats.corrupt, 1);
    assert_eq!(out.stats.reconnects, 0, "the connection itself was fine");
    assert_eq!(out.stats.hosts_lost, 0);
}

#[test]
fn slow_writer_trips_the_shard_deadline_not_liveness() {
    // The wedged-but-alive shape: the worker heartbeats on schedule but
    // never delivers the result. Host liveness must stay quiet (the
    // host IS alive); the per-shard deadline reclaims the work.
    let addr = script_server(|listener| {
        let (stream, _) = listener.accept().expect("connection");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        if read_spec(&mut reader).is_some() {
            loop {
                write_reply(
                    &mut writer,
                    &WorkerReply::Heartbeat(CacheTelemetry::default()),
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    });
    let mut o = sweep_opts(1);
    o.shard_timeout = Duration::from_millis(150);
    o.liveness_timeout = Duration::from_secs(5);
    let out = run_sweep(inputs(2, 2), &o, &factory(&addr), exec).unwrap();
    assert_all_values(&out.values, 2, 2);
    assert_eq!(out.stats.timeouts, 1);
    assert_eq!(
        out.stats.hosts_lost, 0,
        "heartbeats kept liveness satisfied"
    );
    assert_eq!(out.stats.quarantined, 1);
}

#[test]
fn duplicate_replies_after_reconnect_fold_once() {
    // Connection 1 answers its shard and then drops. Connection 2
    // re-sends that same reply (the late-duplicate shape) before
    // serving the rest. The merger must fold the value exactly once
    // and the output must not notice any of it.
    let addr = script_server(|listener| {
        let (stream, _) = listener.accept().expect("first connection");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let first_spec = read_spec(&mut reader).expect("first shard");
        write_reply(&mut writer, &valid_reply(&first_spec));
        let _ = writer.shutdown(std::net::Shutdown::Both);
        drop(writer);
        drop(reader);
        let (stream, _) = listener.accept().expect("second connection");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        write_reply(&mut writer, &valid_reply(&first_spec)); // duplicate
        while let Some(spec) = read_spec(&mut reader) {
            write_reply(&mut writer, &valid_reply(&spec));
            write_reply(
                &mut writer,
                &WorkerReply::Heartbeat(CacheTelemetry::default()),
            );
        }
    });
    let out = run_sweep(inputs(4, 2), &sweep_opts(1), &factory(&addr), exec).unwrap();
    assert_all_values(&out.values, 4, 2);
    assert_eq!(out.stats.reconnects, 1);
    assert_eq!(out.stats.corrupt, 0, "duplicates are not corruption");
    assert_eq!(out.stats.inproc_shards, 0);
}

#[test]
fn reconnect_preserves_session_telemetry_exactly() {
    // Heartbeats carry per-session totals (deltas from the connection
    // baseline — see docs/PROTOCOL.md §3.3). Connection 1 reports
    // {5,2,1} and drops; connection 2 reports {7,3,0} before every
    // reply. The sweep must report the SUM of both sessions: wiping
    // the first session's counters on reconnect was the historical
    // bug. The second connection's heartbeat precedes each reply, so
    // its counters are always folded in before the sweep settles, and
    // repeating the same totals keeps the sum exact no matter how
    // many shards each connection ends up serving.
    let addr = script_server(|listener| {
        let (stream, _) = listener.accept().expect("first connection");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        if let Some(spec) = read_spec(&mut reader) {
            write_reply(
                &mut writer,
                &WorkerReply::Heartbeat(CacheTelemetry {
                    hits: 5,
                    misses: 2,
                    evictions: 1,
                }),
            );
            write_reply(&mut writer, &valid_reply(&spec));
        }
        let _ = writer.shutdown(std::net::Shutdown::Both);
        drop(writer);
        drop(reader);
        let (stream, _) = listener.accept().expect("second connection");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        while let Some(spec) = read_spec(&mut reader) {
            write_reply(
                &mut writer,
                &WorkerReply::Heartbeat(CacheTelemetry {
                    hits: 7,
                    misses: 3,
                    evictions: 0,
                }),
            );
            write_reply(&mut writer, &valid_reply(&spec));
        }
    });
    let out = run_sweep(inputs(3, 2), &sweep_opts(1), &factory(&addr), exec).unwrap();
    assert_all_values(&out.values, 3, 2);
    assert_eq!(out.stats.reconnects, 1);
    assert_eq!(out.stats.crashes, 0);
    assert_eq!(
        out.stats.cache_hits, 12,
        "both sessions' hits survive the reconnect: {}",
        out.stats
    );
    assert_eq!(out.stats.cache_misses, 5);
    assert_eq!(out.stats.cache_evictions, 1);
}

#[test]
fn unreachable_host_is_a_spawn_failure() {
    // Bind-then-drop yields a port that refuses connections; spawning
    // against it must fail like an unspawnable worker binary, and the
    // sweep must still complete in-process.
    let port = {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        l.local_addr().expect("addr").port()
    };
    let f = TcpWorkerFactory {
        hosts: vec![format!("127.0.0.1:{port}")],
        options: TcpOptions {
            max_reconnects: 0,
            connect_timeout: Duration::from_millis(500),
            ..tcp_opts()
        },
    };
    let out = run_sweep(inputs(3, 2), &sweep_opts(1), &f, exec).unwrap();
    assert_all_values(&out.values, 3, 2);
    assert_eq!(out.stats.workers_spawned, 0);
    assert_eq!(out.stats.spawn_failures, 1);
    assert_eq!(out.stats.inproc_shards, 3);
}

#[test]
fn killed_listener_exhausts_reconnects_and_reads_as_gone() {
    // The server answers one shard, then the whole process "dies":
    // connection dropped AND listener closed, so every reconnect is
    // refused. The link must report Gone after exhausting its ladder —
    // the exact degradation of a killed subprocess.
    let addr = script_server(|listener| {
        let (stream, _) = listener.accept().expect("connection");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        if let Some(spec) = read_spec(&mut reader) {
            write_reply(&mut writer, &valid_reply(&spec));
        }
        let _ = writer.shutdown(std::net::Shutdown::Both);
        drop(listener); // refuse all reconnects: the "host went down" shape
    });
    let out = run_sweep(inputs(3, 2), &sweep_opts(1), &factory(&addr), exec).unwrap();
    assert_all_values(&out.values, 3, 2);
    assert_eq!(
        out.stats.crashes, 1,
        "reconnect exhaustion reads as a death"
    );
    assert_eq!(out.stats.inproc_shards, 2, "the rest drained in-process");
}
