//! Property tests for the deterministic re-merge: the aggregator's
//! output must be a function of the manifest alone — never of arrival
//! order or delivery count.

use pbbf_fabric::ShardMerger;
use proptest::prelude::*;

/// Generated shard payloads: `(has_sample, value)` pairs become the
/// `Option<f64>` run values of one shard.
fn to_values(raw: &[(bool, f64)]) -> Vec<Option<f64>> {
    raw.iter().map(|&(s, v)| s.then_some(v)).collect()
}

/// A permutation of `0..n` derived from `keys` (sort by key, stable).
fn permutation(n: usize, keys: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| keys[i % keys.len()]);
    order
}

proptest! {
    #[test]
    fn merge_is_permutation_invariant(
        shards in prop::collection::vec(
            prop::collection::vec((any::<bool>(), 0.0f64..=1.0), 0..5),
            1..16,
        ),
        keys in prop::collection::vec(any::<u64>(), 16),
    ) {
        let shards: Vec<Vec<Option<f64>>> = shards.iter().map(|s| to_values(s)).collect();
        let n = shards.len();

        // Reference fold: manifest order.
        let mut in_order = ShardMerger::new(n);
        for (i, values) in shards.iter().enumerate() {
            prop_assert!(in_order.offer(i, values.clone()));
        }

        // Same shards, adversarial arrival order.
        let mut shuffled = ShardMerger::new(n);
        for &i in &permutation(n, &keys) {
            prop_assert!(shuffled.offer(i, shards[i].clone()));
        }

        prop_assert!(shuffled.is_complete());
        prop_assert_eq!(shuffled.into_values(), in_order.into_values());
    }

    #[test]
    fn merge_is_duplicate_invariant(
        shards in prop::collection::vec(
            prop::collection::vec((any::<bool>(), 0.0f64..=1.0), 0..5),
            1..16,
        ),
        dup_keys in prop::collection::vec(any::<u64>(), 8),
    ) {
        let shards: Vec<Vec<Option<f64>>> = shards.iter().map(|s| to_values(s)).collect();
        let n = shards.len();

        let mut once = ShardMerger::new(n);
        let mut with_dups = ShardMerger::new(n);
        for (i, values) in shards.iter().enumerate() {
            prop_assert!(once.offer(i, values.clone()));
            prop_assert!(with_dups.offer(i, values.clone()));
        }
        // Re-deliver a handful of shards, as a late retry would. The
        // duplicates carry *perturbed* values to prove they are ignored
        // outright, not merely identical-by-luck. (Real duplicates are
        // bitwise identical — this is strictly harsher.)
        for &k in &dup_keys {
            let i = (k % n as u64) as usize;
            let perturbed: Vec<Option<f64>> =
                shards[i].iter().map(|v| v.map(|x| x + 1.0)).collect();
            prop_assert!(!with_dups.offer(i, perturbed), "duplicate must be rejected");
        }

        prop_assert_eq!(with_dups.into_values(), once.into_values());
    }
}
