//! Keeps `docs/PROTOCOL.md` honest: every fenced worked example in the
//! spec is extracted, parsed against the real wire types, round-tripped,
//! and (for `Result`s) checksum-validated. If the protocol drifts from
//! its documentation, this file fails before any human notices.

use pbbf_fabric::protocol::{checksum, ShardSpec, WorkerReply};

const DOC: &str = include_str!("../../../docs/PROTOCOL.md");

/// Collects the contents of fenced code blocks whose info string is
/// exactly `tag` (e.g. ` ```json spec `).
fn fenced_blocks(tag: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in DOC.lines() {
        match &mut current {
            Some(buf) => {
                if line.trim_end() == "```" {
                    blocks.push(std::mem::take(buf));
                    current = None;
                } else {
                    buf.push_str(line);
                    buf.push('\n');
                }
            }
            None => {
                if line.trim_end() == format!("```{tag}") {
                    current = Some(String::new());
                }
            }
        }
    }
    assert!(
        current.is_none(),
        "unterminated ```{tag} block in PROTOCOL.md"
    );
    blocks
}

#[test]
fn every_documented_spec_example_parses_and_round_trips() {
    let blocks = fenced_blocks("json spec");
    assert!(
        !blocks.is_empty(),
        "PROTOCOL.md documents no ShardSpec example"
    );
    for block in &blocks {
        for line in block.lines().filter(|l| !l.trim().is_empty()) {
            let spec: ShardSpec = serde_json::from_str(line)
                .unwrap_or_else(|e| panic!("documented spec does not parse ({e}): {line}"));
            let rendered = serde_json::to_string(&spec).expect("render");
            let again: ShardSpec = serde_json::from_str(&rendered).expect("reparse");
            assert_eq!(again, spec, "spec round-trip changed the message");
        }
    }
}

#[test]
fn every_documented_reply_example_parses_validates_and_round_trips() {
    let blocks = fenced_blocks("json reply");
    let mut results = 0;
    let mut errors = 0;
    let mut heartbeats = 0;
    for block in &blocks {
        for line in block.lines().filter(|l| !l.trim().is_empty()) {
            let reply: WorkerReply = serde_json::from_str(line)
                .unwrap_or_else(|e| panic!("documented reply does not parse ({e}): {line}"));
            match &reply {
                WorkerReply::Result(r) => {
                    results += 1;
                    assert_eq!(
                        r.checksum,
                        checksum(r.id, &r.values),
                        "documented checksum is wrong for: {line}"
                    );
                }
                WorkerReply::Error(_) => errors += 1,
                WorkerReply::Heartbeat(_) => heartbeats += 1,
            }
            let rendered = serde_json::to_string(&reply).expect("render");
            let again: WorkerReply = serde_json::from_str(&rendered).expect("reparse");
            assert_eq!(again, reply, "reply round-trip changed the message");
        }
    }
    assert!(results >= 2, "spec must work at least two Result examples");
    assert!(errors >= 1, "spec must work an Error example");
    assert!(heartbeats >= 1, "spec must work a Heartbeat example");
}

#[test]
fn documented_bit_patterns_are_the_real_ones() {
    // §3.1 and §4 quote concrete f64::to_bits values; hold them to it.
    for (float, bits) in [
        (1.5_f64, 4609434218613702656_u64),
        (2.0, 4611686018427387904),
    ] {
        assert_eq!(float.to_bits(), bits);
        assert!(
            DOC.contains(&bits.to_string()),
            "PROTOCOL.md no longer quotes to_bits({float}) = {bits}"
        );
    }
    let neg_zero = (-0.0_f64).to_bits();
    assert_eq!(neg_zero, 9223372036854775808);
    assert!(DOC.contains(&neg_zero.to_string()));
}

#[test]
fn documented_fnv_parameters_are_the_real_ones() {
    // §5 spells out offset basis and prime; the empty-input digest
    // pins both (checksum of id 0 over no values folds exactly the
    // two header words through FNV-1a with those constants).
    assert!(
        DOC.contains("0xcbf29ce484222325"),
        "offset basis not documented"
    );
    assert!(DOC.contains("0x100000001b3"), "prime not documented");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    // two zero header words (id = 0, len = 0), byte at a time
    for zero_byte in [0u8; 16] {
        h = (h ^ u64::from(zero_byte)).wrapping_mul(0x100_0000_01b3);
    }
    assert_eq!(h, checksum(0, &[]), "documented FNV parameters drifted");
}
