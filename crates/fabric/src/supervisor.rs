//! The supervisor: shard assignment, liveness, retry, quarantine.
//!
//! [`run_sweep`] drives a fixed fleet of workers (spawned once through
//! a [`WorkerFactory`]; the fleet only ever shrinks) over a manifest of
//! opaque shards. The failure policy, in one paragraph: a shard that
//! crashes its worker, overruns its wall-clock deadline, or comes back
//! corrupt (bad parse, wrong length, checksum mismatch) is retried on
//! a healthy worker after bounded exponential backoff; a worker that
//! repeatedly produces corrupt output — or hangs — is quarantined
//! (killed, never respawned); a shard that exhausts its delivery
//! attempts is executed in-process, as is the whole remaining manifest
//! when no healthy workers are left (including the spawn-failed-
//! entirely case). Results fold through [`ShardMerger`] by manifest
//! position, so none of this scheduling is visible in the output: the
//! sweep's bytes match the single-process fold exactly.
//!
//! Late replies are welcome: a result arriving from a worker that was
//! already written off still folds (shard values are deterministic, so
//! *any* structurally valid copy is the right copy), and the retry's
//! duplicate is dropped by the merger.

use std::io::Write as _;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use serde_json::Value as Json;

use crate::merge::ShardMerger;
use crate::protocol::{checksum, decode_values, CacheTelemetry, ShardSpec, WorkerReply};

/// What a worker's reader pump delivers to the supervisor.
#[derive(Debug)]
pub enum WorkerEvent {
    /// One output line from the worker.
    Line {
        /// The worker's id.
        worker: u64,
        /// The raw line (unparsed; the supervisor validates it).
        line: String,
    },
    /// The worker's output channel closed for good — it exited, was
    /// killed, or its transport gave up reconnecting.
    Gone {
        /// The worker's id.
        worker: u64,
    },
    /// The worker's transport dropped and came back (a socket
    /// reconnect). The worker is alive, but anything that was in
    /// flight on it is lost and must be requeued.
    Reset {
        /// The worker's id.
        worker: u64,
    },
}

/// The supervisor's handle on one worker.
pub trait WorkerLink {
    /// Delivers one shard-spec line to the worker.
    ///
    /// # Errors
    ///
    /// Any I/O error means the worker is unreachable; the supervisor
    /// writes it off.
    fn send_line(&mut self, line: &str) -> std::io::Result<()>;

    /// Forcibly terminates the worker. Idempotent.
    fn kill(&mut self);

    /// Whether this link crosses a host boundary. Remote links opt
    /// into host-level liveness: their workers heartbeat on a timer,
    /// and silence beyond
    /// [`SweepOptions::liveness_timeout`] is treated as a vanished
    /// host. Local links (pipes) report death through
    /// [`WorkerEvent::Gone`] instead, so they default to `false`.
    fn remote(&self) -> bool {
        false
    }
}

/// Spawns workers. Abstracted so the retry/quarantine machinery is
/// testable with in-process mock workers (no subprocess flakiness).
pub trait WorkerFactory {
    /// Spawns worker `worker` (unique id) and wires its output to
    /// `events`. The returned link must deliver a
    /// [`WorkerEvent::Gone`] when the worker stops producing output.
    ///
    /// # Errors
    ///
    /// A spawn failure is not fatal to the sweep — the supervisor
    /// degrades to whatever fleet it got, down to none (in-process).
    fn spawn(
        &self,
        slot: usize,
        worker: u64,
        events: Sender<WorkerEvent>,
    ) -> std::io::Result<Box<dyn WorkerLink>>;
}

/// Spawns `program args...` per worker with piped stdin/stdout; a
/// reader thread pumps stdout lines into the event channel. Stderr is
/// inherited so worker diagnostics reach the operator unfiltered.
pub struct ProcessWorkerFactory {
    /// Worker executable.
    pub program: std::path::PathBuf,
    /// Arguments passed to every worker.
    pub args: Vec<String>,
}

impl ProcessWorkerFactory {
    /// A factory re-invoking this very binary with `args` (the `pbbf
    /// sweep` → `pbbf worker` shape).
    ///
    /// # Errors
    ///
    /// Fails when the current executable's path can't be determined.
    pub fn current_exe<I, S>(args: I) -> std::io::Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Ok(Self {
            program: std::env::current_exe()?,
            args: args.into_iter().map(Into::into).collect(),
        })
    }
}

struct ProcessLink {
    child: std::process::Child,
    stdin: Option<std::process::ChildStdin>,
}

impl WorkerLink for ProcessLink {
    fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        let stdin = self
            .stdin
            .as_mut()
            .ok_or_else(|| std::io::Error::other("worker stdin closed"))?;
        stdin.write_all(line.as_bytes())?;
        stdin.write_all(b"\n")?;
        stdin.flush()
    }

    fn kill(&mut self) {
        self.stdin.take(); // EOF first: a healthy worker exits on its own
        let _ = self.child.kill();
        let _ = self.child.wait(); // reap; SIGKILL makes this prompt
    }
}

impl Drop for ProcessLink {
    fn drop(&mut self) {
        self.kill();
    }
}

impl WorkerFactory for ProcessWorkerFactory {
    fn spawn(
        &self,
        _slot: usize,
        worker: u64,
        events: Sender<WorkerEvent>,
    ) -> std::io::Result<Box<dyn WorkerLink>> {
        let mut child = std::process::Command::new(&self.program)
            .args(&self.args)
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take().expect("stdin was piped");
        let stdout = child.stdout.take().expect("stdout was piped");
        std::thread::spawn(move || {
            use std::io::BufRead;
            for line in std::io::BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if events.send(WorkerEvent::Line { worker, line }).is_err() {
                    return; // supervisor gone; nothing to report to
                }
            }
            let _ = events.send(WorkerEvent::Gone { worker });
        });
        Ok(Box::new(ProcessLink {
            child,
            stdin: Some(stdin),
        }))
    }
}

/// One shard of work for [`run_sweep`].
#[derive(Debug, Clone)]
pub struct ShardInput {
    /// Opaque job payload, forwarded to workers verbatim.
    pub job: Json,
    /// Number of values the shard must produce.
    pub expect: usize,
}

/// Failure-policy knobs.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Fleet size to spawn (clamped to the shard count; min 1).
    pub workers: usize,
    /// Per-shard wall-clock deadline; an overrun quarantines the
    /// worker and retries the shard.
    pub shard_timeout: Duration,
    /// First retry delay; doubles per failed attempt.
    pub backoff_base: Duration,
    /// Retry delay ceiling.
    pub backoff_cap: Duration,
    /// Worker deliveries per shard before it runs in-process.
    pub max_shard_attempts: u32,
    /// Corrupt replies tolerated per worker before quarantine.
    pub max_worker_strikes: u32,
    /// Host-level liveness window for remote workers
    /// ([`WorkerLink::remote`]): a remote worker that produces no
    /// output line (heartbeat or otherwise) for this long is treated
    /// as a vanished host — written off and its shard requeued. Must
    /// comfortably exceed the workers' heartbeat interval.
    pub liveness_timeout: Duration,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            workers: pbbf_parallel::max_threads(),
            shard_timeout: Duration::from_secs(120),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            max_shard_attempts: 4,
            max_worker_strikes: 2,
            liveness_timeout: Duration::from_secs(10),
        }
    }
}

/// What happened along the way (stderr-reporting material; none of it
/// can influence the output values).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SweepStats {
    /// Workers successfully spawned.
    pub workers_spawned: usize,
    /// Workers that failed to spawn.
    pub spawn_failures: usize,
    /// Shard deliveries beyond each shard's first.
    pub retries: u64,
    /// Shards whose worker died mid-flight.
    pub crashes: u64,
    /// Shards that overran the wall-clock deadline.
    pub timeouts: u64,
    /// Structurally invalid replies (parse, length, or checksum).
    pub corrupt: u64,
    /// Shards the worker refused as malformed.
    pub refused: u64,
    /// Workers killed for hanging or repeated corruption.
    pub quarantined: u64,
    /// Shards executed in-process (attempt exhaustion or no fleet).
    pub inproc_shards: u64,
    /// Remote hosts written off for heartbeat silence.
    pub hosts_lost: u64,
    /// Transport reconnects ([`WorkerEvent::Reset`]) survived.
    pub reconnects: u64,
    /// Deployment-cache hits summed over worker heartbeat telemetry.
    pub cache_hits: u64,
    /// Deployment-cache misses summed over worker heartbeat telemetry.
    pub cache_misses: u64,
    /// Deployment-cache evictions summed over worker telemetry.
    pub cache_evictions: u64,
}

impl std::fmt::Display for SweepStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "workers {} (+{} spawn failures), retries {}, crashes {}, \
             timeouts {}, corrupt {}, refused {}, quarantined {}, in-process shards {}, \
             hosts lost {}, reconnects {}, deploy cache {}/{} hit/miss (+{} evicted)",
            self.workers_spawned,
            self.spawn_failures,
            self.retries,
            self.crashes,
            self.timeouts,
            self.corrupt,
            self.refused,
            self.quarantined,
            self.inproc_shards,
            self.hosts_lost,
            self.reconnects,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions
        )
    }
}

/// A completed sweep: per-shard values in manifest order, plus the
/// fault ledger.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Shard value vectors, indexed by manifest position.
    pub values: Vec<Vec<Option<f64>>>,
    /// What it took to get them.
    pub stats: SweepStats,
}

enum ShardStatus {
    Pending { eligible_at: Instant },
    Running { worker: u64, deadline: Instant },
    Done,
}

struct Shard {
    job: Json,
    expect: usize,
    attempt: u32,
    status: ShardStatus,
}

struct Worker {
    id: u64,
    link: Box<dyn WorkerLink>,
    strikes: u32,
    current: Option<usize>,
    healthy: bool,
    /// Cached [`WorkerLink::remote`]: subject to host liveness.
    remote: bool,
    /// When this worker last produced any output line.
    last_heard: Instant,
    /// Latest deployment-cache telemetry the worker heartbeat.
    telemetry: CacheTelemetry,
}

struct Supervisor<'a, E> {
    shards: Vec<Shard>,
    workers: Vec<Worker>,
    merger: ShardMerger,
    stats: SweepStats,
    opts: &'a SweepOptions,
    exec: &'a E,
}

/// Runs `shards` to completion across a worker fleet, returning every
/// shard's values in manifest order.
///
/// `exec` is the in-process fallback executor — the same computation
/// the workers perform, minus the process boundary. It runs when a
/// shard exhausts its delivery attempts or when no healthy workers
/// remain (including "none ever spawned"), so a sweep *completes* under
/// any failure pattern the fabric can see.
///
/// # Errors
///
/// Fails only when a shard cannot be computed at all — i.e. the
/// in-process fallback itself reports an error. Worker-side failures
/// never surface here; they are retried away.
pub fn run_sweep<E>(
    inputs: Vec<ShardInput>,
    opts: &SweepOptions,
    factory: &dyn WorkerFactory,
    exec: E,
) -> Result<SweepOutcome, String>
where
    E: Fn(&Json) -> Result<Vec<Option<f64>>, String> + Sync,
{
    let now = Instant::now();
    let mut sup = Supervisor {
        merger: ShardMerger::new(inputs.len()),
        shards: inputs
            .into_iter()
            .map(|s| Shard {
                job: s.job,
                expect: s.expect,
                attempt: 0,
                status: ShardStatus::Pending { eligible_at: now },
            })
            .collect(),
        workers: Vec::new(),
        stats: SweepStats::default(),
        opts,
        exec: &exec,
    };
    if sup.shards.is_empty() {
        return Ok(SweepOutcome {
            values: Vec::new(),
            stats: sup.stats,
        });
    }

    // `tx` stays alive here for the whole sweep, so the channel never
    // disconnects even after the last worker dies.
    let (tx, rx) = std::sync::mpsc::channel();
    let fleet = opts.workers.clamp(1, sup.shards.len());
    for slot in 0..fleet {
        let id = slot as u64 + 1; // workers never respawn, so slots are ids
        match factory.spawn(slot, id, tx.clone()) {
            Ok(link) => {
                sup.stats.workers_spawned += 1;
                let remote = link.remote();
                sup.workers.push(Worker {
                    id,
                    link,
                    strikes: 0,
                    current: None,
                    healthy: true,
                    remote,
                    last_heard: Instant::now(),
                    telemetry: CacheTelemetry::default(),
                });
            }
            Err(e) => {
                sup.stats.spawn_failures += 1;
                eprintln!("pbbf sweep: worker {id} failed to spawn: {e}");
            }
        }
    }
    sup.run(&rx)
}

impl<E> Supervisor<'_, E>
where
    E: Fn(&Json) -> Result<Vec<Option<f64>>, String> + Sync,
{
    fn run(mut self, rx: &Receiver<WorkerEvent>) -> Result<SweepOutcome, String> {
        while !self.merger.is_complete() {
            let now = Instant::now();
            self.assign(now)?;
            if self.merger.is_complete() {
                break;
            }
            if self.healthy_workers() == 0 {
                self.drain_in_process()?;
                break;
            }
            match rx.recv_timeout(self.next_wait(Instant::now())) {
                Ok(WorkerEvent::Line { worker, line }) => self.on_line(worker, &line)?,
                Ok(WorkerEvent::Gone { worker }) => self.on_gone(worker)?,
                Ok(WorkerEvent::Reset { worker }) => self.on_reset(worker)?,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("supervisor holds an event sender")
                }
            }
            self.expire_deadlines(Instant::now())?;
            self.expire_liveness(Instant::now())?;
        }
        for w in &mut self.workers {
            w.link.kill(); // EOF/kill the fleet before folding
        }
        for w in &self.workers {
            self.stats.cache_hits += w.telemetry.hits;
            self.stats.cache_misses += w.telemetry.misses;
            self.stats.cache_evictions += w.telemetry.evictions;
        }
        Ok(SweepOutcome {
            values: self.merger.into_values(),
            stats: self.stats,
        })
    }

    fn healthy_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.healthy).count()
    }

    /// Hands every eligible pending shard (in manifest order) to an
    /// idle healthy worker.
    fn assign(&mut self, now: Instant) -> Result<(), String> {
        loop {
            let Some(sid) = self.shards.iter().position(
                |s| matches!(s.status, ShardStatus::Pending { eligible_at } if eligible_at <= now),
            ) else {
                return Ok(());
            };
            let Some(widx) = self
                .workers
                .iter()
                .position(|w| w.healthy && w.current.is_none())
            else {
                return Ok(());
            };
            let shard = &mut self.shards[sid];
            let spec = ShardSpec {
                id: sid as u32,
                attempt: shard.attempt,
                expect: shard.expect as u32,
                job: shard.job.clone(),
            };
            let line = serde_json::to_string(&spec).map_err(|e| e.to_string())?;
            shard.status = ShardStatus::Running {
                worker: self.workers[widx].id,
                deadline: now + self.opts.shard_timeout,
            };
            self.workers[widx].current = Some(sid);
            if let Err(e) = self.workers[widx].link.send_line(&line) {
                eprintln!(
                    "pbbf sweep: worker {} unreachable ({e}); writing it off",
                    self.workers[widx].id
                );
                self.stats.crashes += 1;
                self.write_off(widx)?;
            }
        }
    }

    /// Marks a worker dead and recycles whatever it was running.
    fn write_off(&mut self, widx: usize) -> Result<(), String> {
        self.workers[widx].healthy = false;
        self.workers[widx].link.kill();
        if let Some(sid) = self.workers[widx].current.take() {
            if matches!(self.shards[sid].status, ShardStatus::Running { .. }) {
                self.fail_shard(sid)?;
            }
        }
        Ok(())
    }

    /// A corrupt reply: strike the sender, quarantine on repeat.
    fn strike(&mut self, widx: usize) -> Result<(), String> {
        self.stats.corrupt += 1;
        self.workers[widx].strikes += 1;
        if self.workers[widx].strikes >= self.opts.max_worker_strikes {
            eprintln!(
                "pbbf sweep: quarantining worker {} after {} corrupt replies",
                self.workers[widx].id, self.workers[widx].strikes
            );
            self.stats.quarantined += 1;
            self.write_off(widx)?;
        } else if let Some(sid) = self.workers[widx].current.take() {
            if matches!(self.shards[sid].status, ShardStatus::Running { .. }) {
                self.fail_shard(sid)?;
            }
        }
        Ok(())
    }

    /// Reschedules a failed shard with backoff, or — attempts spent —
    /// computes it right here.
    fn fail_shard(&mut self, sid: usize) -> Result<(), String> {
        let shard = &mut self.shards[sid];
        shard.attempt += 1;
        self.stats.retries += 1;
        if shard.attempt >= self.opts.max_shard_attempts {
            eprintln!("pbbf sweep: shard {sid} exhausted worker attempts; running in-process");
            return self.run_in_process(sid);
        }
        let exp = shard.attempt.saturating_sub(1).min(16);
        let backoff = self
            .opts
            .backoff_base
            .checked_mul(1 << exp)
            .unwrap_or(self.opts.backoff_cap)
            .min(self.opts.backoff_cap);
        shard.status = ShardStatus::Pending {
            eligible_at: Instant::now() + backoff,
        };
        Ok(())
    }

    fn run_in_process(&mut self, sid: usize) -> Result<(), String> {
        let values = (self.exec)(&self.shards[sid].job)
            .map_err(|e| format!("shard {sid} failed in-process: {e}"))?;
        self.accept(sid, values);
        self.stats.inproc_shards += 1;
        Ok(())
    }

    /// Folds a validated value vector and releases whoever was on it.
    fn accept(&mut self, sid: usize, values: Vec<Option<f64>>) {
        self.merger.offer(sid, values); // duplicate → no-op, by design
        self.shards[sid].status = ShardStatus::Done;
        for w in &mut self.workers {
            if w.current == Some(sid) {
                w.current = None;
            }
        }
    }

    fn on_line(&mut self, worker: u64, line: &str) -> Result<(), String> {
        let Some(widx) = self.workers.iter().position(|w| w.id == worker) else {
            return Ok(()); // unknown sender: drop
        };
        self.workers[widx].last_heard = Instant::now();
        let reply: WorkerReply = match serde_json::from_str(line) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("pbbf sweep: unparseable reply from worker {worker}: {e}");
                return self.strike(widx);
            }
        };
        match reply {
            WorkerReply::Result(r) => {
                let sid = r.id as usize;
                let valid = self.shards.get(sid).is_some_and(|s| {
                    r.values.len() == s.expect && checksum(r.id, &r.values) == r.checksum
                });
                if !valid {
                    eprintln!(
                        "pbbf sweep: corrupt result for shard {} from worker {worker}",
                        r.id
                    );
                    return self.strike(widx);
                }
                // Deterministic values: any structurally valid copy is
                // correct, even from a worker we already wrote off.
                self.accept(sid, decode_values(&r.values));
                Ok(())
            }
            WorkerReply::Error(e) => {
                // An honest refusal — the job itself is suspect. The
                // retry ladder ends at the in-process executor, which
                // surfaces a real error if the job truly is malformed.
                eprintln!(
                    "pbbf sweep: worker {worker} refused shard {}: {}",
                    e.id, e.error
                );
                self.stats.refused += 1;
                let sid = e.id as usize;
                if self.workers[widx].current == Some(sid) {
                    self.workers[widx].current = None;
                    if matches!(
                        self.shards.get(sid).map(|s| &s.status),
                        Some(ShardStatus::Running { .. })
                    ) {
                        return self.fail_shard(sid);
                    }
                }
                Ok(())
            }
            WorkerReply::Heartbeat(t) => {
                // Pure liveness + telemetry; `last_heard` already moved.
                self.workers[widx].telemetry = t;
                Ok(())
            }
        }
    }

    /// The worker's transport dropped and reconnected: whatever it was
    /// running is lost on the far side, so requeue it — but the worker
    /// itself stays in the fleet. This is the "yanked cable, plugged
    /// back in" path; it must degrade no worse than a killed
    /// subprocess and no scheduling detail of it may reach the output.
    fn on_reset(&mut self, worker: u64) -> Result<(), String> {
        let Some(widx) = self.workers.iter().position(|w| w.id == worker) else {
            return Ok(());
        };
        if !self.workers[widx].healthy {
            return Ok(()); // already written off; the link is dying
        }
        self.stats.reconnects += 1;
        self.workers[widx].last_heard = Instant::now();
        if let Some(sid) = self.workers[widx].current.take() {
            if matches!(self.shards[sid].status, ShardStatus::Running { .. }) {
                eprintln!("pbbf sweep: worker {worker} transport reset; requeueing shard {sid}");
                return self.fail_shard(sid);
            }
        }
        Ok(())
    }

    fn on_gone(&mut self, worker: u64) -> Result<(), String> {
        let Some(widx) = self.workers.iter().position(|w| w.id == worker) else {
            return Ok(());
        };
        if !self.workers[widx].healthy {
            return Ok(()); // already written off (we killed it)
        }
        eprintln!("pbbf sweep: worker {worker} died");
        self.stats.crashes += 1;
        self.write_off(widx)
    }

    /// Kills workers whose shard overran its deadline; the shard
    /// retries elsewhere, the worker is quarantined (a wedged process
    /// is not worth more work).
    fn expire_deadlines(&mut self, now: Instant) -> Result<(), String> {
        loop {
            let Some((sid, wid)) =
                self.shards
                    .iter()
                    .enumerate()
                    .find_map(|(i, s)| match s.status {
                        ShardStatus::Running { worker, deadline } if deadline <= now => {
                            Some((i, worker))
                        }
                        _ => None,
                    })
            else {
                return Ok(());
            };
            eprintln!("pbbf sweep: shard {sid} timed out on worker {wid}; quarantining it");
            self.stats.timeouts += 1;
            self.stats.quarantined += 1;
            if let Some(widx) = self.workers.iter().position(|w| w.id == wid) {
                self.write_off(widx)?;
            }
            if matches!(self.shards[sid].status, ShardStatus::Running { .. }) {
                // The worker no longer claimed this shard; recycle it
                // directly so the scan above always makes progress.
                self.fail_shard(sid)?;
            }
        }
    }

    /// Writes off remote workers that have been silent past the
    /// liveness window — the vanished-host detector. Remote workers
    /// heartbeat on a timer even mid-shard, so silence here means the
    /// host (or the network to it) is gone, not that a shard is slow;
    /// per-shard deadlines separately cover the slow/wedged case.
    fn expire_liveness(&mut self, now: Instant) -> Result<(), String> {
        loop {
            let Some(widx) = self.workers.iter().position(|w| {
                w.healthy
                    && w.remote
                    && now.duration_since(w.last_heard) > self.opts.liveness_timeout
            }) else {
                return Ok(());
            };
            eprintln!(
                "pbbf sweep: worker {} silent for {:.1?} (liveness {:.1?}); \
                 quarantining unreachable host",
                self.workers[widx].id,
                now.duration_since(self.workers[widx].last_heard),
                self.opts.liveness_timeout
            );
            self.stats.hosts_lost += 1;
            self.stats.quarantined += 1;
            self.write_off(widx)?;
        }
    }

    /// No fleet left: compute every unfinished shard in-process, fanned
    /// across the thread pool the workers were meant to replace.
    fn drain_in_process(&mut self) -> Result<(), String> {
        let todo: Vec<usize> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| !matches!(s.status, ShardStatus::Done))
            .map(|(i, _)| i)
            .collect();
        if todo.is_empty() {
            return Ok(());
        }
        eprintln!(
            "pbbf sweep: no healthy workers; running {} shard(s) in-process",
            todo.len()
        );
        let exec = self.exec;
        let jobs: Vec<&Json> = todo.iter().map(|&i| &self.shards[i].job).collect();
        let results = pbbf_parallel::par_map(jobs, exec);
        for (&sid, result) in todo.iter().zip(results) {
            let values = result.map_err(|e| format!("shard {sid} failed in-process: {e}"))?;
            self.accept(sid, values);
            self.stats.inproc_shards += 1;
        }
        Ok(())
    }

    /// How long the event loop may sleep before something is due.
    fn next_wait(&self, now: Instant) -> Duration {
        let mut next: Option<Instant> = None;
        let mut consider = |t: Instant| next = Some(next.map_or(t, |n| n.min(t)));
        for s in &self.shards {
            match s.status {
                ShardStatus::Running { deadline, .. } => consider(deadline),
                ShardStatus::Pending { eligible_at } if eligible_at > now => {
                    consider(eligible_at);
                }
                _ => {}
            }
        }
        for w in &self.workers {
            if w.healthy && w.remote {
                consider(w.last_heard + self.opts.liveness_timeout);
            }
        }
        next.map_or(Duration::from_millis(100), |t| {
            t.saturating_duration_since(now)
                .max(Duration::from_millis(1))
        })
    }
}
