//! Worker-fleet contracts and the one-shot sweep entry point.
//!
//! [`run_sweep`] drives a fixed fleet of workers (spawned once through
//! a [`WorkerFactory`]; the fleet only ever shrinks) over a manifest of
//! opaque shards. The failure policy, in one paragraph: a shard that
//! crashes its worker, overruns its wall-clock deadline, or comes back
//! corrupt (bad parse, wrong length, checksum mismatch) is retried on
//! a healthy worker after bounded exponential backoff; a worker that
//! repeatedly produces corrupt output — or hangs — is quarantined
//! (killed, never respawned); a shard that exhausts its delivery
//! attempts is executed in-process, as is the whole remaining manifest
//! when no healthy workers are left (including the spawn-failed-
//! entirely case). Results fold by manifest position, so none of this
//! scheduling is visible in the output: the sweep's bytes match the
//! single-process fold exactly.
//!
//! Late replies are welcome: a result arriving from a worker that was
//! already written off still folds (shard values are deterministic, so
//! *any* structurally valid copy is the right copy), and the retry's
//! duplicate is dropped.
//!
//! The per-shard state machine itself lives in
//! [`scheduler`](crate::scheduler): [`run_sweep`] is a one-shot
//! wrapper that builds a [`SweepScheduler`](crate::scheduler::SweepScheduler),
//! runs the single manifest, and tears the fleet down. Callers that
//! want to run *several* sweeps through one resident fleet use the
//! scheduler directly. This module keeps the contracts both share:
//! worker events, links, factories, options, and stats.

use std::io::Write as _;
use std::sync::mpsc::Sender;
use std::time::Duration;

use serde_json::Value as Json;

/// What a worker's reader pump delivers to the supervisor.
#[derive(Debug)]
pub enum WorkerEvent {
    /// One output line from the worker.
    Line {
        /// The worker's id.
        worker: u64,
        /// The raw line (unparsed; the supervisor validates it).
        line: String,
    },
    /// The worker's output channel closed for good — it exited, was
    /// killed, or its transport gave up reconnecting.
    Gone {
        /// The worker's id.
        worker: u64,
    },
    /// The worker's transport dropped and came back (a socket
    /// reconnect). The worker is alive, but anything that was in
    /// flight on it is lost and must be requeued.
    Reset {
        /// The worker's id.
        worker: u64,
    },
}

/// The supervisor's handle on one worker.
pub trait WorkerLink {
    /// Delivers one shard-spec line to the worker.
    ///
    /// # Errors
    ///
    /// Any I/O error means the worker is unreachable; the supervisor
    /// writes it off.
    fn send_line(&mut self, line: &str) -> std::io::Result<()>;

    /// Forcibly terminates the worker. Idempotent.
    fn kill(&mut self);

    /// Whether this link crosses a host boundary. Remote links opt
    /// into host-level liveness: their workers heartbeat on a timer,
    /// and silence beyond
    /// [`SweepOptions::liveness_timeout`] is treated as a vanished
    /// host. Local links (pipes) report death through
    /// [`WorkerEvent::Gone`] instead, so they default to `false`.
    fn remote(&self) -> bool {
        false
    }
}

/// Spawns workers. Abstracted so the retry/quarantine machinery is
/// testable with in-process mock workers (no subprocess flakiness).
pub trait WorkerFactory {
    /// Spawns worker `worker` (unique id) and wires its output to
    /// `events`. The returned link must deliver a
    /// [`WorkerEvent::Gone`] when the worker stops producing output.
    ///
    /// # Errors
    ///
    /// A spawn failure is not fatal to the sweep — the supervisor
    /// degrades to whatever fleet it got, down to none (in-process).
    fn spawn(
        &self,
        slot: usize,
        worker: u64,
        events: Sender<WorkerEvent>,
    ) -> std::io::Result<Box<dyn WorkerLink>>;
}

/// Spawns `program args...` per worker with piped stdin/stdout; a
/// reader thread pumps stdout lines into the event channel. Stderr is
/// inherited so worker diagnostics reach the operator unfiltered.
pub struct ProcessWorkerFactory {
    /// Worker executable.
    pub program: std::path::PathBuf,
    /// Arguments passed to every worker.
    pub args: Vec<String>,
}

impl ProcessWorkerFactory {
    /// A factory re-invoking this very binary with `args` (the `pbbf
    /// sweep` → `pbbf worker` shape).
    ///
    /// # Errors
    ///
    /// Fails when the current executable's path can't be determined.
    pub fn current_exe<I, S>(args: I) -> std::io::Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Ok(Self {
            program: std::env::current_exe()?,
            args: args.into_iter().map(Into::into).collect(),
        })
    }
}

struct ProcessLink {
    child: std::process::Child,
    stdin: Option<std::process::ChildStdin>,
}

impl WorkerLink for ProcessLink {
    fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        let stdin = self
            .stdin
            .as_mut()
            .ok_or_else(|| std::io::Error::other("worker stdin closed"))?;
        stdin.write_all(line.as_bytes())?;
        stdin.write_all(b"\n")?;
        stdin.flush()
    }

    fn kill(&mut self) {
        self.stdin.take(); // EOF first: a healthy worker exits on its own
        let _ = self.child.kill();
        let _ = self.child.wait(); // reap; SIGKILL makes this prompt
    }
}

impl Drop for ProcessLink {
    fn drop(&mut self) {
        self.kill();
    }
}

impl WorkerFactory for ProcessWorkerFactory {
    fn spawn(
        &self,
        _slot: usize,
        worker: u64,
        events: Sender<WorkerEvent>,
    ) -> std::io::Result<Box<dyn WorkerLink>> {
        let mut child = std::process::Command::new(&self.program)
            .args(&self.args)
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take().expect("stdin was piped");
        let stdout = child.stdout.take().expect("stdout was piped");
        std::thread::spawn(move || {
            use std::io::BufRead;
            for line in std::io::BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if events.send(WorkerEvent::Line { worker, line }).is_err() {
                    return; // supervisor gone; nothing to report to
                }
            }
            let _ = events.send(WorkerEvent::Gone { worker });
        });
        Ok(Box::new(ProcessLink {
            child,
            stdin: Some(stdin),
        }))
    }
}

/// One shard of work for [`run_sweep`].
#[derive(Debug, Clone)]
pub struct ShardInput {
    /// Opaque job payload, forwarded to workers verbatim.
    pub job: Json,
    /// Number of values the shard must produce.
    pub expect: usize,
}

/// Failure-policy knobs.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Fleet size to spawn ([`run_sweep`] clamps this to the shard
    /// count; min 1).
    pub workers: usize,
    /// Per-shard wall-clock deadline; an overrun quarantines the
    /// worker and retries the shard.
    pub shard_timeout: Duration,
    /// First retry delay; doubles per failed attempt.
    pub backoff_base: Duration,
    /// Retry delay ceiling.
    pub backoff_cap: Duration,
    /// Worker deliveries per shard before it runs in-process.
    pub max_shard_attempts: u32,
    /// Corrupt replies tolerated per worker before quarantine.
    pub max_worker_strikes: u32,
    /// Host-level liveness window for remote workers
    /// ([`WorkerLink::remote`]): a remote worker that produces no
    /// output line (heartbeat or otherwise) for this long is treated
    /// as a vanished host — written off and its shard requeued. Must
    /// comfortably exceed the workers' heartbeat interval.
    pub liveness_timeout: Duration,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            workers: pbbf_parallel::max_threads(),
            shard_timeout: Duration::from_secs(120),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            max_shard_attempts: 4,
            max_worker_strikes: 2,
            liveness_timeout: Duration::from_secs(10),
        }
    }
}

/// What happened along the way (stderr-reporting material; none of it
/// can influence the output values).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SweepStats {
    /// Workers successfully spawned.
    pub workers_spawned: usize,
    /// Workers that failed to spawn.
    pub spawn_failures: usize,
    /// Shard deliveries beyond each shard's first.
    pub retries: u64,
    /// Shards whose worker died mid-flight.
    pub crashes: u64,
    /// Shards that overran the wall-clock deadline.
    pub timeouts: u64,
    /// Structurally invalid replies (parse, length, or checksum).
    pub corrupt: u64,
    /// Shards the worker refused as malformed.
    pub refused: u64,
    /// Workers killed for hanging or repeated corruption.
    pub quarantined: u64,
    /// Shards executed in-process (attempt exhaustion or no fleet).
    pub inproc_shards: u64,
    /// Remote hosts written off for heartbeat silence.
    pub hosts_lost: u64,
    /// Transport reconnects ([`WorkerEvent::Reset`]) survived.
    pub reconnects: u64,
    /// Deployment-cache hits summed over worker heartbeat telemetry
    /// (all transport sessions, not just the last — see
    /// `docs/PROTOCOL.md` on heartbeat-delta accumulation).
    pub cache_hits: u64,
    /// Deployment-cache misses summed over worker heartbeat telemetry.
    pub cache_misses: u64,
    /// Deployment-cache evictions summed over worker telemetry.
    pub cache_evictions: u64,
}

impl std::fmt::Display for SweepStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "workers {} (+{} spawn failures), retries {}, crashes {}, \
             timeouts {}, corrupt {}, refused {}, quarantined {}, in-process shards {}, \
             hosts lost {}, reconnects {}, deploy cache {}/{} hit/miss (+{} evicted)",
            self.workers_spawned,
            self.spawn_failures,
            self.retries,
            self.crashes,
            self.timeouts,
            self.corrupt,
            self.refused,
            self.quarantined,
            self.inproc_shards,
            self.hosts_lost,
            self.reconnects,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions
        )
    }
}

/// A completed sweep: per-shard values in manifest order, plus the
/// fault ledger.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Shard value vectors, indexed by manifest position.
    pub values: Vec<Vec<Option<f64>>>,
    /// What it took to get them.
    pub stats: SweepStats,
}

/// Runs `shards` to completion across a worker fleet, returning every
/// shard's values in manifest order.
///
/// `exec` is the in-process fallback executor — the same computation
/// the workers perform, minus the process boundary. It runs when a
/// shard exhausts its delivery attempts or when no healthy workers
/// remain (including "none ever spawned"), so a sweep *completes* under
/// any failure pattern the fabric can see.
///
/// This is the one-shot shape: spawn a fleet, run one manifest, tear
/// the fleet down. To run several sweeps through one resident fleet,
/// use [`SweepScheduler`](crate::scheduler::SweepScheduler) directly.
///
/// # Errors
///
/// Fails only when a shard cannot be computed at all — i.e. the
/// in-process fallback itself reports an error. Worker-side failures
/// never surface here; they are retried away.
pub fn run_sweep<E>(
    inputs: Vec<ShardInput>,
    opts: &SweepOptions,
    factory: &dyn WorkerFactory,
    exec: E,
) -> Result<SweepOutcome, String>
where
    E: Fn(&Json) -> Result<Vec<Option<f64>>, String> + Sync,
{
    if inputs.is_empty() {
        return Ok(SweepOutcome {
            values: Vec::new(),
            stats: SweepStats::default(),
        });
    }
    let mut opts = opts.clone();
    opts.workers = opts.workers.clamp(1, inputs.len());
    let mut scheduler = crate::scheduler::SweepScheduler::new(opts, factory);
    scheduler.run_sweep(inputs, exec)
    // The scheduler drops here, killing the fleet — the one-shot
    // contract callers of this function rely on.
}
