//! The resident sweep scheduler: one fleet, many sweeps.
//!
//! [`SweepScheduler`] owns a worker fleet for its whole lifetime and
//! accepts a *queue* of sweep manifests ([`SweepScheduler::run_queue`]).
//! Shards from every queued sweep drain into workers as they go idle,
//! so several figures multiplex onto one fleet and remote workers keep
//! their deployment caches warm across sweeps. Per-shard results
//! stream to a caller-supplied sink in completion order; re-merging in
//! manifest order is the caller's job (`assemble_sweep` upstairs, or
//! [`ShardMerger`](crate::merge::ShardMerger)), which is what keeps
//! scheduling invisible in the output bytes.
//!
//! The failure policy is the supervisor's, unchanged in spirit: a
//! shard that crashes its worker, overruns its wall-clock deadline, or
//! comes back corrupt is retried on a healthy worker after bounded
//! exponential backoff; a worker that repeatedly produces corrupt
//! output — or hangs — is quarantined (killed, never respawned); a
//! shard that exhausts its delivery attempts runs in-process, as does
//! the whole remaining queue when no healthy workers are left. What
//! *is* new here is that workers, their strike counts, and their
//! telemetry outlive any single sweep:
//!
//! * **Wire ids are global.** Each queued shard gets a monotonically
//!   increasing wire id, unique across the scheduler's lifetime, so a
//!   late reply from a previous queue can never validate against a new
//!   shard (the checksum covers the id). Stale replies only release
//!   the worker that sent them.
//! * **Telemetry accumulates across transport sessions.** Workers
//!   heartbeat cache counters as deltas from a per-connection baseline
//!   (see `docs/PROTOCOL.md`), so the scheduler rolls the last-seen
//!   session total into an accumulator on every [`WorkerEvent::Reset`]
//!   or [`WorkerEvent::Gone`] and reports `accumulated + current` —
//!   a reconnect loses no hits/misses.
//! * **Per-sweep stats settle in queue order.** Each sweep's stats are
//!   charged as its shards resolve; fleet-wide telemetry deltas are
//!   attributed to a sweep when it completes, so consecutive sweeps
//!   see non-overlapping telemetry windows.
//!
//! A late duplicate reply (the shard was retried elsewhere and both
//! copies eventually arrive) frees only the worker that *sent* it; a
//! worker still computing a duplicate stays busy until its own copy
//! lands, bounded by a stale-work deadline so a wedged duplicate-holder
//! is still caught. Releasing it early — the historical behavior —
//! dealt fresh work to a worker that was still grinding on the old
//! shard, and the fresh shard's deadline ticked against stolen time.

use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use serde_json::Value as Json;

use crate::protocol::{checksum, decode_values, CacheTelemetry, ShardSpec, WorkerReply};
use crate::supervisor::{
    ShardInput, SweepOptions, SweepOutcome, SweepStats, WorkerEvent, WorkerFactory, WorkerLink,
};

/// A worker fleet that stays resident across sweeps.
///
/// Construct once with [`SweepScheduler::new`], then feed it sweep
/// queues with [`SweepScheduler::run_queue`] (or single sweeps with
/// [`SweepScheduler::run_sweep`]). Workers are spawned exactly once;
/// the fleet only ever shrinks (quarantine, crashes, lost hosts), and
/// dropping the scheduler kills whatever is left.
pub struct SweepScheduler {
    opts: SweepOptions,
    workers: Vec<Worker>,
    /// Kept alive so the event channel never disconnects, even after
    /// the last worker dies.
    _tx: Sender<WorkerEvent>,
    rx: Receiver<WorkerEvent>,
    workers_spawned: usize,
    spawn_failures: usize,
    /// Next global wire id; every shard ever queued gets a fresh one.
    next_wire: u64,
    /// Fleet-wide telemetry already attributed to completed sweeps.
    telemetry_reported: CacheTelemetry,
}

/// The scheduler's book-keeping for one worker. Persists across
/// sweeps: strikes and telemetry are properties of the worker, not of
/// any one manifest.
struct Worker {
    id: u64,
    link: Box<dyn WorkerLink>,
    strikes: u32,
    /// Global wire id of the shard in flight on this worker, if any.
    current: Option<u64>,
    healthy: bool,
    /// Cached [`WorkerLink::remote`]: subject to host liveness.
    remote: bool,
    /// When this worker last produced any output line.
    last_heard: Instant,
    /// Telemetry totals from transport sessions that have ended
    /// (rolled over on `Reset`/`Gone`).
    telemetry_acc: CacheTelemetry,
    /// Latest heartbeat of the current transport session.
    telemetry_cur: CacheTelemetry,
    /// Set while the worker is busy with a shard that is already
    /// settled (a late duplicate in flight, or leftover work from a
    /// previous queue). If it neither delivers nor resets by then, it
    /// is wedged and gets quarantined.
    stale_deadline: Option<Instant>,
}

impl SweepScheduler {
    /// Spawns a fleet of `opts.workers` workers (minimum one) through
    /// `factory` and keeps it resident until the scheduler is dropped.
    ///
    /// Spawn failures are not fatal: the scheduler degrades to
    /// whatever fleet it got, down to none (every sweep then runs
    /// in-process). They are reported in every sweep's
    /// [`SweepStats::spawn_failures`].
    #[must_use]
    pub fn new(opts: SweepOptions, factory: &dyn WorkerFactory) -> Self {
        let (tx, rx) = std::sync::mpsc::channel();
        let fleet = opts.workers.max(1);
        let mut workers = Vec::new();
        let mut workers_spawned = 0;
        let mut spawn_failures = 0;
        for slot in 0..fleet {
            let id = slot as u64 + 1; // workers never respawn, so slots are ids
            match factory.spawn(slot, id, tx.clone()) {
                Ok(link) => {
                    workers_spawned += 1;
                    let remote = link.remote();
                    workers.push(Worker {
                        id,
                        link,
                        strikes: 0,
                        current: None,
                        healthy: true,
                        remote,
                        last_heard: Instant::now(),
                        telemetry_acc: CacheTelemetry::default(),
                        telemetry_cur: CacheTelemetry::default(),
                        stale_deadline: None,
                    });
                }
                Err(e) => {
                    spawn_failures += 1;
                    eprintln!("pbbf sweep: worker {id} failed to spawn: {e}");
                }
            }
        }
        Self {
            opts,
            workers,
            _tx: tx,
            rx,
            workers_spawned,
            spawn_failures,
            next_wire: 0,
            telemetry_reported: CacheTelemetry::default(),
        }
    }

    /// Number of workers still alive and accepting shards.
    #[must_use]
    pub fn healthy_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.healthy).count()
    }

    /// Runs a queue of sweeps to completion on the resident fleet.
    ///
    /// `queue[i]` is sweep `i`'s manifest. Shards are dealt in queue
    /// order but resolve in completion order; every settled shard is
    /// handed to `sink(sweep, shard, values)` exactly once, where
    /// `shard` is the shard's position *within its sweep's manifest*.
    /// Returns one [`SweepStats`] per queued sweep; fleet-scoped
    /// events (spawns, reconnects, telemetry) are attributed to the
    /// sweep that was settling when they were observed.
    ///
    /// `exec` is the in-process fallback executor — the same
    /// computation the workers perform, minus the process boundary.
    ///
    /// # Errors
    ///
    /// Fails only when a shard cannot be computed at all — i.e. the
    /// in-process fallback itself reports an error. Worker-side
    /// failures never surface here; they are retried away.
    pub fn run_queue<E, S>(
        &mut self,
        queue: Vec<Vec<ShardInput>>,
        exec: E,
        mut sink: S,
    ) -> Result<Vec<SweepStats>, String>
    where
        E: Fn(&Json) -> Result<Vec<Option<f64>>, String> + Sync,
        S: FnMut(usize, usize, Vec<Option<f64>>),
    {
        let now = Instant::now();
        let mut shards = Vec::new();
        let mut sweep_start = Vec::with_capacity(queue.len());
        let mut sweep_len = Vec::with_capacity(queue.len());
        for (sweep, inputs) in queue.into_iter().enumerate() {
            sweep_start.push(shards.len());
            sweep_len.push(inputs.len());
            for s in inputs {
                shards.push(Shard {
                    sweep,
                    job: s.job,
                    expect: s.expect,
                    attempt: 0,
                    status: ShardStatus::Pending { eligible_at: now },
                });
            }
        }
        let base = self.next_wire;
        self.next_wire = base + shards.len() as u64;
        let stats = vec![
            SweepStats {
                workers_spawned: self.workers_spawned,
                spawn_failures: self.spawn_failures,
                ..SweepStats::default()
            };
            sweep_len.len()
        ];

        let Self {
            opts,
            workers,
            rx,
            telemetry_reported,
            ..
        } = self;
        let mut eng = Engine {
            opts,
            workers,
            telemetry_reported,
            base,
            done: vec![0; sweep_len.len()],
            done_total: 0,
            settled: 0,
            shards,
            sweep_start,
            sweep_len,
            stats,
            exec: &exec,
            sink: &mut sink,
        };

        // A resident fleet keeps talking between queues (heartbeats,
        // late duplicates, deaths); absorb the backlog before dealing
        // new work so stale replies release their workers and a host
        // that died while idle is noticed now, not mid-sweep.
        eng.refresh_idle(now);
        while let Ok(ev) = rx.try_recv() {
            eng.handle(ev)?;
        }
        eng.check_settle();

        while !eng.complete() {
            let now = Instant::now();
            eng.assign(now)?;
            if eng.complete() {
                break;
            }
            if eng.healthy_workers() == 0 {
                eng.drain_in_process()?;
                break;
            }
            match rx.recv_timeout(eng.next_wait(Instant::now())) {
                Ok(ev) => eng.handle(ev)?,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("scheduler holds an event sender")
                }
            }
            eng.expire_deadlines(Instant::now())?;
            eng.expire_liveness(Instant::now())?;
            eng.expire_stale(Instant::now())?;
        }
        eng.check_settle();
        Ok(eng.stats)
    }

    /// Runs a single sweep on the resident fleet and returns its
    /// values in manifest order — [`run_queue`](Self::run_queue) with
    /// a one-element queue and a collecting sink. The fleet stays
    /// alive afterwards, ready for the next sweep.
    ///
    /// # Errors
    ///
    /// See [`run_queue`](Self::run_queue).
    pub fn run_sweep<E>(&mut self, inputs: Vec<ShardInput>, exec: E) -> Result<SweepOutcome, String>
    where
        E: Fn(&Json) -> Result<Vec<Option<f64>>, String> + Sync,
    {
        let n = inputs.len();
        let mut slots: Vec<Option<Vec<Option<f64>>>> = (0..n).map(|_| None).collect();
        let stats = self.run_queue(vec![inputs], exec, |_, shard, values| {
            slots[shard] = Some(values);
        })?;
        Ok(SweepOutcome {
            values: slots
                .into_iter()
                .map(|s| s.expect("a completed queue settles every shard"))
                .collect(),
            stats: stats[0],
        })
    }
}

impl Drop for SweepScheduler {
    fn drop(&mut self) {
        for w in &mut self.workers {
            w.link.kill(); // EOF first where the link supports it
        }
    }
}

enum ShardStatus {
    Pending { eligible_at: Instant },
    Running { worker: u64, deadline: Instant },
    Done,
}

struct Shard {
    /// Index of the sweep this shard belongs to (into the queue).
    sweep: usize,
    job: Json,
    expect: usize,
    attempt: u32,
    status: ShardStatus,
}

/// What a reply's wire id refers to, from the current queue's view.
enum WireRef {
    /// A shard from a previous queue — settled long ago (or its queue
    /// was abandoned). The values are worthless; the sender is free.
    Stale,
    /// Flat index into the current queue's shards.
    Flat(usize),
    /// Beyond anything ever dealt: fabricated, i.e. corrupt.
    Foreign,
}

/// Why a worker is being struck, and therefore what may be requeued.
enum StrikeScope {
    /// The output stream itself is suspect (unparseable/torn line);
    /// whatever the worker was computing is presumed lost.
    Torn,
    /// A structurally corrupt reply naming this current-queue shard.
    Shard(usize),
    /// A corrupt reply naming a shard that was never dealt.
    Foreign,
}

/// One queue's worth of run state, borrowing the scheduler's resident
/// fleet. Everything here dies with the queue; everything reachable
/// through the `&mut` borrows survives to the next one.
struct Engine<'a, E, S> {
    opts: &'a SweepOptions,
    workers: &'a mut Vec<Worker>,
    telemetry_reported: &'a mut CacheTelemetry,
    /// Wire id of flat shard 0; shard `f` is wire `base + f`.
    base: u64,
    shards: Vec<Shard>,
    sweep_start: Vec<usize>,
    sweep_len: Vec<usize>,
    /// Settled-shard count per sweep.
    done: Vec<usize>,
    done_total: usize,
    /// Sweeps `0..settled` have had their stats finalized.
    settled: usize,
    stats: Vec<SweepStats>,
    exec: &'a E,
    sink: &'a mut S,
}

impl<E, S> Engine<'_, E, S>
where
    E: Fn(&Json) -> Result<Vec<Option<f64>>, String> + Sync,
    S: FnMut(usize, usize, Vec<Option<f64>>),
{
    fn complete(&self) -> bool {
        self.done_total == self.shards.len()
    }

    fn healthy_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.healthy).count()
    }

    fn resolve(&self, wire: u64) -> WireRef {
        if wire < self.base {
            WireRef::Stale
        } else if ((wire - self.base) as usize) < self.shards.len() {
            WireRef::Flat((wire - self.base) as usize)
        } else {
            WireRef::Foreign
        }
    }

    /// The sweep fleet-scoped events are charged to: the first sweep
    /// whose stats have not settled yet (clamped to the last).
    fn active_sweep(&self) -> usize {
        self.settled.min(self.stats.len().saturating_sub(1))
    }

    /// Stats ledger of the sweep owning flat shard `f`.
    fn sstats(&mut self, f: usize) -> &mut SweepStats {
        let sweep = self.shards[f].sweep;
        &mut self.stats[sweep]
    }

    /// Stats ledger for a worker-scoped event: the sweep of the
    /// worker's in-flight shard when it has one in the current queue,
    /// else the active sweep.
    fn wstats(&mut self, widx: usize) -> &mut SweepStats {
        let sweep = match self.workers[widx].current.map(|w| self.resolve(w)) {
            Some(WireRef::Flat(f)) => self.shards[f].sweep,
            _ => self.active_sweep(),
        };
        &mut self.stats[sweep]
    }

    /// Resets idle-time book-keeping at queue start: nobody was
    /// expected to talk while no queue was running, so liveness clocks
    /// restart now, and any work still in flight from a previous queue
    /// gets one full deadline to settle before its worker is written
    /// off as wedged.
    fn refresh_idle(&mut self, now: Instant) {
        for w in self.workers.iter_mut() {
            if !w.healthy {
                continue;
            }
            w.last_heard = now;
            if w.current.is_some() {
                w.stale_deadline = Some(now + self.opts.shard_timeout);
            }
        }
    }

    fn handle(&mut self, ev: WorkerEvent) -> Result<(), String> {
        match ev {
            WorkerEvent::Line { worker, line } => self.on_line(worker, &line),
            WorkerEvent::Gone { worker } => self.on_gone(worker),
            WorkerEvent::Reset { worker } => self.on_reset(worker),
        }
    }

    /// Hands every eligible pending shard (in queue order) to an idle
    /// healthy worker.
    fn assign(&mut self, now: Instant) -> Result<(), String> {
        loop {
            let Some(f) = self.shards.iter().position(
                |s| matches!(s.status, ShardStatus::Pending { eligible_at } if eligible_at <= now),
            ) else {
                return Ok(());
            };
            let Some(widx) = self
                .workers
                .iter()
                .position(|w| w.healthy && w.current.is_none())
            else {
                return Ok(());
            };
            let wire = self.base + f as u64;
            let shard = &mut self.shards[f];
            let spec = ShardSpec {
                id: wire as u32,
                attempt: shard.attempt,
                expect: shard.expect as u32,
                job: shard.job.clone(),
            };
            let line = serde_json::to_string(&spec).map_err(|e| e.to_string())?;
            shard.status = ShardStatus::Running {
                worker: self.workers[widx].id,
                deadline: now + self.opts.shard_timeout,
            };
            self.workers[widx].current = Some(wire);
            if let Err(e) = self.workers[widx].link.send_line(&line) {
                eprintln!(
                    "pbbf sweep: worker {} unreachable ({e}); writing it off",
                    self.workers[widx].id
                );
                self.sstats(f).crashes += 1;
                self.write_off(widx)?;
            }
        }
    }

    /// Marks a worker dead and recycles whatever it was running.
    fn write_off(&mut self, widx: usize) -> Result<(), String> {
        self.workers[widx].healthy = false;
        self.workers[widx].link.kill();
        self.workers[widx].stale_deadline = None;
        if let Some(wire) = self.workers[widx].current.take() {
            if let WireRef::Flat(f) = self.resolve(wire) {
                if matches!(self.shards[f].status, ShardStatus::Running { .. }) {
                    self.fail_shard(f)?;
                }
            }
        }
        Ok(())
    }

    /// A corrupt reply: strike the sender, quarantine on repeat.
    fn strike(&mut self, widx: usize, scope: StrikeScope) -> Result<(), String> {
        match scope {
            StrikeScope::Shard(f) => self.sstats(f).corrupt += 1,
            StrikeScope::Torn | StrikeScope::Foreign => self.wstats(widx).corrupt += 1,
        }
        self.workers[widx].strikes += 1;
        if self.workers[widx].strikes >= self.opts.max_worker_strikes {
            eprintln!(
                "pbbf sweep: quarantining worker {} after {} corrupt replies",
                self.workers[widx].id, self.workers[widx].strikes
            );
            self.wstats(widx).quarantined += 1;
            return self.write_off(widx);
        }
        // Requeue the striker's in-flight shard only when the stream
        // itself is torn or the corrupt reply named that very shard. A
        // corrupt duplicate naming a *different* (typically already
        // settled) shard says nothing about the in-flight one — yanking
        // it into the retry ladder was a bug.
        let requeue = match scope {
            StrikeScope::Torn => true,
            StrikeScope::Shard(f) => self.workers[widx].current == Some(self.base + f as u64),
            StrikeScope::Foreign => false,
        };
        if requeue {
            if let Some(wire) = self.workers[widx].current.take() {
                self.workers[widx].stale_deadline = None;
                if let WireRef::Flat(f) = self.resolve(wire) {
                    if matches!(self.shards[f].status, ShardStatus::Running { .. }) {
                        return self.fail_shard(f);
                    }
                }
            }
        }
        Ok(())
    }

    /// Reschedules a failed shard with backoff, or — attempts spent —
    /// computes it right here.
    fn fail_shard(&mut self, f: usize) -> Result<(), String> {
        self.shards[f].attempt += 1;
        if self.shards[f].attempt >= self.opts.max_shard_attempts {
            eprintln!(
                "pbbf sweep: shard {} exhausted worker attempts; running in-process",
                self.base + f as u64
            );
            return self.run_in_process(f);
        }
        // Counted here, not above: the in-process escalation is not a
        // worker delivery, so it is not a retry.
        self.sstats(f).retries += 1;
        let shard = &mut self.shards[f];
        let exp = shard.attempt.saturating_sub(1).min(16);
        let backoff = self
            .opts
            .backoff_base
            .checked_mul(1 << exp)
            .unwrap_or(self.opts.backoff_cap)
            .min(self.opts.backoff_cap);
        shard.status = ShardStatus::Pending {
            eligible_at: Instant::now() + backoff,
        };
        Ok(())
    }

    fn run_in_process(&mut self, f: usize) -> Result<(), String> {
        let values = (self.exec)(&self.shards[f].job)
            .map_err(|e| format!("shard {f} failed in-process: {e}"))?;
        self.sstats(f).inproc_shards += 1;
        self.accept(f, values, None, Instant::now());
        Ok(())
    }

    fn release_if_current(&mut self, widx: usize, wire: u64) {
        if self.workers[widx].current == Some(wire) {
            self.workers[widx].current = None;
            self.workers[widx].stale_deadline = None;
        }
    }

    /// Settles flat shard `f`: streams its values to the sink and
    /// releases the worker that delivered them (`from`), if any.
    ///
    /// Only the *sender* is released. Another worker still holding
    /// this shard is mid-computation on a duplicate; it stays busy
    /// until its own copy arrives (or its stale deadline fires), so
    /// fresh work never lands on a worker whose deadline would tick
    /// against a stale computation.
    fn accept(&mut self, f: usize, values: Vec<Option<f64>>, from: Option<usize>, now: Instant) {
        let wire = self.base + f as u64;
        if let Some(widx) = from {
            self.release_if_current(widx, wire);
        }
        if matches!(self.shards[f].status, ShardStatus::Done) {
            return; // late duplicate: already streamed, by design
        }
        self.shards[f].status = ShardStatus::Done;
        for w in self.workers.iter_mut() {
            if w.healthy && w.current == Some(wire) && w.stale_deadline.is_none() {
                w.stale_deadline = Some(now + self.opts.shard_timeout);
            }
        }
        let sweep = self.shards[f].sweep;
        self.done[sweep] += 1;
        self.done_total += 1;
        (self.sink)(sweep, f - self.sweep_start[sweep], values);
        self.check_settle();
    }

    /// Finalizes stats for every completed sweep in queue order,
    /// attributing the fleet-wide telemetry delta since the previous
    /// settle — consecutive sweeps see non-overlapping windows, and
    /// nothing is reported twice.
    fn check_settle(&mut self) {
        while self.settled < self.stats.len()
            && self.done[self.settled] == self.sweep_len[self.settled]
        {
            let total = self.fleet_telemetry();
            let delta = total.saturating_sub(*self.telemetry_reported);
            let st = &mut self.stats[self.settled];
            st.cache_hits += delta.hits;
            st.cache_misses += delta.misses;
            st.cache_evictions += delta.evictions;
            *self.telemetry_reported = total;
            self.settled += 1;
        }
    }

    /// Fleet-wide cache telemetry: finished sessions plus the live
    /// one, per worker. Monotone over the scheduler's lifetime.
    fn fleet_telemetry(&self) -> CacheTelemetry {
        self.workers
            .iter()
            .fold(CacheTelemetry::default(), |acc, w| {
                add_telemetry(acc, add_telemetry(w.telemetry_acc, w.telemetry_cur))
            })
    }

    /// Rolls the live session's telemetry into the worker's
    /// accumulator — called when a transport session ends (`Reset` or
    /// `Gone`), whose next heartbeat (if any) restarts from zero.
    fn roll_telemetry(&mut self, widx: usize) {
        let w = &mut self.workers[widx];
        w.telemetry_acc = add_telemetry(w.telemetry_acc, w.telemetry_cur);
        w.telemetry_cur = CacheTelemetry::default();
    }

    fn on_line(&mut self, worker: u64, line: &str) -> Result<(), String> {
        let Some(widx) = self.workers.iter().position(|w| w.id == worker) else {
            return Ok(()); // unknown sender: drop
        };
        self.workers[widx].last_heard = Instant::now();
        let reply: WorkerReply = match serde_json::from_str(line) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("pbbf sweep: unparseable reply from worker {worker}: {e}");
                return self.strike(widx, StrikeScope::Torn);
            }
        };
        match reply {
            WorkerReply::Result(r) => match self.resolve(u64::from(r.id)) {
                WireRef::Stale => {
                    // A previous queue's shard: the values are settled
                    // history. All it proves is that the sender is free.
                    self.release_if_current(widx, u64::from(r.id));
                    Ok(())
                }
                WireRef::Foreign => {
                    eprintln!(
                        "pbbf sweep: corrupt result for shard {} from worker {worker}",
                        r.id
                    );
                    self.strike(widx, StrikeScope::Foreign)
                }
                WireRef::Flat(f) => {
                    let s = &self.shards[f];
                    let valid =
                        r.values.len() == s.expect && checksum(r.id, &r.values) == r.checksum;
                    if !valid {
                        eprintln!(
                            "pbbf sweep: corrupt result for shard {} from worker {worker}",
                            r.id
                        );
                        return self.strike(widx, StrikeScope::Shard(f));
                    }
                    // Deterministic values: any structurally valid copy
                    // is correct, even from a worker already written off.
                    self.accept(f, decode_values(&r.values), Some(widx), Instant::now());
                    Ok(())
                }
            },
            WorkerReply::Error(e) => {
                // An honest refusal — the job itself is suspect. The
                // retry ladder ends at the in-process executor, which
                // surfaces a real error if the job truly is malformed.
                eprintln!(
                    "pbbf sweep: worker {worker} refused shard {}: {}",
                    e.id, e.error
                );
                match self.resolve(u64::from(e.id)) {
                    WireRef::Stale => {
                        self.release_if_current(widx, u64::from(e.id));
                        Ok(())
                    }
                    WireRef::Foreign => {
                        self.wstats(widx).refused += 1;
                        Ok(())
                    }
                    WireRef::Flat(f) => {
                        self.sstats(f).refused += 1;
                        if self.workers[widx].current == Some(u64::from(e.id)) {
                            self.workers[widx].current = None;
                            self.workers[widx].stale_deadline = None;
                            if matches!(self.shards[f].status, ShardStatus::Running { .. }) {
                                return self.fail_shard(f);
                            }
                        }
                        Ok(())
                    }
                }
            }
            WorkerReply::Heartbeat(t) => {
                // Pure liveness + telemetry; `last_heard` already moved.
                // Heartbeats carry session totals (delta from the
                // connection baseline), so replace, don't add.
                self.workers[widx].telemetry_cur = t;
                Ok(())
            }
        }
    }

    /// The worker's transport dropped and reconnected: whatever it was
    /// running is lost on the far side, so requeue it — but the worker
    /// itself stays in the fleet. This is the "yanked cable, plugged
    /// back in" path; it must degrade no worse than a killed
    /// subprocess and no scheduling detail of it may reach the output.
    fn on_reset(&mut self, worker: u64) -> Result<(), String> {
        let Some(widx) = self.workers.iter().position(|w| w.id == worker) else {
            return Ok(());
        };
        // The old session is gone either way; bank its telemetry
        // before the new session's heartbeats restart from zero.
        self.roll_telemetry(widx);
        if !self.workers[widx].healthy {
            return Ok(()); // already written off; the link is dying
        }
        self.wstats(widx).reconnects += 1;
        self.workers[widx].last_heard = Instant::now();
        self.workers[widx].stale_deadline = None;
        if let Some(wire) = self.workers[widx].current.take() {
            if let WireRef::Flat(f) = self.resolve(wire) {
                if matches!(self.shards[f].status, ShardStatus::Running { .. }) {
                    eprintln!(
                        "pbbf sweep: worker {worker} transport reset; requeueing shard {wire}"
                    );
                    return self.fail_shard(f);
                }
            }
        }
        Ok(())
    }

    fn on_gone(&mut self, worker: u64) -> Result<(), String> {
        let Some(widx) = self.workers.iter().position(|w| w.id == worker) else {
            return Ok(());
        };
        // Its final session ended; keep what it reported.
        self.roll_telemetry(widx);
        if !self.workers[widx].healthy {
            return Ok(()); // already written off (we killed it)
        }
        eprintln!("pbbf sweep: worker {worker} died");
        self.wstats(widx).crashes += 1;
        self.write_off(widx)
    }

    /// Kills workers whose shard overran its deadline; the shard
    /// retries elsewhere, the worker is quarantined (a wedged process
    /// is not worth more work).
    fn expire_deadlines(&mut self, now: Instant) -> Result<(), String> {
        loop {
            let Some((f, wid)) = self
                .shards
                .iter()
                .enumerate()
                .find_map(|(i, s)| match s.status {
                    ShardStatus::Running { worker, deadline } if deadline <= now => {
                        Some((i, worker))
                    }
                    _ => None,
                })
            else {
                return Ok(());
            };
            eprintln!(
                "pbbf sweep: shard {} timed out on worker {wid}",
                self.base + f as u64
            );
            self.sstats(f).timeouts += 1;
            // Quarantine the wedged worker — but only when it is still
            // on the books; one already written off (crashed, lost
            // host) must not be counted quarantined a second time.
            if let Some(widx) = self.workers.iter().position(|w| w.id == wid && w.healthy) {
                self.sstats(f).quarantined += 1;
                self.write_off(widx)?;
            }
            if matches!(self.shards[f].status, ShardStatus::Running { .. }) {
                // The worker no longer claimed this shard; recycle it
                // directly so the scan above always makes progress.
                self.fail_shard(f)?;
            }
        }
    }

    /// Writes off remote workers that have been silent past the
    /// liveness window — the vanished-host detector. Remote workers
    /// heartbeat on a timer even mid-shard, so silence here means the
    /// host (or the network to it) is gone, not that a shard is slow;
    /// per-shard deadlines separately cover the slow/wedged case.
    fn expire_liveness(&mut self, now: Instant) -> Result<(), String> {
        loop {
            let Some(widx) = self.workers.iter().position(|w| {
                w.healthy
                    && w.remote
                    && now.duration_since(w.last_heard) > self.opts.liveness_timeout
            }) else {
                return Ok(());
            };
            eprintln!(
                "pbbf sweep: worker {} silent for {:.1?} (liveness {:.1?}); \
                 quarantining unreachable host",
                self.workers[widx].id,
                now.duration_since(self.workers[widx].last_heard),
                self.opts.liveness_timeout
            );
            let st = self.wstats(widx);
            st.hosts_lost += 1;
            st.quarantined += 1;
            self.write_off(widx)?;
        }
    }

    /// Quarantines workers that have been grinding on an already-
    /// settled shard for a whole deadline without delivering their
    /// duplicate — the stale-work analogue of a shard timeout.
    fn expire_stale(&mut self, now: Instant) -> Result<(), String> {
        loop {
            let Some(widx) = self
                .workers
                .iter()
                .position(|w| w.healthy && w.stale_deadline.is_some_and(|d| d <= now))
            else {
                return Ok(());
            };
            eprintln!(
                "pbbf sweep: worker {} wedged on a settled shard; quarantining it",
                self.workers[widx].id
            );
            self.wstats(widx).quarantined += 1;
            self.write_off(widx)?;
        }
    }

    /// No fleet left: compute every unfinished shard in-process, fanned
    /// across the thread pool the workers were meant to replace.
    fn drain_in_process(&mut self) -> Result<(), String> {
        let todo: Vec<usize> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| !matches!(s.status, ShardStatus::Done))
            .map(|(i, _)| i)
            .collect();
        if todo.is_empty() {
            return Ok(());
        }
        eprintln!(
            "pbbf sweep: no healthy workers; running {} shard(s) in-process",
            todo.len()
        );
        let exec = self.exec;
        let jobs: Vec<&Json> = todo.iter().map(|&i| &self.shards[i].job).collect();
        let results = pbbf_parallel::par_map(jobs, exec);
        let now = Instant::now();
        for (&f, result) in todo.iter().zip(results) {
            let values = result.map_err(|e| format!("shard {f} failed in-process: {e}"))?;
            self.sstats(f).inproc_shards += 1;
            self.accept(f, values, None, now);
        }
        Ok(())
    }

    /// How long the event loop may sleep before something is due.
    fn next_wait(&self, now: Instant) -> Duration {
        let mut next: Option<Instant> = None;
        let mut consider = |t: Instant| next = Some(next.map_or(t, |n| n.min(t)));
        for s in &self.shards {
            match s.status {
                ShardStatus::Running { deadline, .. } => consider(deadline),
                ShardStatus::Pending { eligible_at } if eligible_at > now => {
                    consider(eligible_at);
                }
                _ => {}
            }
        }
        for w in self.workers.iter() {
            if !w.healthy {
                continue;
            }
            if w.remote {
                consider(w.last_heard + self.opts.liveness_timeout);
            }
            if let Some(d) = w.stale_deadline {
                consider(d);
            }
        }
        next.map_or(Duration::from_millis(100), |t| {
            t.saturating_duration_since(now)
                .max(Duration::from_millis(1))
        })
    }
}

fn add_telemetry(a: CacheTelemetry, b: CacheTelemetry) -> CacheTelemetry {
    CacheTelemetry {
        hits: a.hits.saturating_add(b.hits),
        misses: a.misses.saturating_add(b.misses),
        evictions: a.evictions.saturating_add(b.evictions),
    }
}
