//! TCP transport: the fabric's line protocol over sockets.
//!
//! The wire format is *identical* to the pipe transport — one JSON
//! line per [`ShardSpec`](crate::protocol::ShardSpec) toward the
//! worker, one per [`WorkerReply`](crate::protocol::WorkerReply) back,
//! no length prefixes, `\n` framing (see `docs/PROTOCOL.md`). What the
//! socket adds is *failure modes pipes don't have* — half-open
//! connections, torn writes, silent peers — so this module adds the
//! machinery to make them degrade exactly like a killed subprocess:
//!
//! * **Connect/read timeouts.** Connects are bounded by
//!   [`TcpOptions::connect_timeout`]; the reader polls with a short
//!   socket read timeout so a vanished peer can't wedge the pump.
//! * **Heartbeats.** A served worker emits
//!   [`WorkerReply::Heartbeat`] lines every
//!   [`ServeOptions::heartbeat`], even mid-shard, so the supervisor's
//!   host-liveness window (`SweepOptions::liveness_timeout`) can tell
//!   a slow shard from a dead host. Each heartbeat carries cache
//!   telemetry as a *session total*: the counter delta since this
//!   connection's baseline, monotone within the connection. The
//!   scheduler therefore *replaces* (never adds) the last heartbeat
//!   per session, and banks the final total into a per-worker
//!   accumulator when the session ends (`Reset`/`Gone`) — so the
//!   counters restarting from zero on the next connection loses
//!   nothing. See `docs/PROTOCOL.md` §3.3.
//! * **Reconnection.** A dropped connection is retried with the same
//!   bounded exponential backoff the shard scheduler uses; success
//!   surfaces as [`WorkerEvent::Reset`] (in-flight shard requeued,
//!   worker kept), exhaustion as [`WorkerEvent::Gone`] (host
//!   quarantined).
//!
//! [`TcpWorkerFactory`] is the supervisor side (`pbbf sweep --hosts`),
//! [`serve_listener`] the worker side (`pbbf worker --listen`), and
//! [`HybridWorkerFactory`] splits one fleet across remote hosts and a
//! local factory (`--hosts` + `--workers`).

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde_json::Value as Json;

use crate::fault::FaultPlan;
use crate::protocol::{CacheTelemetry, ShardSpec, WorkerReply};
use crate::supervisor::{WorkerEvent, WorkerFactory, WorkerLink};
use crate::worker::{outcome_for_spec, render_reply, SpecOutcome};

/// Transport knobs for the supervisor side of a TCP link.
#[derive(Debug, Clone)]
pub struct TcpOptions {
    /// Per-address connect deadline (applies to the initial connect
    /// and to every reconnect attempt).
    pub connect_timeout: Duration,
    /// Socket read-timeout granularity of the reader pump: how often a
    /// blocked read wakes to notice shutdown. Small values cost a few
    /// spurious wakeups; they never drop data.
    pub read_poll: Duration,
    /// Reconnect attempts after a dropped connection (and connect
    /// attempts beyond the first at spawn) before the host is given up
    /// as gone.
    pub max_reconnects: u32,
    /// First reconnect delay; doubles per failed attempt.
    pub backoff_base: Duration,
    /// Reconnect delay ceiling.
    pub backoff_cap: Duration,
}

impl Default for TcpOptions {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            read_poll: Duration::from_millis(100),
            max_reconnects: 3,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(2),
        }
    }
}

fn backoff(opts: &TcpOptions, attempt: u32) -> Duration {
    opts.backoff_base
        .checked_mul(1_u32 << attempt.min(16))
        .unwrap_or(opts.backoff_cap)
        .min(opts.backoff_cap)
}

/// One bounded-deadline connect to `host`, trying each resolved
/// address in turn.
fn connect_once(host: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let addrs: Vec<SocketAddr> = host.to_socket_addrs()?.collect();
    let mut last = std::io::Error::other(format!("`{host}` resolved to no addresses"));
    for addr in addrs {
        match TcpStream::connect_timeout(&addr, timeout) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true); // lines, not bulk
                return Ok(stream);
            }
            Err(e) => last = e,
        }
    }
    Err(last)
}

/// Connect with the bounded-backoff retry ladder: one immediate
/// attempt plus up to `max_reconnects` retried ones.
fn connect_with_retries(host: &str, opts: &TcpOptions) -> std::io::Result<TcpStream> {
    let mut last = None;
    for attempt in 0..=opts.max_reconnects {
        if attempt > 0 {
            std::thread::sleep(backoff(opts, attempt - 1));
        }
        match connect_once(host, opts.connect_timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| std::io::Error::other("no connect attempts made")))
}

/// Spawns one TCP worker link per entry of `hosts` (slot `i` connects
/// to `hosts[i]`). Spawn *is* the connect: an unreachable host
/// surfaces as a spawn failure, which the supervisor degrades around
/// exactly like a worker binary that failed to start.
#[derive(Debug, Clone)]
pub struct TcpWorkerFactory {
    /// `host:port` endpoints, one worker each.
    pub hosts: Vec<String>,
    /// Transport knobs shared by every link.
    pub options: TcpOptions,
}

impl TcpWorkerFactory {
    /// A factory over `hosts` with default [`TcpOptions`].
    #[must_use]
    pub fn new(hosts: Vec<String>) -> Self {
        Self {
            hosts,
            options: TcpOptions::default(),
        }
    }
}

impl WorkerFactory for TcpWorkerFactory {
    fn spawn(
        &self,
        slot: usize,
        worker: u64,
        events: Sender<WorkerEvent>,
    ) -> std::io::Result<Box<dyn WorkerLink>> {
        let host = self.hosts.get(slot).ok_or_else(|| {
            std::io::Error::other(format!(
                "slot {slot} beyond the {} configured host(s)",
                self.hosts.len()
            ))
        })?;
        let stream = connect_with_retries(host, &self.options)?;
        let shared = Arc::new(LinkShared {
            writer: Mutex::new(Some(stream.try_clone()?)),
            shutdown: AtomicBool::new(false),
            host: host.clone(),
            options: self.options.clone(),
        });
        let pump_shared = Arc::clone(&shared);
        std::thread::spawn(move || reader_pump(&pump_shared, stream, worker, &events));
        Ok(Box::new(TcpWorkerLink { shared }))
    }
}

/// State shared between a link's writer half and its reader pump.
struct LinkShared {
    /// The writer handle of the *current* connection (replaced on
    /// reconnect, taken on kill).
    writer: Mutex<Option<TcpStream>>,
    shutdown: AtomicBool,
    host: String,
    options: TcpOptions,
}

impl LinkShared {
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

/// Supervisor-side handle on one TCP worker.
struct TcpWorkerLink {
    shared: Arc<LinkShared>,
}

impl WorkerLink for TcpWorkerLink {
    fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        let mut guard = self.shared.writer.lock().unwrap_or_else(|e| e.into_inner());
        let stream = guard
            .as_mut()
            .ok_or_else(|| std::io::Error::other("tcp link closed"))?;
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        stream.write_all(&framed)
    }

    fn kill(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let mut guard = self.shared.writer.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(stream) = guard.take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    fn remote(&self) -> bool {
        true // opt into host-level liveness
    }
}

impl Drop for TcpWorkerLink {
    fn drop(&mut self) {
        self.kill();
    }
}

/// The reader half: pumps reply lines into the supervisor's event
/// channel, detects disconnects, reconnects with bounded backoff
/// (emitting [`WorkerEvent::Reset`]), and reports [`WorkerEvent::Gone`]
/// when the host is truly unreachable or the link was killed.
fn reader_pump(
    shared: &LinkShared,
    mut stream: TcpStream,
    worker: u64,
    events: &Sender<WorkerEvent>,
) {
    let mut carry: Vec<u8> = Vec::new();
    'link: loop {
        let _ = stream.set_read_timeout(Some(shared.options.read_poll));
        let mut buf = [0_u8; 4096];
        loop {
            if shared.is_shutdown() {
                break 'link;
            }
            match stream.read(&mut buf) {
                Ok(0) => break, // peer closed (FIN or RST already seen)
                Ok(n) => {
                    carry.extend_from_slice(&buf[..n]);
                    while let Some(nl) = carry.iter().position(|&b| b == b'\n') {
                        let line = String::from_utf8_lossy(&carry[..nl]).into_owned();
                        carry.drain(..=nl);
                        if events.send(WorkerEvent::Line { worker, line }).is_err() {
                            return; // supervisor gone; nothing to report to
                        }
                    }
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(_) => break, // connection reset / torn down
            }
        }
        // A torn write leaves a partial line; surface it exactly like
        // the pipe transport's `lines()` does at EOF — the supervisor
        // strikes it as unparseable, which is correct: it IS suspect.
        if !carry.is_empty() {
            let line = String::from_utf8_lossy(&carry).into_owned();
            carry.clear();
            if events.send(WorkerEvent::Line { worker, line }).is_err() {
                return;
            }
        }
        if shared.is_shutdown() {
            break;
        }
        // Reconnect ladder: same bounded exponential backoff as the
        // shard scheduler's retry path.
        let mut next = None;
        for attempt in 0..shared.options.max_reconnects {
            std::thread::sleep(backoff(&shared.options, attempt));
            if shared.is_shutdown() {
                break 'link;
            }
            match connect_once(&shared.host, shared.options.connect_timeout) {
                Ok(s) => {
                    next = Some(s);
                    break;
                }
                Err(e) => eprintln!(
                    "pbbf sweep: reconnect {}/{} to {} failed: {e}",
                    attempt + 1,
                    shared.options.max_reconnects,
                    shared.host
                ),
            }
        }
        let Some(next) = next else { break };
        match next.try_clone() {
            Ok(writer) => {
                let mut guard = shared.writer.lock().unwrap_or_else(|e| e.into_inner());
                if shared.is_shutdown() {
                    break; // killed while reconnecting; discard
                }
                *guard = Some(writer);
            }
            Err(_) => break,
        }
        if events.send(WorkerEvent::Reset { worker }).is_err() {
            return;
        }
        stream = next;
    }
    let _ = events.send(WorkerEvent::Gone { worker });
}

/// One fleet, two transports: slots below `remote.hosts.len()` connect
/// out over TCP, the rest spawn through `local`. `pbbf sweep --hosts
/// a:1,b:2 --workers 2` builds a 4-worker fleet this way — and because
/// slot order is manifest order, remote hosts are dealt shards first.
pub struct HybridWorkerFactory<R, L> {
    /// The TCP half (slots `0..remote.hosts.len()`).
    pub remote: R,
    /// How many slots the remote half covers.
    pub remote_slots: usize,
    /// The local half (all later slots).
    pub local: L,
}

impl<R: WorkerFactory, L: WorkerFactory> WorkerFactory for HybridWorkerFactory<R, L> {
    fn spawn(
        &self,
        slot: usize,
        worker: u64,
        events: Sender<WorkerEvent>,
    ) -> std::io::Result<Box<dyn WorkerLink>> {
        if slot < self.remote_slots {
            self.remote.spawn(slot, worker, events)
        } else {
            self.local.spawn(slot - self.remote_slots, worker, events)
        }
    }
}

/// Worker-side serving knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Heartbeat period: how often the worker emits a
    /// [`WorkerReply::Heartbeat`] line, including while a shard is
    /// executing. Must be well under the supervisor's
    /// `liveness_timeout`.
    pub heartbeat: Duration,
    /// Exit after serving one connection (CI and tests; a resident
    /// worker keeps accepting).
    pub once: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            heartbeat: Duration::from_secs(1),
            once: false,
        }
    }
}

/// Serves supervisor connections on `listener`, one at a time, until
/// the process is killed (or after the first connection with
/// [`ServeOptions::once`]). Each connection runs the same loop as the
/// stdin worker — shard specs in, replies out — plus timed heartbeat
/// lines carrying `telemetry()` deltas since the connection opened.
///
/// Injected faults (`PBBF_FAULT`) behave as in pipe mode: `crash`
/// exits the process (taking the listener with it, so the supervisor's
/// reconnects fail — the remote analogue of a dead subprocess), `hang`
/// wedges the shard while heartbeats keep flowing (caught by the
/// supervisor's per-shard deadline), `corrupt` sends a torn reply.
///
/// # Errors
///
/// Returns any listener `accept` error; per-connection I/O errors are
/// logged and survive into the next `accept`.
pub fn serve_listener<E, T>(
    listener: &TcpListener,
    options: &ServeOptions,
    exec: E,
    telemetry: T,
) -> std::io::Result<()>
where
    E: Fn(&Json) -> Result<Vec<Option<f64>>, String>,
    T: Fn() -> CacheTelemetry + Sync,
{
    let plan = FaultPlan::from_env();
    loop {
        let (stream, peer) = listener.accept()?;
        eprintln!("pbbf worker: supervisor connected from {peer}");
        match serve_connection(&stream, options, &plan, &exec, &telemetry) {
            Ok(()) => eprintln!("pbbf worker: connection from {peer} closed"),
            Err(e) => eprintln!("pbbf worker: connection from {peer} failed: {e}"),
        }
        if options.once {
            return Ok(());
        }
    }
}

fn serve_connection<E, T>(
    stream: &TcpStream,
    options: &ServeOptions,
    plan: &FaultPlan,
    exec: &E,
    telemetry: &T,
) -> std::io::Result<()>
where
    E: Fn(&Json) -> Result<Vec<Option<f64>>, String>,
    T: Fn() -> CacheTelemetry + Sync,
{
    let _ = stream.set_nodelay(true);
    let baseline = telemetry();
    let writer = Mutex::new(stream.try_clone()?);
    let stop = AtomicBool::new(false);
    let beat = |t: CacheTelemetry| {
        let line = render_reply(&WorkerReply::Heartbeat(t), 0);
        write_line(&writer, &line)
    };
    std::thread::scope(|scope| {
        scope.spawn(|| {
            // The heartbeat pump: beats immediately (so the supervisor
            // hears a fresh connection right away), then on the timer.
            // Polls `stop` in short slices so connection teardown
            // never waits a full period.
            loop {
                if beat(telemetry().saturating_sub(baseline)).is_err() {
                    return; // connection gone; the main loop will see it too
                }
                let deadline = Instant::now() + options.heartbeat;
                while Instant::now() < deadline {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        });
        let result = shard_pump(stream, &writer, plan, exec, &|| {
            telemetry().saturating_sub(baseline)
        });
        stop.store(true, Ordering::Release);
        result
    })
}

/// Reads shard-spec lines off the connection and answers them, exactly
/// like the stdin loop. Returns when the supervisor closes or drops
/// the connection.
fn shard_pump<E>(
    stream: &TcpStream,
    writer: &Mutex<TcpStream>,
    plan: &FaultPlan,
    exec: &E,
    telemetry: &dyn Fn() -> CacheTelemetry,
) -> std::io::Result<()>
where
    E: Fn(&Json) -> Result<Vec<Option<f64>>, String>,
{
    let mut reader = std::io::BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    loop {
        line.clear();
        let n = std::io::BufRead::read_line(&mut reader, &mut line)?;
        if n == 0 {
            return Ok(()); // EOF: supervisor is done with us
        }
        if line.trim().is_empty() {
            continue;
        }
        let spec: ShardSpec = match serde_json::from_str(line.trim_end()) {
            Ok(spec) => spec,
            Err(e) => {
                // Unlike stdin mode the process survives: drop the
                // connection (the supervisor will strike/requeue) and
                // stay available for the next one.
                return Err(std::io::Error::other(format!(
                    "unparseable shard spec: {e}"
                )));
            }
        };
        let reply = match outcome_for_spec(plan, &spec, exec) {
            SpecOutcome::Reply(reply) => reply,
            SpecOutcome::Crash(code) => {
                // A crashed subprocess takes its pipes with it; the
                // remote analogue takes the whole process, listener
                // included, so reconnects fail like respawns would.
                std::process::exit(code);
            }
        };
        write_line(writer, &render_reply(&reply, spec.id))?;
        write_line(
            writer,
            &render_reply(&WorkerReply::Heartbeat(telemetry()), spec.id),
        )?;
    }
}

/// Writes one `\n`-framed line under the writer lock, so heartbeat and
/// reply lines never interleave mid-frame.
fn write_line(writer: &Mutex<TcpStream>, line: &str) -> std::io::Result<()> {
    let mut framed = Vec::with_capacity(line.len() + 1);
    framed.extend_from_slice(line.as_bytes());
    framed.push(b'\n');
    let mut guard = writer.lock().unwrap_or_else(|e| e.into_inner());
    guard.write_all(&framed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let opts = TcpOptions {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(65),
            ..TcpOptions::default()
        };
        assert_eq!(backoff(&opts, 0), Duration::from_millis(10));
        assert_eq!(backoff(&opts, 1), Duration::from_millis(20));
        assert_eq!(backoff(&opts, 2), Duration::from_millis(40));
        assert_eq!(backoff(&opts, 3), Duration::from_millis(65), "capped");
        assert_eq!(backoff(&opts, 60), Duration::from_millis(65), "no overflow");
    }

    #[test]
    fn connect_to_unbound_port_fails_fast() {
        // Bind-then-drop gives a port that is almost surely refused.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
            l.local_addr().expect("addr").port()
        };
        let host = format!("127.0.0.1:{port}");
        let err = connect_once(&host, Duration::from_secs(1));
        assert!(err.is_err(), "connect to {host} should be refused");
    }
}
