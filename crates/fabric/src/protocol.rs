//! The supervisor ↔ worker wire format: JSON lines, bit-exact values.
//!
//! One [`ShardSpec`] per line on a worker's stdin, one [`WorkerReply`]
//! per line on its stdout. Two deliberate choices keep the channel
//! deterministic and tamper-evident:
//!
//! * **Values travel as bit patterns.** A shard's per-run metric values
//!   are `Option<f64>`; the wire carries `Option<u64>` via
//!   [`f64::to_bits`]. Decimal text could round-trip finite doubles
//!   (Rust's shortest-representation formatter is exact), but bits make
//!   the bitwise-identity contract *inspectably* independent of any
//!   formatter, and extend it to NaN payloads and signed zeros for
//!   free.
//! * **Replies carry a checksum.** [`checksum`] folds the shard id and
//!   value bits through FNV-1a; the supervisor recomputes it and treats
//!   a mismatch as a corrupt worker (strike + retry elsewhere), never
//!   as data.

use serde::{Deserialize, Serialize};
use serde_json::Value as Json;

/// One unit of work: an opaque job plus the retry/accounting envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Manifest position of this shard — the supervisor folds replies
    /// by this index, so it is the only identity that matters.
    pub id: u32,
    /// Zero-based delivery attempt, so workers (and fault injection)
    /// can distinguish a first execution from a retry.
    pub attempt: u32,
    /// Number of values the shard must return; replies of any other
    /// length are rejected as corrupt.
    pub expect: u32,
    /// The opaque job payload. The supervisor forwards it verbatim and
    /// never interprets it; only the executor closure does.
    pub job: Json,
}

/// A successfully executed shard: its values, bit-exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardResult {
    /// The shard's manifest position (echoed from the spec).
    pub id: u32,
    /// Per-run metric values as `f64` bit patterns; `None` marks a run
    /// that produced no sample.
    pub values: Vec<Option<u64>>,
    /// [`checksum`] over `(id, values)`.
    pub checksum: u64,
}

/// Deployment-cache counters a worker reports in heartbeat telemetry:
/// how many `(seed, geometry)` scenario lookups its process-wide
/// registry answered from memory versus drew fresh. Pure observability
/// — the supervisor folds these into
/// [`SweepStats`](crate::supervisor::SweepStats); they can never touch
/// the output values.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheTelemetry {
    /// Scenario lookups answered from the cache.
    pub hits: u64,
    /// Scenario lookups that drew a fresh deployment.
    pub misses: u64,
    /// Entries evicted to honor the cache's capacity bound.
    pub evictions: u64,
}

impl CacheTelemetry {
    /// Counter-wise saturating difference — used to report per-session
    /// deltas from a process-lifetime counter baseline.
    #[must_use]
    pub fn saturating_sub(self, baseline: Self) -> Self {
        Self {
            hits: self.hits.saturating_sub(baseline.hits),
            misses: self.misses.saturating_sub(baseline.misses),
            evictions: self.evictions.saturating_sub(baseline.evictions),
        }
    }
}

/// A shard the worker refused (malformed job) — reported, not fatal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardError {
    /// The shard's manifest position (echoed from the spec).
    pub id: u32,
    /// Why the worker refused it.
    pub error: String,
}

/// One output line from a worker (stdout pipe or TCP socket).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkerReply {
    /// The shard executed; here are its bits.
    Result(ShardResult),
    /// The worker refused the shard.
    Error(ShardError),
    /// A liveness beat carrying deployment-cache telemetry. Remote
    /// (socket) workers emit these on a timer so the supervisor can
    /// tell a slow shard from a vanished host; every worker emits one
    /// after each reply so telemetry is at least as fresh as the last
    /// completed shard.
    Heartbeat(CacheTelemetry),
}

/// FNV-1a 64 over a shard id and its value bits. Cheap, dependency-free
/// corruption tripwire — not cryptographic, and doesn't need to be: the
/// threat model is truncated pipes and injected faults, not adversaries.
#[must_use]
pub fn checksum(id: u32, values: &[Option<u64>]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |word: u64| {
        for byte in word.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(PRIME);
        }
    };
    eat(u64::from(id));
    eat(values.len() as u64);
    for v in values {
        match v {
            // Distinct tag words keep `None` and `Some(0.0)` apart.
            Some(bits) => {
                eat(1);
                eat(*bits);
            }
            None => eat(2),
        }
    }
    h
}

/// Encodes per-run metric values for the wire.
#[must_use]
pub fn encode_values(values: &[Option<f64>]) -> Vec<Option<u64>> {
    values.iter().map(|v| v.map(f64::to_bits)).collect()
}

/// Decodes wire values back to per-run metric values, bit-for-bit.
#[must_use]
pub fn decode_values(bits: &[Option<u64>]) -> Vec<Option<f64>> {
    bits.iter().map(|b| b.map(f64::from_bits)).collect()
}

/// Builds a well-formed reply for an executed shard.
#[must_use]
pub fn result_reply(id: u32, values: &[Option<f64>]) -> WorkerReply {
    let values = encode_values(values);
    let checksum = checksum(id, &values);
    WorkerReply::Result(ShardResult {
        id,
        values,
        checksum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_and_replies_round_trip() {
        let spec = ShardSpec {
            id: 7,
            attempt: 2,
            expect: 3,
            job: serde_json::from_str("{\"figure\":\"fig17\",\"point\":4}").unwrap(),
        };
        let line = serde_json::to_string(&spec).unwrap();
        assert_eq!(serde_json::from_str::<ShardSpec>(&line).unwrap(), spec);

        let reply = result_reply(7, &[Some(0.5), None, Some(-0.0)]);
        let line = serde_json::to_string(&reply).unwrap();
        assert_eq!(serde_json::from_str::<WorkerReply>(&line).unwrap(), reply);
    }

    #[test]
    fn heartbeats_round_trip() {
        let beat = WorkerReply::Heartbeat(CacheTelemetry {
            hits: 41,
            misses: 7,
            evictions: 1,
        });
        let line = serde_json::to_string(&beat).unwrap();
        assert!(line.contains("Heartbeat"), "externally tagged: {line}");
        assert_eq!(serde_json::from_str::<WorkerReply>(&line).unwrap(), beat);
    }

    #[test]
    fn telemetry_deltas_saturate() {
        let now = CacheTelemetry {
            hits: 10,
            misses: 4,
            evictions: 0,
        };
        let base = CacheTelemetry {
            hits: 3,
            misses: 9, // counter reset shape: baseline ahead of now
            evictions: 0,
        };
        let d = now.saturating_sub(base);
        assert_eq!((d.hits, d.misses, d.evictions), (7, 0, 0));
    }

    #[test]
    fn values_survive_the_wire_bit_for_bit() {
        let vals = vec![
            Some(0.1 + 0.2), // not representable prettily
            Some(f64::NAN),
            Some(-0.0),
            Some(f64::MIN_POSITIVE / 2.0), // subnormal
            None,
        ];
        let decoded = decode_values(&encode_values(&vals));
        assert_eq!(decoded.len(), vals.len());
        for (a, b) in vals.iter().zip(&decoded) {
            assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
        }
    }

    #[test]
    fn checksum_detects_tampering() {
        let vals = encode_values(&[Some(1.5), None, Some(2.5)]);
        let good = checksum(3, &vals);
        assert_ne!(good, checksum(4, &vals), "id is covered");
        let mut flipped = vals.clone();
        flipped[0] = flipped[0].map(|b| b ^ 1);
        assert_ne!(good, checksum(3, &flipped), "value bits are covered");
        let mut shifted = vals;
        shifted[1] = Some(0);
        assert_ne!(good, checksum(3, &shifted), "None vs Some(0.0) differ");
    }
}
