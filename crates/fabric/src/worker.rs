//! The worker side of the fabric: a stdin→stdout shard executor.
//!
//! `pbbf worker` calls [`worker_loop`] with an executor closure; the
//! loop reads one [`ShardSpec`](crate::protocol::ShardSpec) JSON line
//! at a time, executes it, and writes one
//! [`WorkerReply`](crate::protocol::WorkerReply) line back, flushed per
//! shard so the supervisor sees results the moment they exist. EOF on
//! stdin is the shutdown signal — the supervisor just closes the pipe.
//!
//! Fault injection (`PBBF_FAULT`, parsed by
//! [`FaultPlan::from_env`](crate::fault::FaultPlan::from_env)) is
//! honored here and only here.

use std::io::{BufRead, Write};

use crate::fault::{FaultKind, FaultPlan};
use crate::protocol::{checksum, encode_values, result_reply, ShardError, ShardSpec, WorkerReply};
use serde_json::Value as Json;

/// Runs the worker loop over this process's stdin/stdout until EOF,
/// returning the process exit code.
///
/// `exec` maps an opaque job payload to its per-run values; an `Err`
/// is reported to the supervisor as a refused shard (the worker stays
/// alive). A stdin line that doesn't parse as a [`ShardSpec`] is
/// unrecoverable — the worker can't even name the shard to refuse it —
/// so the loop exits nonzero and lets the supervisor's liveness
/// handling reassign whatever was in flight.
pub fn worker_loop<E>(exec: E) -> i32
where
    E: Fn(&Json) -> Result<Vec<Option<f64>>, String>,
{
    let plan = FaultPlan::from_env();
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { return 1 };
        if line.trim().is_empty() {
            continue;
        }
        let spec: ShardSpec = match serde_json::from_str(&line) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("pbbf worker: unparseable shard spec ({e}); exiting");
                return 1;
            }
        };
        let reply = match plan.fault_for(spec.id, spec.attempt) {
            Some(FaultKind::Crash) => {
                eprintln!("pbbf worker: injected crash on shard {}", spec.id);
                return 3;
            }
            Some(FaultKind::Hang) => {
                eprintln!("pbbf worker: injected hang on shard {}", spec.id);
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
            }
            Some(FaultKind::Corrupt) => {
                eprintln!("pbbf worker: injected corruption on shard {}", spec.id);
                corrupt_reply(&spec, &exec)
            }
            None => match exec(&spec.job) {
                Ok(values) => result_reply(spec.id, &values),
                Err(error) => WorkerReply::Error(ShardError { id: spec.id, error }),
            },
        };
        let rendered = serde_json::to_string(&reply).unwrap_or_else(|e| {
            // Infallible with the shim; belt-and-braces for API parity.
            format!(
                "{{\"Error\":{{\"id\":{},\"error\":\"render: {e}\"}}}}",
                spec.id
            )
        });
        if writeln!(out, "{rendered}")
            .and_then(|()| out.flush())
            .is_err()
        {
            return 1; // supervisor hung up
        }
    }
    0
}

/// Executes the shard for real, then flips one value bit while keeping
/// the checksum computed over the *uncorrupted* values — exactly the
/// torn-write shape the supervisor's checksum validation must catch.
/// (With no `Some` value to flip, the checksum itself is perturbed.)
fn corrupt_reply<E>(spec: &ShardSpec, exec: &E) -> WorkerReply
where
    E: Fn(&Json) -> Result<Vec<Option<f64>>, String>,
{
    let values = exec(&spec.job).unwrap_or_default();
    let mut bits = encode_values(&values);
    let stale = checksum(spec.id, &bits);
    match bits.iter_mut().find_map(|b| b.as_mut()) {
        Some(word) => *word ^= 1,
        None => bits.push(Some(0)),
    }
    WorkerReply::Result(crate::protocol::ShardResult {
        id: spec.id,
        values: bits,
        checksum: stale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u32) -> ShardSpec {
        ShardSpec {
            id,
            attempt: 0,
            expect: 2,
            job: Json::Null,
        }
    }

    #[test]
    fn corruption_fails_checksum_validation() {
        let exec = |_: &Json| Ok(vec![Some(1.5), None]);
        let WorkerReply::Result(r) = corrupt_reply(&spec(9), &exec) else {
            panic!("corrupt replies are Results");
        };
        assert_ne!(checksum(r.id, &r.values), r.checksum);
    }

    #[test]
    fn corruption_with_no_samples_still_trips() {
        let exec = |_: &Json| Ok(vec![None, None]);
        let WorkerReply::Result(r) = corrupt_reply(&spec(2), &exec) else {
            panic!("corrupt replies are Results");
        };
        assert_ne!(checksum(r.id, &r.values), r.checksum);
    }
}
