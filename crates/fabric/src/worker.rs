//! The worker side of the fabric: a stdin→stdout shard executor.
//!
//! `pbbf worker` calls [`worker_loop`] (or [`worker_loop_with`], which
//! also reports deployment-cache telemetry) with an executor closure;
//! the loop reads one [`ShardSpec`](crate::protocol::ShardSpec) JSON
//! line at a time, executes it, and writes one
//! [`WorkerReply`](crate::protocol::WorkerReply) line back, flushed per
//! shard so the supervisor sees results the moment they exist. EOF on
//! stdin is the shutdown signal — the supervisor just closes the pipe.
//!
//! The socket-transport worker (`pbbf worker --listen`, see
//! [`crate::tcp::serve_listener`]) speaks the identical line protocol
//! over a TCP connection and shares the per-spec execution logic here
//! ([`SpecOutcome`] via `outcome_for_spec`).
//!
//! Fault injection (`PBBF_FAULT`, parsed by
//! [`FaultPlan::from_env`](crate::fault::FaultPlan::from_env)) is
//! honored here and only here.

use std::io::{BufRead, Write};

use crate::fault::{FaultKind, FaultPlan};
use crate::protocol::{
    checksum, encode_values, result_reply, CacheTelemetry, ShardError, ShardSpec, WorkerReply,
};
use serde_json::Value as Json;

/// What executing one spec (fault plan applied) amounts to.
pub(crate) enum SpecOutcome {
    /// A reply line to send back.
    Reply(WorkerReply),
    /// Injected crash: the worker process must exit with this code.
    Crash(i32),
}

/// Executes one spec under the fault plan. An injected hang sleeps
/// right here, forever — in socket mode the heartbeat thread keeps
/// beating, which is exactly the "host alive, shard wedged" shape the
/// supervisor's per-shard deadline (not host liveness) must catch.
pub(crate) fn outcome_for_spec<E>(plan: &FaultPlan, spec: &ShardSpec, exec: &E) -> SpecOutcome
where
    E: Fn(&Json) -> Result<Vec<Option<f64>>, String>,
{
    match plan.fault_for(spec.id, spec.attempt) {
        Some(FaultKind::Crash) => {
            eprintln!("pbbf worker: injected crash on shard {}", spec.id);
            SpecOutcome::Crash(3)
        }
        Some(FaultKind::Hang) => {
            eprintln!("pbbf worker: injected hang on shard {}", spec.id);
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        Some(FaultKind::Corrupt) => {
            eprintln!("pbbf worker: injected corruption on shard {}", spec.id);
            SpecOutcome::Reply(corrupt_reply(spec, exec))
        }
        None => SpecOutcome::Reply(match exec(&spec.job) {
            Ok(values) => result_reply(spec.id, &values),
            Err(error) => WorkerReply::Error(ShardError { id: spec.id, error }),
        }),
    }
}

/// Renders a reply to its wire line.
pub(crate) fn render_reply(reply: &WorkerReply, shard_id: u32) -> String {
    serde_json::to_string(reply).unwrap_or_else(|e| render_fallback_error(shard_id, &e.to_string()))
}

/// Builds the fallback `Error` line through the JSON encoder itself —
/// hand-formatting it would emit an invalid line the moment the error
/// message contains a quote, backslash, or control character, and an
/// invalid line costs the worker a corruption strike.
fn render_fallback_error(shard_id: u32, msg: &str) -> String {
    let error = Json::Obj(vec![
        ("id".into(), Json::U64(u64::from(shard_id))),
        ("error".into(), Json::Str(format!("render: {msg}"))),
    ]);
    serde_json::to_string(&Json::Obj(vec![("Error".into(), error)]))
        .expect("rendering a literal Json value cannot fail")
}

/// Runs the worker loop over this process's stdin/stdout until EOF,
/// returning the process exit code. No telemetry heartbeats are
/// emitted; see [`worker_loop_with`].
///
/// `exec` maps an opaque job payload to its per-run values; an `Err`
/// is reported to the supervisor as a refused shard (the worker stays
/// alive). A stdin line that doesn't parse as a [`ShardSpec`] is
/// unrecoverable — the worker can't even name the shard to refuse it —
/// so the loop exits nonzero and lets the supervisor's liveness
/// handling reassign whatever was in flight.
pub fn worker_loop<E>(exec: E) -> i32
where
    E: Fn(&Json) -> Result<Vec<Option<f64>>, String>,
{
    worker_loop_impl(exec, None::<fn() -> CacheTelemetry>)
}

/// [`worker_loop`], plus telemetry: after every reply the worker also
/// writes a [`WorkerReply::Heartbeat`] line carrying `telemetry()`'s
/// counters as a delta from loop start, so the supervisor's
/// `SweepStats` can aggregate deployment-cache behavior across the
/// fleet.
pub fn worker_loop_with<E, T>(exec: E, telemetry: T) -> i32
where
    E: Fn(&Json) -> Result<Vec<Option<f64>>, String>,
    T: Fn() -> CacheTelemetry,
{
    worker_loop_impl(exec, Some(telemetry))
}

fn worker_loop_impl<E, T>(exec: E, telemetry: Option<T>) -> i32
where
    E: Fn(&Json) -> Result<Vec<Option<f64>>, String>,
    T: Fn() -> CacheTelemetry,
{
    let plan = FaultPlan::from_env();
    let baseline = telemetry
        .as_ref()
        .map_or_else(CacheTelemetry::default, |t| t());
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { return 1 };
        if line.trim().is_empty() {
            continue;
        }
        let spec: ShardSpec = match serde_json::from_str(&line) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("pbbf worker: unparseable shard spec ({e}); exiting");
                return 1;
            }
        };
        let reply = match outcome_for_spec(&plan, &spec, &exec) {
            SpecOutcome::Reply(reply) => reply,
            SpecOutcome::Crash(code) => return code,
        };
        let mut rendered = render_reply(&reply, spec.id);
        if let Some(telemetry) = &telemetry {
            let beat = WorkerReply::Heartbeat(telemetry().saturating_sub(baseline));
            rendered.push('\n');
            rendered.push_str(&render_reply(&beat, spec.id));
        }
        if writeln!(out, "{rendered}")
            .and_then(|()| out.flush())
            .is_err()
        {
            return 1; // supervisor hung up
        }
    }
    0
}

/// Executes the shard for real, then flips one value bit while keeping
/// the checksum computed over the *uncorrupted* values — exactly the
/// torn-write shape the supervisor's checksum validation must catch.
/// (With no `Some` value to flip, the checksum itself is perturbed.)
fn corrupt_reply<E>(spec: &ShardSpec, exec: &E) -> WorkerReply
where
    E: Fn(&Json) -> Result<Vec<Option<f64>>, String>,
{
    let values = exec(&spec.job).unwrap_or_default();
    let mut bits = encode_values(&values);
    let stale = checksum(spec.id, &bits);
    match bits.iter_mut().find_map(|b| b.as_mut()) {
        Some(word) => *word ^= 1,
        None => bits.push(Some(0)),
    }
    WorkerReply::Result(crate::protocol::ShardResult {
        id: spec.id,
        values: bits,
        checksum: stale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u32) -> ShardSpec {
        ShardSpec {
            id,
            attempt: 0,
            expect: 2,
            job: Json::Null,
        }
    }

    #[test]
    fn corruption_fails_checksum_validation() {
        let exec = |_: &Json| Ok(vec![Some(1.5), None]);
        let WorkerReply::Result(r) = corrupt_reply(&spec(9), &exec) else {
            panic!("corrupt replies are Results");
        };
        assert_ne!(checksum(r.id, &r.values), r.checksum);
    }

    #[test]
    fn corruption_with_no_samples_still_trips() {
        let exec = |_: &Json| Ok(vec![None, None]);
        let WorkerReply::Result(r) = corrupt_reply(&spec(2), &exec) else {
            panic!("corrupt replies are Results");
        };
        assert_ne!(checksum(r.id, &r.values), r.checksum);
    }

    #[test]
    fn outcome_for_clean_spec_is_the_result_reply() {
        let exec = |_: &Json| Ok(vec![Some(1.0), None]);
        let SpecOutcome::Reply(reply) = outcome_for_spec(&FaultPlan::parse(""), &spec(4), &exec)
        else {
            panic!("no fault planned");
        };
        assert_eq!(reply, result_reply(4, &[Some(1.0), None]));
    }

    #[test]
    fn outcome_for_crash_fault_asks_for_exit() {
        let exec = |_: &Json| Ok(vec![]);
        let plan = FaultPlan::parse("crash:4");
        assert!(matches!(
            outcome_for_spec(&plan, &spec(4), &exec),
            SpecOutcome::Crash(3)
        ));
    }

    #[test]
    fn fallback_error_line_survives_hostile_messages() {
        // Quotes, backslashes, newlines, tabs: everything that would
        // break a hand-interpolated JSON literal. The line must parse
        // back as a WorkerReply naming the right shard.
        let msg = "disk \"full\" at C:\\tmp\nline2\tend";
        let line = render_fallback_error(7, msg);
        let reply: WorkerReply =
            serde_json::from_str(&line).expect("fallback error line must be valid JSON");
        let WorkerReply::Error(e) = reply else {
            panic!("fallback renders an Error reply, got {reply:?}");
        };
        assert_eq!(e.id, 7);
        assert_eq!(e.error, format!("render: {msg}"));
    }
}
