//! `PBBF_FAULT` — deterministic fault injection for worker processes.
//!
//! The supervisor's failure paths (crash, hang, corrupt output) are
//! hard to exercise organically, so workers honor an env-var fault
//! plan: `PBBF_FAULT=crash:1,hang:4,corrupt:7` makes the worker that
//! receives shard 1 exit mid-shard, shard 4's worker wedge until the
//! supervisor's deadline kills it, and shard 7's reply arrive with a
//! flipped value bit under a stale checksum. Each fault fires on the
//! shard's *first* delivery only — the retry then succeeds — unless the
//! shard number carries a `+` suffix (`crash:0+`), which makes the
//! fault fire on every attempt and drives the supervisor down its
//! attempt-exhaustion → in-process fallback path. The shard position
//! also accepts `*` (`hang:*`): the fault fires on whatever shard the
//! worker happens to receive first — the shape cross-host CI needs,
//! where shard→host assignment is a scheduling detail.
//!
//! Only [`worker_loop`](crate::worker::worker_loop) consults the plan;
//! the supervisor never does, so a sweep's *recovery* is what gets
//! tested, not a short-circuit. Determinism note: faults keyed on shard
//! id and attempt are reproducible by construction — no dice rolls.

/// What a planned fault does to the shard's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Exit the worker process before replying.
    Crash,
    /// Never reply; sleep until killed.
    Hang,
    /// Reply with a flipped value bit and a stale checksum.
    Corrupt,
}

/// Which shards a fault entry applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShardSel {
    /// One specific manifest position.
    Id(u32),
    /// Any shard (`*`) — whatever this worker is handed.
    Any,
}

impl ShardSel {
    fn matches(self, shard: u32) -> bool {
        match self {
            ShardSel::Id(id) => id == shard,
            ShardSel::Any => true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fault {
    kind: FaultKind,
    shard: ShardSel,
    every_attempt: bool,
}

/// A parsed `PBBF_FAULT` plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Parses the plan from `PBBF_FAULT` (empty/unset → no faults).
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse(&std::env::var("PBBF_FAULT").unwrap_or_default())
    }

    /// Parses a comma-separated `kind:shard[+]` list. Unrecognized
    /// entries are ignored (a test knob, not a user interface).
    #[must_use]
    pub fn parse(spec: &str) -> Self {
        let mut faults = Vec::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            let Some((kind, shard)) = entry.split_once(':') else {
                continue;
            };
            let kind = match kind {
                "crash" => FaultKind::Crash,
                "hang" => FaultKind::Hang,
                "corrupt" => FaultKind::Corrupt,
                _ => continue,
            };
            let (shard, every_attempt) = match shard.strip_suffix('+') {
                Some(s) => (s, true),
                None => (shard, false),
            };
            let shard = match shard {
                "*" => Some(ShardSel::Any),
                s => s.parse().ok().map(ShardSel::Id),
            };
            if let Some(shard) = shard {
                faults.push(Fault {
                    kind,
                    shard,
                    every_attempt,
                });
            }
        }
        Self { faults }
    }

    /// The fault (if any) to inject for delivery `attempt` of `shard`.
    #[must_use]
    pub fn fault_for(&self, shard: u32, attempt: u32) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|f| f.shard.matches(shard) && (f.every_attempt || attempt == 0))
            .map(|f| f.kind)
    }

    /// Whether the plan contains any faults at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_grammar() {
        let plan = FaultPlan::parse("crash:1, hang:4,corrupt:7,crash:0+");
        assert_eq!(plan.fault_for(1, 0), Some(FaultKind::Crash));
        assert_eq!(plan.fault_for(4, 0), Some(FaultKind::Hang));
        assert_eq!(plan.fault_for(7, 0), Some(FaultKind::Corrupt));
        assert_eq!(plan.fault_for(2, 0), None);

        // One-shot faults clear on retry; persistent ones don't.
        assert_eq!(plan.fault_for(1, 1), None);
        assert_eq!(plan.fault_for(0, 3), Some(FaultKind::Crash));
    }

    #[test]
    fn wildcard_matches_any_shard() {
        let plan = FaultPlan::parse("hang:*");
        assert_eq!(plan.fault_for(0, 0), Some(FaultKind::Hang));
        assert_eq!(plan.fault_for(999, 0), Some(FaultKind::Hang));
        assert_eq!(plan.fault_for(999, 1), None, "first delivery only");
        let persistent = FaultPlan::parse("crash:*+");
        assert_eq!(persistent.fault_for(3, 7), Some(FaultKind::Crash));
    }

    #[test]
    fn garbage_is_ignored() {
        assert!(FaultPlan::parse("").is_empty());
        assert!(FaultPlan::parse("explode:9,crash,corrupt:x,:3").is_empty());
        assert_eq!(
            FaultPlan::parse("nope:1,hang:2").fault_for(2, 0),
            Some(FaultKind::Hang)
        );
    }
}
