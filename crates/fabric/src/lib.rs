//! Fault-tolerant multi-process sweep fabric.
//!
//! The paper's figures are embarrassingly-parallel Monte Carlo sweeps,
//! and every run's values are a pure function of its manifest inputs —
//! so sharding a sweep across worker *processes* is sound by
//! construction: a re-executed shard is bitwise-identical, which makes
//! retry idempotent and lets a supervisor treat workers as disposable.
//!
//! This crate is the generic half of that story; it never interprets
//! the work itself. A [`ShardSpec`](protocol::ShardSpec) carries an
//! opaque JSON job, workers echo back bit-exact value vectors
//! ([`protocol::ShardResult`], f64s shipped as raw bit patterns with an
//! FNV checksum), the [`scheduler::SweepScheduler`] assigns shards,
//! enforces wall-clock deadlines, retries failures with bounded
//! exponential backoff, quarantines repeat offenders, and degrades to
//! in-process execution when no workers survive — and the
//! [`merge::ShardMerger`] folds results by manifest position so arrival
//! order, duplicates, and worker identity cannot leak into the output
//! bytes. The scheduler owns its fleet for its whole lifetime: a
//! *queue* of sweeps multiplexes onto one set of workers, keeping
//! remote deployment caches warm across figures, while
//! [`supervisor::run_sweep`] remains the one-shot spawn-run-teardown
//! wrapper. The binding to actual figure sweeps (job encoding/
//! execution) lives in `pbbf-experiments::sweep`; the `pbbf` binary
//! wires the two together.
//!
//! The [`tcp`] module carries the same line protocol over sockets so
//! remote hosts join the fleet (`pbbf worker --listen` / `pbbf sweep
//! --hosts`), adding heartbeat-based host liveness, bounded-backoff
//! reconnection, and quarantine of unreachable hosts on top of the
//! per-shard machinery. The wire format is specified in
//! `docs/PROTOCOL.md`; `docs/OPERATIONS.md` is the ops guide.
//!
//! [`fault::FaultPlan`] implements the `PBBF_FAULT` injection hooks the
//! CI fault-injection job drives; only worker processes honor them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod merge;
pub mod protocol;
pub mod scheduler;
pub mod supervisor;
pub mod tcp;
pub mod worker;

pub use merge::ShardMerger;
pub use protocol::{CacheTelemetry, ShardResult, ShardSpec, WorkerReply};
pub use scheduler::SweepScheduler;
pub use supervisor::{
    run_sweep, ProcessWorkerFactory, ShardInput, SweepOptions, SweepOutcome, SweepStats,
    WorkerEvent, WorkerFactory, WorkerLink,
};
pub use tcp::{serve_listener, HybridWorkerFactory, ServeOptions, TcpOptions, TcpWorkerFactory};
pub use worker::{worker_loop, worker_loop_with};
