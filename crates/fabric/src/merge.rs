//! Deterministic re-merge: fold shard results by manifest position.
//!
//! The merger is the reason the fabric's output cannot depend on
//! scheduling: every accepted result lands in the slot its manifest id
//! names, duplicates (a retried shard whose first reply arrived late)
//! are dropped on the floor, and the final fold reads slots in manifest
//! order. Permutation- and duplicate-invariance are properties of this
//! data structure, not of supervisor discipline — and are property-
//! tested as such in `tests/merge_props.rs`.

/// Accumulates per-shard value vectors by manifest position.
#[derive(Debug)]
pub struct ShardMerger {
    slots: Vec<Option<Vec<Option<f64>>>>,
    missing: usize,
}

impl ShardMerger {
    /// A merger expecting `shards` result vectors.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self {
            slots: vec![None; shards],
            missing: shards,
        }
    }

    /// Accepts shard `id`'s values. Returns `false` — and changes
    /// nothing — when the slot is already filled (a duplicate delivery)
    /// or `id` is out of range; the values of a re-executed shard are
    /// bitwise identical by construction, so first-wins is not a race,
    /// it's a no-op.
    pub fn offer(&mut self, id: usize, values: Vec<Option<f64>>) -> bool {
        match self.slots.get_mut(id) {
            Some(slot @ None) => {
                *slot = Some(values);
                self.missing -= 1;
                true
            }
            _ => false,
        }
    }

    /// Whether shard `id` has been folded already.
    #[must_use]
    pub fn has(&self, id: usize) -> bool {
        self.slots.get(id).is_some_and(Option::is_some)
    }

    /// Number of shards still missing.
    #[must_use]
    pub fn missing(&self) -> usize {
        self.missing
    }

    /// Whether every shard has arrived.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.missing == 0
    }

    /// The folded result vectors, in manifest order.
    ///
    /// # Panics
    ///
    /// Panics if any shard is still missing.
    #[must_use]
    pub fn into_values(self) -> Vec<Vec<Option<f64>>> {
        assert!(self.missing == 0, "merge incomplete: missing shards");
        self.slots
            .into_iter()
            .map(|s| s.expect("complete merge has every slot"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_and_completes() {
        let mut m = ShardMerger::new(3);
        assert!(!m.is_complete());
        assert!(m.offer(1, vec![Some(1.0)]));
        assert!(m.offer(0, vec![None]));
        assert_eq!(m.missing(), 1);
        assert!(m.offer(2, vec![Some(2.0), Some(3.0)]));
        assert!(m.is_complete());
        assert_eq!(
            m.into_values(),
            vec![vec![None], vec![Some(1.0)], vec![Some(2.0), Some(3.0)]]
        );
    }

    #[test]
    fn duplicates_and_strays_are_rejected() {
        let mut m = ShardMerger::new(2);
        assert!(m.offer(0, vec![Some(1.0)]));
        assert!(!m.offer(0, vec![Some(99.0)]), "duplicate folds once");
        assert!(!m.offer(5, vec![Some(1.0)]), "out of range");
        assert!(m.has(0));
        assert!(!m.has(1));
        assert!(m.offer(1, vec![]));
        assert_eq!(m.into_values()[0], vec![Some(1.0)], "first delivery wins");
    }

    #[test]
    #[should_panic(expected = "merge incomplete")]
    fn incomplete_merge_refuses_to_fold() {
        let _ = ShardMerger::new(2).into_values();
    }
}
