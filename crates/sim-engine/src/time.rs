//! Integer-nanosecond simulation time.
//!
//! Simulation time is a `u64` count of nanoseconds since the start of the
//! run. Using integers (rather than `f64` seconds) makes event ordering
//! exact: two events scheduled at "the same" instant compare equal instead
//! of differing by rounding noise, and the stable FIFO tie-break of
//! [`EventQueue`](crate::EventQueue) then applies. At nanosecond resolution
//! a `u64` covers ~584 years of simulated time — far beyond the paper's
//! 500-second runs.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulation time (nanoseconds since run start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

const NANOS_PER_SEC: f64 = 1e9;

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The latest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        Self(nanos)
    }

    /// Creates an instant from (non-negative, finite) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or overflows the range.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        Self(secs_to_nanos(secs))
    }

    /// Raw nanoseconds since run start.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since run start (lossy above 2^53 ns, i.e. ~104 days).
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    #[must_use]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "duration_since: {earlier} > {self}");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    #[must_use]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        Self(nanos)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        Self(millis * 1_000_000)
    }

    /// Creates a duration from (non-negative, finite) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or overflows the range.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        Self(secs_to_nanos(secs))
    }

    /// Raw nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC
    }

    /// Whether this is the zero duration.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the duration by a non-negative factor, rounding to nearest.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid duration scale factor: {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "invalid time in seconds: {secs}"
    );
    let nanos = secs * NANOS_PER_SEC;
    assert!(
        nanos <= u64::MAX as f64,
        "time overflows u64 nanoseconds: {secs} s"
    );
    nanos.round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulation time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("simulation time underflow"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.as_secs())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t.as_secs(), 1.5);
        let d = SimDuration::from_millis(26);
        assert_eq!(d.as_nanos(), 26_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10.0);
        let d = SimDuration::from_secs(2.5);
        assert_eq!((t + d).as_secs(), 12.5);
        assert_eq!((t - d).as_secs(), 7.5);
        assert_eq!((t + d) - t, d);
        assert_eq!((d + d).as_secs(), 5.0);
        assert_eq!((d - d), SimDuration::ZERO);
        assert_eq!((d * 4).as_secs(), 10.0);
        assert_eq!((d / 5).as_secs(), 0.5);
    }

    #[test]
    fn ordering_is_exact() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert_eq!(SimTime::from_secs(1.0), SimTime::from_nanos(1_000_000_000));
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_secs(3.0);
        assert_eq!(t.as_secs(), 3.0);
        let mut d = SimDuration::from_secs(5.0);
        d -= SimDuration::from_secs(1.0);
        assert_eq!(d.as_secs(), 4.0);
        d += SimDuration::from_secs(0.5);
        assert_eq!(d.as_secs(), 4.5);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(10);
        assert_eq!(d.mul_f64(0.25).as_nanos(), 3); // 2.5 rounds to 3 (round half away)
        assert_eq!(d.mul_f64(1.5).as_nanos(), 15);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn saturating_add_caps() {
        let t = SimTime::MAX;
        assert_eq!(t.saturating_add(SimDuration::from_secs(1.0)), SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "invalid time")]
    fn negative_seconds_panic() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn time_overflow_panics() {
        let _ = SimTime::MAX + SimDuration::from_nanos(1);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_underflow_panics() {
        let _ = SimTime::ZERO - SimDuration::from_nanos(1);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs(1.25).to_string(), "1.250000000s");
        assert_eq!(SimDuration::from_millis(10).to_string(), "0.010000000s");
    }

    #[test]
    fn is_zero() {
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_nanos(1).is_zero());
    }
}
