//! Seeded, splittable simulation randomness.
//!
//! Reproducibility demands that one `u64` seed fully determines a run, and
//! that adding a random draw in one protocol component does not perturb the
//! streams seen by others. [`SimRng`] therefore implements xoshiro256**
//! (public-domain, by Blackman & Vigna) directly — independent of any
//! external crate's generator choices — and derives *substreams* by mixing
//! a stream identifier into the seed with splitmix64. Every simulated node
//! gets `rng.substream(node_id)`.

use rand::RngCore;

/// A deterministic xoshiro256** generator with splitmix64 seeding.
///
/// Implements [`rand::RngCore`], so all `rand` distribution adapters work,
/// and adds the handful of draws the simulators actually use
/// ([`chance`](SimRng::chance), [`uniform`](SimRng::uniform),
/// [`below`](SimRng::below), [`exponential`](SimRng::exponential)).
///
/// # Examples
///
/// ```
/// use pbbf_des::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Substreams are independent of draw order on the parent.
/// let c = SimRng::new(7).substream(3);
/// let mut parent = SimRng::new(7);
/// let _ = parent.next_u64();
/// let d = parent.substream(3);
/// assert_eq!(c.state_fingerprint(), d.state_fingerprint());
/// use rand::RngCore;
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
    seed: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a seed via splitmix64 expansion.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s, seed }
    }

    /// Derives an independent substream for `stream_id`.
    ///
    /// The substream depends only on the *original seed* and `stream_id`,
    /// not on how many values have been drawn from `self`, so components
    /// can be seeded in any order without perturbing each other.
    #[must_use]
    pub fn substream(&self, stream_id: u64) -> SimRng {
        // Mix the id into the seed through two splitmix64 rounds so that
        // consecutive ids land far apart in seed space.
        let mut sm = self.seed ^ 0xA076_1D64_78BD_642F;
        let a = splitmix64(&mut sm);
        let mut sm2 = a ^ stream_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::new(splitmix64(&mut sm2))
    }

    /// A fingerprint of the internal state, for determinism assertions in
    /// tests.
    #[must_use]
    pub fn state_fingerprint(&self) -> u64 {
        self.s[0]
            ^ self.s[1].rotate_left(16)
            ^ self.s[2].rotate_left(32)
            ^ self.s[3].rotate_left(48)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// `p <= 0` always yields `false`; `p >= 1` always yields `true` — the
    /// PBBF edge cases `p = 0`/`p = 1` (pure PSM / always-forward) must be
    /// exact, not "with probability 1 − 2⁻⁵³".
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.uniform01() < p
    }

    /// Uniform draw in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn uniform01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        lo + self.uniform01() * (hi - lo)
    }

    /// Uniform draw in `0..n` (Lemire's unbiased method).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Rejection-free path for powers of two.
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Exponential draw with the given `rate` (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate.is_finite() && rate > 0.0, "bad rate {rate}");
        // ln(1 - U) with U in [0, 1) never takes ln(0).
        -(1.0 - self.uniform01()).ln() / rate
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Chooses a uniformly random element, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len() as u64) as usize])
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** step.
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_are_order_independent() {
        let parent = SimRng::new(99);
        let s1 = parent.substream(5);
        let mut drained = SimRng::new(99);
        for _ in 0..1000 {
            let _ = drained.next_u64();
        }
        let s2 = drained.substream(5);
        assert_eq!(s1, s2);
    }

    #[test]
    fn substreams_differ_from_each_other_and_parent() {
        let parent = SimRng::new(7);
        let mut streams: Vec<u64> = (0..50)
            .map(|i| parent.substream(i).state_fingerprint())
            .collect();
        streams.push(parent.state_fingerprint());
        streams.sort_unstable();
        streams.dedup();
        assert_eq!(streams.len(), 51, "fingerprint collision across substreams");
    }

    #[test]
    fn chance_edge_cases_exact() {
        let mut rng = SimRng::new(0);
        for _ in 0..1000 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
            assert!(!rng.chance(-0.5));
            assert!(rng.chance(1.5));
        }
    }

    #[test]
    fn chance_frequency_close_to_p() {
        let mut rng = SimRng::new(42);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.chance(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq = {freq}");
    }

    #[test]
    fn uniform01_in_range_and_well_spread() {
        let mut rng = SimRng::new(5);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let u = rng.uniform01();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::new(9);
        for _ in 0..10_000 {
            let x = rng.uniform(-3.0, 7.0);
            assert!((-3.0..7.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_over_small_range() {
        let mut rng = SimRng::new(11);
        let mut counts = [0u32; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.below(5) as usize] += 1;
        }
        for c in counts {
            let freq = c as f64 / n as f64;
            assert!((freq - 0.2).abs() < 0.01, "freq = {freq}");
        }
    }

    #[test]
    fn below_power_of_two() {
        let mut rng = SimRng::new(13);
        for _ in 0..10_000 {
            assert!(rng.below(8) < 8);
        }
    }

    #[test]
    fn exponential_has_correct_mean() {
        let mut rng = SimRng::new(17);
        let rate = 0.01; // the paper's update rate
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 2.0, "mean = {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(19);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn choose_from_slices() {
        let mut rng = SimRng::new(23);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let one = [42];
        assert_eq!(rng.choose(&one), Some(&42));
        let many = [1, 2, 3];
        assert!(many.contains(rng.choose(&many).unwrap()));
    }

    #[test]
    fn fill_bytes_deterministic() {
        let mut a = SimRng::new(31);
        let mut b = SimRng::new(31);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
    }
}
