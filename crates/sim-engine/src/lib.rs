//! Deterministic discrete-event simulation engine.
//!
//! This crate is the execution substrate for the PBBF reproduction's two
//! simulators (the idealized Section-4 simulator and the ns-2-style
//! Section-5 simulator). It deliberately contains no networking concepts —
//! just the three things a reproducible discrete-event simulation needs:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond simulation time, so
//!   event ordering never depends on floating-point rounding.
//! * [`EventQueue`] — a priority queue of timestamped events with *stable*
//!   FIFO ordering among simultaneous events and O(log n) cancellation via
//!   [`EventHandle`]s.
//! * [`SimRng`] — a self-contained xoshiro256** PRNG with splitmix64
//!   seeding and cheap independent substreams, so every node of a simulated
//!   network gets its own reproducible random stream from one `u64` seed.
//!
//! # Examples
//!
//! Drive a queue to completion:
//!
//! ```
//! use pbbf_des::{EventQueue, SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_secs(1.0), Ev::Pong);
//! q.schedule(SimTime::ZERO, Ev::Ping);
//! let (t1, e1) = q.pop().unwrap();
//! assert_eq!((t1, e1), (SimTime::ZERO, Ev::Ping));
//! let (t2, e2) = q.pop().unwrap();
//! assert_eq!(t2.as_secs(), 1.0);
//! assert_eq!(e2, Ev::Pong);
//! assert!(q.pop().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod queue;
mod rng;
mod time;

pub use queue::{EventHandle, EventQueue};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
