//! Stable, cancellable event queue.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::SimTime;

/// Identifies a scheduled event so it can be cancelled.
///
/// Handles are unique for the lifetime of the queue (a `u64` sequence
/// number); cancelling an already-fired or already-cancelled event is a
/// harmless no-op that returns `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

/// Min-heap of timestamped events with stable FIFO tie-breaking.
///
/// Two properties matter for reproducible network simulation:
///
/// 1. **Stability** — events scheduled for the same instant fire in the
///    order they were scheduled. A plain `BinaryHeap` does not guarantee
///    this, so entries carry a monotonically increasing sequence number.
/// 2. **Cancellation** — MAC protocols constantly set and cancel timers
///    (backoff suspension, ATIM timeouts). Cancellation is implemented as a
///    tombstone set consulted lazily on pop, keeping scheduling O(log n).
///
/// # Examples
///
/// ```
/// use pbbf_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let h = q.schedule(SimTime::from_secs(2.0), "timeout");
/// q.schedule(SimTime::from_secs(1.0), "beacon");
/// assert!(q.cancel(h));
/// let (_, ev) = q.pop().unwrap();
/// assert_eq!(ev, "beacon");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry_<E>>,
    next_seq: u64,
    /// Sequence numbers of scheduled-but-not-yet-fired-or-cancelled events.
    /// Heap entries whose seq is absent here were cancelled and are skipped
    /// lazily on pop/peek.
    live: HashSet<u64>,
    now: SimTime,
}

#[derive(Debug)]
struct Entry_<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry_<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry_<E> {}

impl<E> PartialOrd for Entry_<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry_<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need earliest-first, and
        // among equals lowest sequence number first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            live: HashSet::new(),
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Schedules `event` at absolute time `at` and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the current clock — scheduling into the past
    /// would silently corrupt causality.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry_ {
            time: at,
            seq,
            event,
        });
        self.live.insert(seq);
        EventHandle(seq)
    }

    /// Cancels a scheduled event. Returns `true` if the event was still
    /// pending, `false` if it had already fired or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.live.remove(&handle.0)
    }

    /// Removes and returns the earliest live event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if !self.live.remove(&entry.seq) {
                continue; // was cancelled
            }
            debug_assert!(entry.time >= self.now, "heap returned past event");
            self.now = entry.time;
            return Some((entry.time, entry.event));
        }
        None
    }

    /// The timestamp of the next live event without removing it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Lazily purge cancelled entries from the top of the heap so the
        // answer reflects a live event.
        while let Some(entry) = self.heap.peek() {
            if self.live.contains(&entry.seq) {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Drops all pending events. The clock is preserved so causality checks
    /// still hold for subsequent scheduling.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.live.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), 3);
        q.schedule(SimTime::from_secs(1.0), 1);
        q.schedule(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(5.0));
        assert_eq!(q.now(), t);
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        assert!(q.cancel(h1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_twice_is_false() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_secs(1.0), ());
        assert!(q.cancel(h));
        assert!(!q.cancel(h));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_secs(1.0), ());
        q.pop().unwrap();
        assert!(!q.cancel(h));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_handle_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventHandle(99)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2.0)));
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn schedule_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), 1);
        q.pop().unwrap();
        // now == 1.0 s; scheduling at exactly now is legal ("immediately").
        q.schedule(q.now(), 2);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn schedule_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2.0), ());
        q.pop().unwrap();
        q.schedule(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), ());
        q.schedule(SimTime::from_secs(2.0), ());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), 1);
        let (t, v) = q.pop().unwrap();
        assert_eq!(v, 1);
        q.schedule(t + SimDuration::from_secs(1.0), 2);
        q.schedule(t + SimDuration::from_secs(0.5), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_secs(1.0), ());
        q.schedule(SimTime::from_secs(2.0), ());
        assert_eq!(q.len(), 2);
        q.cancel(h1);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
    }
}
