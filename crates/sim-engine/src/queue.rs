//! Stable, cancellable event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// Identifies a scheduled event so it can be cancelled.
///
/// Carries a slot index and its generation stamp; handles stay valid (as
/// harmless no-ops) after the event fires or is cancelled — a stale handle
/// never aliases a newer event because slot reuse bumps the generation,
/// and the 64-bit stamp cannot plausibly wrap within a queue's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle {
    slot: u32,
    generation: u64,
}

impl EventHandle {
    fn new(slot: u32, generation: u64) -> Self {
        Self { slot, generation }
    }

    fn slot(self) -> usize {
        self.slot as usize
    }

    fn generation(self) -> u64 {
        self.generation
    }
}

/// Liveness bookkeeping for one scheduled event.
#[derive(Debug, Clone, Copy)]
struct Slot {
    generation: u64,
    live: bool,
}

/// Min-heap of timestamped events with stable FIFO tie-breaking.
///
/// Two properties matter for reproducible network simulation:
///
/// 1. **Stability** — events scheduled for the same instant fire in the
///    order they were scheduled. A plain `BinaryHeap` does not guarantee
///    this, so entries carry a monotonically increasing sequence number.
/// 2. **Cancellation** — MAC protocols constantly set and cancel timers
///    (backoff suspension, ATIM timeouts). Cancellation marks a
///    generation-stamped slot dead and is resolved lazily on pop/peek.
///
/// Liveness lives in a flat slot vector recycled through a free list:
/// schedule, cancel, and pop are array indexing — no hashing, and no
/// allocation beyond the heap's and slot vector's amortized growth. (The
/// seed implementation kept a `HashSet<u64>` of live sequence numbers,
/// which put a hash probe on every queue operation of the simulator's
/// innermost loop.)
///
/// # Examples
///
/// ```
/// use pbbf_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let h = q.schedule(SimTime::from_secs(2.0), "timeout");
/// q.schedule(SimTime::from_secs(1.0), "beacon");
/// assert!(q.cancel(h));
/// let (_, ev) = q.pop().unwrap();
/// assert_eq!(ev, "beacon");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry_<E>>,
    next_seq: u64,
    /// One entry per allocated slot. A slot with an outstanding heap entry
    /// is never on the free list, so at most one heap entry references any
    /// (slot, generation) pair.
    slots: Vec<Slot>,
    free: Vec<u32>,
    live_count: usize,
    now: SimTime,
}

#[derive(Debug)]
struct Entry_<E> {
    time: SimTime,
    seq: u64,
    handle: EventHandle,
    event: E,
}

impl<E> PartialEq for Entry_<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry_<E> {}

impl<E> PartialOrd for Entry_<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry_<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need earliest-first, and
        // among equals lowest sequence number first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            slots: Vec::new(),
            free: Vec::new(),
            live_count: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Whether no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Schedules `event` at absolute time `at` and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the current clock — scheduling into the past
    /// would silently corrupt causality.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                let slot = u32::try_from(self.slots.len()).expect("slot index overflow");
                self.slots.push(Slot {
                    generation: 0,
                    live: false,
                });
                slot
            }
        };
        self.slots[slot as usize].live = true;
        self.live_count += 1;
        let handle = EventHandle::new(slot, self.slots[slot as usize].generation);
        self.heap.push(Entry_ {
            time: at,
            seq,
            handle,
            event,
        });
        handle
    }

    /// Whether `handle`'s event is still pending.
    fn is_live(&self, handle: EventHandle) -> bool {
        self.slots
            .get(handle.slot())
            .is_some_and(|s| s.live && s.generation == handle.generation())
    }

    /// Retires a slot whose heap entry has been popped: bump the
    /// generation (invalidating stale handles) and recycle the index.
    fn retire(&mut self, handle: EventHandle) {
        let slot = &mut self.slots[handle.slot()];
        slot.generation = slot.generation.wrapping_add(1);
        slot.live = false;
        self.free.push(handle.slot() as u32);
    }

    /// Cancels a scheduled event. Returns `true` if the event was still
    /// pending, `false` if it had already fired or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if !self.is_live(handle) {
            return false;
        }
        // The heap entry remains and is skipped lazily on pop; the slot is
        // recycled at that point, not here, so it cannot be reused while
        // its entry is still queued.
        self.slots[handle.slot()].live = false;
        self.live_count -= 1;
        true
    }

    /// Removes and returns the earliest live event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            let was_live = self.is_live(entry.handle);
            self.retire(entry.handle);
            if !was_live {
                continue; // was cancelled
            }
            self.live_count -= 1;
            debug_assert!(entry.time >= self.now, "heap returned past event");
            self.now = entry.time;
            return Some((entry.time, entry.event));
        }
        None
    }

    /// The timestamp of the next live event without removing it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Lazily purge cancelled entries from the top of the heap so the
        // answer reflects a live event.
        while let Some(entry) = self.heap.peek() {
            if self.is_live(entry.handle) {
                return Some(entry.time);
            }
            let entry = self.heap.pop().expect("peeked entry exists");
            self.retire(entry.handle);
        }
        None
    }

    /// Drops all pending events. The clock is preserved so causality checks
    /// still hold for subsequent scheduling.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.free.clear();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            slot.generation = slot.generation.wrapping_add(1);
            slot.live = false;
            self.free.push(i as u32);
        }
        self.live_count = 0;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), 3);
        q.schedule(SimTime::from_secs(1.0), 1);
        q.schedule(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(5.0));
        assert_eq!(q.now(), t);
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        assert!(q.cancel(h1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_twice_is_false() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_secs(1.0), ());
        assert!(q.cancel(h));
        assert!(!q.cancel(h));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_secs(1.0), ());
        q.pop().unwrap();
        assert!(!q.cancel(h));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_handle_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventHandle::new(99, 0)));
    }

    #[test]
    fn stale_handle_does_not_alias_recycled_slot() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_secs(1.0), 1);
        q.pop().unwrap();
        // Slot 0 is recycled for the next event with a bumped generation.
        let h2 = q.schedule(SimTime::from_secs(2.0), 2);
        assert_eq!(h1.slot(), h2.slot());
        assert_ne!(h1.generation(), h2.generation());
        assert!(!q.cancel(h1), "stale handle must not cancel the new event");
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn slots_are_recycled_not_grown() {
        let mut q = EventQueue::new();
        for round in 0..50 {
            for i in 0..8 {
                q.schedule(
                    SimTime::from_secs(f64::from(round) + f64::from(i) * 0.01),
                    i,
                );
            }
            while q.pop().is_some() {}
        }
        assert!(q.slots.len() <= 8, "slot vector grew to {}", q.slots.len());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2.0)));
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn schedule_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), 1);
        q.pop().unwrap();
        // now == 1.0 s; scheduling at exactly now is legal ("immediately").
        q.schedule(q.now(), 2);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn schedule_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2.0), ());
        q.pop().unwrap();
        q.schedule(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_secs(1.0), ());
        q.schedule(SimTime::from_secs(2.0), ());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert!(!q.cancel(h), "cleared events are gone");
        // The queue remains fully usable after clear.
        q.schedule(SimTime::from_secs(3.0), ());
        assert_eq!(q.len(), 1);
        assert!(q.pop().is_some());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), 1);
        let (t, v) = q.pop().unwrap();
        assert_eq!(v, 1);
        q.schedule(t + SimDuration::from_secs(1.0), 2);
        q.schedule(t + SimDuration::from_secs(0.5), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_secs(1.0), ());
        q.schedule(SimTime::from_secs(2.0), ());
        assert_eq!(q.len(), 2);
        q.cancel(h1);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
    }
}
