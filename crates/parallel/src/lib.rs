//! Deterministic fork-join parallelism over std scoped threads.
//!
//! The experiment drivers average every figure point over independent
//! simulation runs; those runs are embarrassingly parallel because each one
//! derives its own RNG substream from `(seed, run_index)` and never shares
//! state. This crate provides the fan-out: a self-scheduling [`par_map`]
//! whose output is **index-ordered**, so results are bitwise identical to
//! the sequential loop regardless of thread count or scheduling. (rayon
//! would serve, but the build container has no crates.io access; std scoped
//! threads need nothing.)
//!
//! Thread count comes from `PBBF_THREADS` when set (a value of `1` forces
//! the sequential path — used by the determinism tests), otherwise from
//! [`std::thread::available_parallelism`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Prefixes a panic payload with job context (`"{context}: {message}"`)
/// when the payload is a string — the `panic!`/`assert!` case — so a
/// re-raised panic names the job that died. String payloads keep their
/// original text as a suffix, which preserves substring-based
/// `should_panic` matching; non-string payloads (`panic_any`) pass
/// through untouched, since rewriting them would break callers that
/// downcast to the original type.
fn annotate_panic(
    payload: Box<dyn std::any::Any + Send>,
    context: &str,
) -> Box<dyn std::any::Any + Send> {
    if let Some(msg) = payload.downcast_ref::<&'static str>() {
        return Box::new(format!("{context}: {msg}"));
    }
    match payload.downcast::<String>() {
        Ok(msg) => Box::new(format!("{context}: {msg}")),
        Err(other) => other,
    }
}

/// The worker-thread budget: `PBBF_THREADS` if set and valid, else the
/// machine's available parallelism.
#[must_use]
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var("PBBF_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` on up to [`max_threads`] workers, returning
/// results in input order.
///
/// Work is distributed dynamically (an atomic cursor), so uneven item costs
/// do not idle workers; output order — and therefore every downstream
/// floating-point reduction — matches the sequential loop exactly.
///
/// # Panics
///
/// Re-raises the first panic raised inside `f`, with the failing job's
/// index prefixed onto string payloads (`"parallel job {i} of {n}:
/// ..."`). The original message survives as a suffix, so
/// `should_panic`-style substring matching keeps working, and the
/// sequential path annotates identically — payloads are
/// thread-count-invariant like everything else here.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = max_threads().min(n);
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item))) {
                    Ok(result) => result,
                    Err(payload) => std::panic::resume_unwind(annotate_panic(
                        payload,
                        &format!("parallel job {i} of {n}"),
                    )),
                }
            })
            .collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    // Workers catch panics and park the first payload here; re-raised
    // below so callers see the original message, not the scope's generic
    // "a scoped thread panicked" replacement payload.
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("each slot is taken exactly once");
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item))) {
                    Ok(result) => {
                        *results[i].lock().expect("result slot poisoned") = Some(result);
                    }
                    Err(payload) => {
                        let payload = annotate_panic(payload, &format!("parallel job {i} of {n}"));
                        let mut first = panic_payload.lock().expect("panic slot poisoned");
                        first.get_or_insert(payload);
                        break;
                    }
                }
            });
        }
    });

    if let Some(payload) = panic_payload.into_inner().expect("panic slot poisoned") {
        std::panic::resume_unwind(payload);
    }

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every index was processed")
        })
        .collect()
}

/// Runs `f(0), f(1), ..., f(n - 1)` in parallel, returning results in
/// index order. Convenience wrapper over [`par_map`] for the
/// "independent runs per data point" loops.
pub fn par_run<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map((0..n).collect(), f)
}

/// Point-level fan-out: runs `f(group, run)` for every pair in
/// `0..groups × 0..runs` as **one flat job list** (so all groups' runs
/// schedule together and saturate many-core boxes even when a single
/// group has few runs), then regroups the results: `out[g][r] = f(g, r)`.
///
/// Grouping preserves run order within each group, so a per-group fold
/// over `out[g]` is bitwise identical to the sequential
/// group-by-group/run-by-run loop regardless of thread count. `runs == 0`
/// yields `groups` empty vectors.
pub fn par_run_grouped<R, F>(groups: usize, runs: usize, f: F) -> Vec<Vec<R>>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let jobs: Vec<(usize, usize)> = (0..groups)
        .flat_map(|g| (0..runs).map(move |r| (g, r)))
        .collect();
    let mut flat = par_map(jobs, |(g, r)| f(g, r)).into_iter();
    (0..groups)
        .map(|_| flat.by_ref().take(runs).collect())
        .collect()
}

/// Chunked point-level fan-out: like [`par_run_grouped`], but the unit
/// of scheduling is a **run chunk** — `f(group, r0..r1)` computes runs
/// `r0..r1` of `group` and returns their results in run order. The
/// chunks of all groups form one flat job list, and the returned
/// nesting is identical to [`par_run_grouped`]: `out[g][r]` = run `r`
/// of group `g`.
///
/// This is the fan-out shape of replica batching: a chunk job can
/// execute its runs through one lockstep batch (or any other shared
/// setup — a cached deployment resolution, a reused simulator) instead
/// of paying per-run overhead, while chunk boundaries stay deterministic
/// (a pure function of `runs` and `chunk`, never of scheduling).
/// `chunk == 1` degenerates to [`par_run_grouped`]'s job list.
///
/// # Panics
///
/// Panics if `chunk` is zero, or if `f` returns a vector whose length
/// is not the chunk's run count. Re-raises panics from `f` like
/// [`par_map`], additionally prefixing the failing chunk's coordinates
/// (`"group {g} runs {r0}..{r1}"`) onto string payloads.
pub fn par_run_grouped_chunked<R, F>(groups: usize, runs: usize, chunk: usize, f: F) -> Vec<Vec<R>>
where
    R: Send,
    F: Fn(usize, std::ops::Range<usize>) -> Vec<R> + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let jobs: Vec<(usize, std::ops::Range<usize>)> = (0..groups)
        .flat_map(|g| {
            (0..runs)
                .step_by(chunk)
                .map(move |r0| (g, r0..(r0 + chunk).min(runs)))
        })
        .collect();
    let chunks_per_group = jobs.len() / groups.max(1);
    let mut flat = par_map(jobs, |(g, rs)| {
        let want = rs.len();
        let context = format!("group {g} runs {}..{}", rs.start, rs.end);
        let out = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(g, rs))) {
            Ok(out) => out,
            Err(payload) => std::panic::resume_unwind(annotate_panic(payload, &context)),
        };
        assert_eq!(out.len(), want, "chunk job must return one result per run");
        out
    })
    .into_iter();
    (0..groups)
        .map(|_| flat.by_ref().take(chunks_per_group).flatten().collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = par_run(257, |i| i * i);
        assert_eq!(out, (0..257).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_run(1, |i| i + 1), vec![1]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still land in order.
        let out = par_run(64, |i| {
            let spins = if i % 7 == 0 { 200_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx, *i);
        }
    }

    #[test]
    fn grouped_runs_regroup_in_order() {
        let out = par_run_grouped(3, 4, |g, r| 10 * g + r);
        assert_eq!(
            out,
            vec![vec![0, 1, 2, 3], vec![10, 11, 12, 13], vec![20, 21, 22, 23]]
        );
        assert_eq!(par_run_grouped(2, 0, |_, r| r), vec![vec![], vec![]]);
        assert_eq!(par_run_grouped(0, 5, |g, _| g), Vec::<Vec<usize>>::new());
    }

    #[test]
    fn chunked_runs_match_grouped() {
        for chunk in [1, 3, 4, 7] {
            let out =
                par_run_grouped_chunked(3, 7, chunk, |g, rs| rs.map(|r| 10 * g + r).collect());
            assert_eq!(
                out,
                par_run_grouped(3, 7, |g, r| 10 * g + r),
                "chunk {chunk}"
            );
        }
        assert_eq!(
            par_run_grouped_chunked(2, 0, 4, |_, rs| rs.collect()),
            vec![Vec::<usize>::new(), Vec::new()]
        );
        assert_eq!(
            par_run_grouped_chunked(0, 5, 2, |g, _| vec![g]),
            Vec::<Vec<usize>>::new()
        );
    }

    #[test]
    #[should_panic(expected = "one result per run")]
    fn chunked_runs_enforce_chunk_lengths() {
        let _ = par_run_grouped_chunked(1, 4, 2, |_, _| vec![0u32]);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let _ = par_run(8, |i| {
            assert!(i != 5, "worker boom");
            i
        });
    }

    fn panic_message(caught: Box<dyn std::any::Any + Send>) -> String {
        match caught.downcast::<String>() {
            Ok(msg) => *msg,
            Err(other) => panic!("expected a String payload, got {other:?}"),
        }
    }

    #[test]
    fn panic_context_names_the_failing_job() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_run(8, |i| {
                assert!(i != 5, "worker boom");
                i
            })
        }))
        .unwrap_err();
        let msg = panic_message(caught);
        assert!(msg.contains("parallel job 5 of 8"), "{msg}");
        assert!(msg.contains("worker boom"), "{msg}");
    }

    #[test]
    fn sequential_path_annotates_identically() {
        // A single item forces the sequential path; the payload shape
        // must match what the threaded path produces.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(vec![0u32], |_| -> u32 { panic!("solo boom") })
        }))
        .unwrap_err();
        let msg = panic_message(caught);
        assert!(msg.contains("parallel job 0 of 1"), "{msg}");
        assert!(msg.contains("solo boom"), "{msg}");
    }

    #[test]
    fn chunked_panic_context_names_group_and_runs() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_run_grouped_chunked(2, 8, 4, |g, rs| {
                assert!(!(g == 1 && rs.start == 4), "chunk boom");
                rs.map(|r| 10 * g + r).collect()
            })
        }))
        .unwrap_err();
        let msg = panic_message(caught);
        assert!(msg.contains("group 1 runs 4..8"), "{msg}");
        assert!(msg.contains("chunk boom"), "{msg}");
    }

    #[test]
    fn non_string_payloads_pass_through_unchanged() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_run(4, |i| {
                if i == 2 {
                    std::panic::panic_any(42u32);
                }
                i
            })
        }))
        .unwrap_err();
        assert_eq!(caught.downcast_ref::<u32>(), Some(&42));
    }
}
