//! Cross-run cache of connected deployments.
//!
//! Drawing a connected random deployment is rejection sampling: every
//! [`NetSim`](crate::NetSim) run draws candidate deployments (an O(n + E)
//! spatial-hash edge build plus a connectivity check each) until one
//! connects. A Monte-Carlo sweep that compares several protocol modes on
//! the same scenarios repeats that work once per mode; this cache keys
//! the finished product — CSR topology plus the run's source-node draw —
//! by `(deployment seed, geometry)` so each scenario is constructed once
//! and shared.
//!
//! The cached topology lives behind an [`Arc`] that
//! [`NetSim::run_on`](crate::NetSim::run_on) threads straight into the
//! collision channel, so every `(mode, run)` job of a sweep executes on
//! the *same* adjacency allocation — sharing a scenario costs a
//! reference-count bump, not an O(V + E) copy per run.
//!
//! [`DeploymentCache::global`] is the process-wide registry: figures with
//! identical geometry and deployment-seed streams (the fig13–16 q sweeps,
//! the latency-tail and k-trade-off extensions) resolve to the same
//! entries instead of each sweep redrawing the same deployments.
//!
//! Determinism: the cached value is a pure function of the key (the draw
//! consumes only substreams of the deployment seed), so concurrent
//! lookups from a thread-pool fan-out return bitwise-identical
//! deployments regardless of which worker populates the entry first —
//! thread-count invariance is preserved, and a registry shared between
//! figures cannot change any figure's values.

use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use pbbf_topology::{NodeId, Topology};

use crate::NetConfig;

/// The geometry + seed identity of one deployment draw. Floats enter by
/// bit pattern: two configs draw identical deployments iff their keys
/// are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DeployKey {
    seed: u64,
    nodes: usize,
    range_bits: u64,
    delta_bits: u64,
    max_attempts: u32,
}

impl DeployKey {
    fn new(cfg: &NetConfig, seed: u64) -> Self {
        Self {
            seed,
            nodes: cfg.nodes,
            range_bits: cfg.range_m.to_bits(),
            delta_bits: cfg.delta.to_bits(),
            max_attempts: cfg.max_deploy_attempts,
        }
    }
}

/// One drawn scenario: the connected topology and the source node, as
/// [`NetSim::run`](crate::NetSim::run) would draw them from the same
/// seed.
///
/// The topology is held behind an [`Arc`]; cloning a `CachedDeployment`
/// (or running on one) shares the adjacency rather than copying it.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedDeployment {
    pub(crate) topology: Arc<Topology>,
    pub(crate) source: NodeId,
}

impl CachedDeployment {
    /// Builds a scenario from parts (owned or already-shared topology).
    /// Most callers want [`DeploymentCache::get_or_draw`] or
    /// [`NetSim::draw_deployment`](crate::NetSim::draw_deployment)
    /// instead; this constructor exists for benches and tests that
    /// compose scenarios by hand.
    #[must_use]
    pub fn new(topology: impl Into<Arc<Topology>>, source: NodeId) -> Self {
        Self {
            topology: topology.into(),
            source,
        }
    }

    /// The connected topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The shared handle to the connected topology.
    #[must_use]
    pub fn topology_arc(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// The drawn source node.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source
    }
}

/// A snapshot of a [`DeploymentCache`]'s counters and occupancy, from
/// [`DeploymentCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that drew a fresh deployment.
    pub misses: u64,
    /// Entries evicted to honor the capacity bound.
    pub evictions: u64,
    /// Distinct deployments currently stored.
    pub len: usize,
    /// The capacity bound (entries).
    pub capacity: usize,
}

/// One resident entry: the shared deployment plus its recency stamp.
#[derive(Debug)]
struct CacheEntry {
    value: Arc<CachedDeployment>,
    /// Tick of the last lookup that touched this entry — the LRU order.
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheMap {
    entries: HashMap<DeployKey, CacheEntry>,
    /// Monotonic lookup counter stamping `last_used`.
    tick: u64,
}

/// A `(seed, Δ)`-keyed store of connected deployments, shared across the
/// protocol modes (and runs) of a sweep.
///
/// The cache is **bounded**: when a fresh draw would push occupancy past
/// the capacity, the least-recently-used entries are evicted
/// ([`DeploymentCache::stats`] counts them). Eviction can never change a
/// value: a deployment is a pure function of its key, so a re-drawn
/// entry is bitwise identical to the evicted one, and in-flight [`Arc`]s
/// to an evicted deployment stay alive until their runs finish.
///
/// # Examples
///
/// ```
/// use pbbf_net_sim::{DeploymentCache, NetConfig, NetMode, NetSim};
/// use pbbf_core::PbbfParams;
///
/// let mut cfg = NetConfig::table2();
/// cfg.duration_secs = 50.0;
/// let cache = DeploymentCache::new();
/// // Same scenario, two protocol modes — one deployment draw.
/// let psm_mode = NetMode::SleepScheduled(PbbfParams::PSM);
/// let psm = NetSim::new(cfg, psm_mode).run_on(1, &cache.get_or_draw(&cfg, 7));
/// let on = NetSim::new(cfg, NetMode::AlwaysOn).run_on(1, &cache.get_or_draw(&cfg, 7));
/// assert_eq!(psm.source, on.source);
/// let stats = cache.stats();
/// assert_eq!((stats.misses, stats.hits, stats.evictions), (1, 1, 0));
/// ```
#[derive(Debug)]
pub struct DeploymentCache {
    map: Mutex<CacheMap>,
    capacity: NonZeroUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for DeploymentCache {
    fn default() -> Self {
        Self::new()
    }
}

impl DeploymentCache {
    /// The default capacity bound (entries). A connected Table-2
    /// deployment is a few tens of kilobytes and a full figure
    /// regeneration touches a few hundred keys, so the default holds a
    /// whole regeneration resident at roughly tens of megabytes while
    /// capping an unbounded-sweep service's footprint.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Creates an empty cache with [`DeploymentCache::DEFAULT_CAPACITY`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates an empty cache bounded to `capacity` entries (at least 1).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            map: Mutex::new(CacheMap::default()),
            capacity: NonZeroUsize::new(capacity).expect("capacity must be at least 1"),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Locks the entry map, recovering from poison.
    ///
    /// A panic inside a cache-holding section (a panicking metric
    /// closure in a fan-out job, a `should_panic` test sharing the
    /// process-wide registry) poisons the mutex; propagating that
    /// poison would permanently brick [`DeploymentCache::global`] for
    /// every later run in the process. Recovery is sound here because
    /// every entry is a pure function of its key: whatever state the
    /// interrupted writer left behind, dropping it and redrawing on
    /// demand reproduces bitwise-identical deployments. We clear the
    /// map rather than audit it — the cost is a few redraws, never a
    /// changed value.
    fn lock_map(&self) -> std::sync::MutexGuard<'_, CacheMap> {
        self.map.lock().unwrap_or_else(|poisoned| {
            self.map.clear_poison();
            let mut map = poisoned.into_inner();
            map.entries.clear();
            map
        })
    }

    /// The process-wide deployment registry.
    ///
    /// Sweeps and figures that key their deployments the same way —
    /// identical geometry (`nodes`, `range_m`, `delta`,
    /// `max_deploy_attempts`) and deployment-seed stream — share entries
    /// across the whole process instead of redrawing per sweep. Safe by
    /// construction: a cached value is a pure function of its key, so a
    /// registry hit returns exactly what a private cache (or a fresh
    /// draw) would have produced, bitwise.
    ///
    /// The registry is bounded to [`DeploymentCache::DEFAULT_CAPACITY`]
    /// entries with LRU eviction (a connected Table-2 deployment is a
    /// few tens of kilobytes; a full figure regeneration touches a few
    /// hundred keys, comfortably resident), so a long-running host
    /// sweeping unbounded key sets plateaus instead of growing for the
    /// life of the process; [`DeploymentCache::clear`] remains for
    /// manual pressure relief, and [`DeploymentCache::stats`] exposes
    /// hit/miss/eviction counts for capacity tuning.
    #[must_use]
    pub fn global() -> &'static DeploymentCache {
        static GLOBAL: OnceLock<DeploymentCache> = OnceLock::new();
        GLOBAL.get_or_init(DeploymentCache::new)
    }

    /// Drops every cached deployment (in-flight [`Arc`]s stay alive).
    /// Hit/miss/eviction counters are preserved — they count lookups and
    /// evictions, not occupancy; a `clear` is not an eviction.
    pub fn clear(&self) {
        self.lock_map().entries.clear();
    }

    /// Returns the deployment for `(cfg geometry, seed)`, drawing and
    /// inserting it on first use — evicting least-recently-used entries
    /// if the insert would exceed the capacity bound. The draw is
    /// bitwise identical to the one [`NetSim::run`](crate::NetSim::run)
    /// performs for `seed`.
    ///
    /// # Panics
    ///
    /// Panics if no connected deployment can be drawn within
    /// `cfg.max_deploy_attempts` (raise Δ or the attempt budget).
    #[must_use]
    pub fn get_or_draw(&self, cfg: &NetConfig, seed: u64) -> Arc<CachedDeployment> {
        let key = DeployKey::new(cfg, seed);
        {
            let mut map = self.lock_map();
            map.tick += 1;
            let tick = map.tick;
            if let Some(entry) = map.entries.get_mut(&key) {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&entry.value);
            }
        }
        // Draw outside the lock so distinct scenarios construct in
        // parallel. Two workers racing on the same key draw the same
        // deployment (it is a pure function of the key); the extra draw
        // is discarded below.
        let drawn = Arc::new(crate::NetSim::draw_deployment(cfg, seed));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.lock_map();
        map.tick += 1;
        let tick = map.tick;
        let value = Arc::clone(
            &map.entries
                .entry(key)
                .and_modify(|e| e.last_used = tick)
                .or_insert(CacheEntry {
                    value: drawn,
                    last_used: tick,
                })
                .value,
        );
        // Evict the stalest entries down to capacity. O(len) per
        // eviction scan, which only runs on inserts past the bound —
        // negligible next to the connected-deployment draw it follows.
        let mut evicted = 0u64;
        while map.entries.len() > self.capacity.get() {
            let stalest = map
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("over-capacity map is non-empty");
            map.entries.remove(&stalest);
            evicted += 1;
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        value
    }

    /// The capacity bound, in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity.get()
    }

    /// Number of lookups answered from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that drew a fresh deployment.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of entries evicted to honor the capacity bound.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// A point-in-time snapshot of counters and occupancy. Each field
    /// is read independently (relaxed atomics plus one lock for `len`),
    /// so a snapshot racing an in-flight `get_or_draw` may transiently
    /// show, say, `hits + misses` disagreeing with the lookups a caller
    /// has counted; quiesce the cache first when exact books matter.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits(),
            misses: self.misses(),
            evictions: self.evictions(),
            len: self.len(),
            capacity: self.capacity(),
        }
    }

    /// Number of distinct deployments stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock_map().entries.len()
    }

    /// Whether the cache holds no deployments.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetSim;

    #[test]
    fn cached_deployment_is_bitwise_identical_to_fresh() {
        let cfg = NetConfig::table2();
        let cache = DeploymentCache::new();
        for seed in [1u64, 2, 3] {
            let cached = cache.get_or_draw(&cfg, seed);
            let fresh = NetSim::draw_deployment(&cfg, seed);
            assert_eq!(*cached, fresh, "seed {seed}");
            // Second lookup hits and returns the same allocation.
            let again = cache.get_or_draw(&cfg, seed);
            assert!(Arc::ptr_eq(&cached, &again));
        }
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn lru_eviction_bounds_occupancy_and_prefers_stale_entries() {
        let cfg = NetConfig::table2();
        let cache = DeploymentCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        let a = cache.get_or_draw(&cfg, 1);
        let _b = cache.get_or_draw(&cfg, 2);
        // Touch seed 1 so seed 2 is the LRU victim of the next insert.
        let a_again = cache.get_or_draw(&cfg, 1);
        assert!(Arc::ptr_eq(&a, &a_again));
        let _c = cache.get_or_draw(&cfg, 3);
        let stats = cache.stats();
        assert_eq!(stats.len, 2, "capacity bound enforced");
        assert_eq!(stats.evictions, 1, "one eviction for the third insert");
        assert_eq!((stats.misses, stats.hits), (3, 1));
        // Seed 1 survived (recently used), seed 2 did not.
        let before = cache.misses();
        let _ = cache.get_or_draw(&cfg, 1);
        assert_eq!(cache.misses(), before, "seed 1 still resident");
        let _ = cache.get_or_draw(&cfg, 2);
        assert_eq!(cache.misses(), before + 1, "seed 2 was evicted");
    }

    #[test]
    fn eviction_never_changes_drawn_values() {
        // Thrash a tiny cache across many keys, then re-request each key
        // and compare against an uncached draw: every re-drawn entry
        // must be bitwise identical to what the evicted one was.
        let cfg = NetConfig::table2();
        let cache = DeploymentCache::with_capacity(2);
        let originals: Vec<_> = (0..6u64)
            .map(|seed| (seed, NetSim::draw_deployment(&cfg, seed)))
            .collect();
        for &(seed, _) in &originals {
            let _ = cache.get_or_draw(&cfg, seed);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 4);
        for (seed, fresh) in &originals {
            assert_eq!(
                *cache.get_or_draw(&cfg, *seed),
                *fresh,
                "seed {seed} after eviction"
            );
        }
        // An Arc held across the eviction of its entry stays usable.
        let held = cache.get_or_draw(&cfg, 0);
        for seed in 10..20u64 {
            let _ = cache.get_or_draw(&cfg, seed);
        }
        assert_eq!(*held, NetSim::draw_deployment(&cfg, 0));
    }

    #[test]
    fn key_distinguishes_geometry() {
        let cfg = NetConfig::table2();
        let mut denser = cfg;
        denser.delta = 16.0;
        let cache = DeploymentCache::new();
        let a = cache.get_or_draw(&cfg, 5);
        let b = cache.get_or_draw(&denser, 5);
        assert_ne!(a.topology, b.topology, "Δ must enter the key");
        assert_eq!(cache.len(), 2);
        // Traffic parameters are not part of the deployment identity.
        let mut busier = cfg;
        busier.lambda = 1.0;
        busier.k = 4;
        busier.duration_secs = 10.0;
        let c = cache.get_or_draw(&busier, 5);
        assert!(Arc::ptr_eq(&a, &c), "λ/k/duration do not redraw");
    }

    /// Panics while holding `cache`'s map lock, poisoning the mutex the
    /// way a panicking cache-holding closure would. The panic is caught
    /// — only the poison survives.
    fn poison(cache: &DeploymentCache) {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cache
                .map
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            panic!("injected poison");
        }));
        assert!(result.is_err(), "the injected panic must fire");
    }

    #[test]
    fn poisoned_lock_recovers_with_identical_values() {
        let cfg = NetConfig::table2();
        let cache = DeploymentCache::new();
        let before = cache.get_or_draw(&cfg, 11);
        poison(&cache);
        // Every entry point used to abort here with "cache poisoned";
        // now they recover (clearing the map — entries are pure
        // functions of their keys, so nothing of value is lost).
        assert_eq!(cache.len(), 0, "recovery clears the map");
        let after = cache.get_or_draw(&cfg, 11);
        assert_eq!(
            *before, *after,
            "redraw after recovery is bitwise identical"
        );
        poison(&cache);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn caught_panic_does_not_break_subsequent_global_runs() {
        // The regression the sweep fabric depends on: a panicking job
        // that dies while the process-wide registry's lock is held must
        // not brick later `run_on` calls in the same process.
        let mut cfg = NetConfig::table2();
        cfg.duration_secs = 30.0;
        let expected = {
            let deployment = DeploymentCache::global().get_or_draw(&cfg, 23);
            NetSim::new(cfg, crate::NetMode::AlwaysOn).run_on(23, &deployment)
        };
        poison(DeploymentCache::global());
        let deployment = DeploymentCache::global().get_or_draw(&cfg, 23);
        let after = NetSim::new(cfg, crate::NetMode::AlwaysOn).run_on(23, &deployment);
        assert_eq!(expected, after, "post-poison run_on is unaffected");
    }
}
