//! Cross-run cache of connected deployments.
//!
//! Drawing a connected random deployment is rejection sampling: every
//! [`NetSim`](crate::NetSim) run draws candidate deployments (an O(n + E)
//! spatial-hash edge build plus a connectivity check each) until one
//! connects. A Monte-Carlo sweep that compares several protocol modes on
//! the same scenarios repeats that work once per mode; this cache keys
//! the finished product — CSR topology plus the run's source-node draw —
//! by `(deployment seed, geometry)` so each scenario is constructed once
//! and shared.
//!
//! The cached topology lives behind an [`Arc`] that
//! [`NetSim::run_on`](crate::NetSim::run_on) threads straight into the
//! collision channel, so every `(mode, run)` job of a sweep executes on
//! the *same* adjacency allocation — sharing a scenario costs a
//! reference-count bump, not an O(V + E) copy per run.
//!
//! [`DeploymentCache::global`] is the process-wide registry: figures with
//! identical geometry and deployment-seed streams (the fig13–16 q sweeps,
//! the latency-tail and k-trade-off extensions) resolve to the same
//! entries instead of each sweep redrawing the same deployments.
//!
//! Determinism: the cached value is a pure function of the key (the draw
//! consumes only substreams of the deployment seed), so concurrent
//! lookups from a thread-pool fan-out return bitwise-identical
//! deployments regardless of which worker populates the entry first —
//! thread-count invariance is preserved, and a registry shared between
//! figures cannot change any figure's values.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use pbbf_topology::{NodeId, Topology};

use crate::NetConfig;

/// The geometry + seed identity of one deployment draw. Floats enter by
/// bit pattern: two configs draw identical deployments iff their keys
/// are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DeployKey {
    seed: u64,
    nodes: usize,
    range_bits: u64,
    delta_bits: u64,
    max_attempts: u32,
}

impl DeployKey {
    fn new(cfg: &NetConfig, seed: u64) -> Self {
        Self {
            seed,
            nodes: cfg.nodes,
            range_bits: cfg.range_m.to_bits(),
            delta_bits: cfg.delta.to_bits(),
            max_attempts: cfg.max_deploy_attempts,
        }
    }
}

/// One drawn scenario: the connected topology and the source node, as
/// [`NetSim::run`](crate::NetSim::run) would draw them from the same
/// seed.
///
/// The topology is held behind an [`Arc`]; cloning a `CachedDeployment`
/// (or running on one) shares the adjacency rather than copying it.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedDeployment {
    pub(crate) topology: Arc<Topology>,
    pub(crate) source: NodeId,
}

impl CachedDeployment {
    /// Builds a scenario from parts (owned or already-shared topology).
    /// Most callers want [`DeploymentCache::get_or_draw`] or
    /// [`NetSim::draw_deployment`](crate::NetSim::draw_deployment)
    /// instead; this constructor exists for benches and tests that
    /// compose scenarios by hand.
    #[must_use]
    pub fn new(topology: impl Into<Arc<Topology>>, source: NodeId) -> Self {
        Self {
            topology: topology.into(),
            source,
        }
    }

    /// The connected topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The shared handle to the connected topology.
    #[must_use]
    pub fn topology_arc(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// The drawn source node.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source
    }
}

/// A `(seed, Δ)`-keyed store of connected deployments, shared across the
/// protocol modes (and runs) of a sweep.
///
/// # Examples
///
/// ```
/// use pbbf_net_sim::{DeploymentCache, NetConfig, NetMode, NetSim};
/// use pbbf_core::PbbfParams;
///
/// let mut cfg = NetConfig::table2();
/// cfg.duration_secs = 50.0;
/// let cache = DeploymentCache::new();
/// // Same scenario, two protocol modes — one deployment draw.
/// let psm_mode = NetMode::SleepScheduled(PbbfParams::PSM);
/// let psm = NetSim::new(cfg, psm_mode).run_on(1, &cache.get_or_draw(&cfg, 7));
/// let on = NetSim::new(cfg, NetMode::AlwaysOn).run_on(1, &cache.get_or_draw(&cfg, 7));
/// assert_eq!(psm.source, on.source);
/// assert_eq!(cache.misses(), 1);
/// assert_eq!(cache.hits(), 1);
/// ```
#[derive(Debug, Default)]
pub struct DeploymentCache {
    map: Mutex<HashMap<DeployKey, Arc<CachedDeployment>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DeploymentCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide deployment registry.
    ///
    /// Sweeps and figures that key their deployments the same way —
    /// identical geometry (`nodes`, `range_m`, `delta`,
    /// `max_deploy_attempts`) and deployment-seed stream — share entries
    /// across the whole process instead of redrawing per sweep. Safe by
    /// construction: a cached value is a pure function of its key, so a
    /// registry hit returns exactly what a private cache (or a fresh
    /// draw) would have produced, bitwise.
    ///
    /// Entries live for the life of the process (a connected Table-2
    /// deployment is a few tens of kilobytes; a full figure regeneration
    /// touches a few hundred keys). Long-running hosts that sweep
    /// unbounded key sets can periodically [`DeploymentCache::clear`] it.
    #[must_use]
    pub fn global() -> &'static DeploymentCache {
        static GLOBAL: OnceLock<DeploymentCache> = OnceLock::new();
        GLOBAL.get_or_init(DeploymentCache::new)
    }

    /// Drops every cached deployment (in-flight [`Arc`]s stay alive).
    /// Hit/miss counters are preserved — they count lookups, not
    /// occupancy.
    pub fn clear(&self) {
        self.map.lock().expect("cache poisoned").clear();
    }

    /// Returns the deployment for `(cfg geometry, seed)`, drawing and
    /// inserting it on first use. The draw is bitwise identical to the
    /// one [`NetSim::run`](crate::NetSim::run) performs for `seed`.
    ///
    /// # Panics
    ///
    /// Panics if no connected deployment can be drawn within
    /// `cfg.max_deploy_attempts` (raise Δ or the attempt budget).
    #[must_use]
    pub fn get_or_draw(&self, cfg: &NetConfig, seed: u64) -> Arc<CachedDeployment> {
        let key = DeployKey::new(cfg, seed);
        if let Some(hit) = self.map.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Draw outside the lock so distinct scenarios construct in
        // parallel. Two workers racing on the same key draw the same
        // deployment (it is a pure function of the key); the extra draw
        // is discarded by `or_insert`.
        let drawn = Arc::new(crate::NetSim::draw_deployment(cfg, seed));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock().expect("cache poisoned");
        Arc::clone(map.entry(key).or_insert(drawn))
    }

    /// Number of lookups answered from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that drew a fresh deployment.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct deployments stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache poisoned").len()
    }

    /// Whether the cache holds no deployments.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetSim;

    #[test]
    fn cached_deployment_is_bitwise_identical_to_fresh() {
        let cfg = NetConfig::table2();
        let cache = DeploymentCache::new();
        for seed in [1u64, 2, 3] {
            let cached = cache.get_or_draw(&cfg, seed);
            let fresh = NetSim::draw_deployment(&cfg, seed);
            assert_eq!(*cached, fresh, "seed {seed}");
            // Second lookup hits and returns the same allocation.
            let again = cache.get_or_draw(&cfg, seed);
            assert!(Arc::ptr_eq(&cached, &again));
        }
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn key_distinguishes_geometry() {
        let cfg = NetConfig::table2();
        let mut denser = cfg;
        denser.delta = 16.0;
        let cache = DeploymentCache::new();
        let a = cache.get_or_draw(&cfg, 5);
        let b = cache.get_or_draw(&denser, 5);
        assert_ne!(a.topology, b.topology, "Δ must enter the key");
        assert_eq!(cache.len(), 2);
        // Traffic parameters are not part of the deployment identity.
        let mut busier = cfg;
        busier.lambda = 1.0;
        busier.k = 4;
        busier.duration_secs = 10.0;
        let c = cache.get_or_draw(&busier, 5);
        assert!(Arc::ptr_eq(&a, &c), "λ/k/duration do not redraw");
    }
}
