//! Configuration of the realistic simulator (Table 2).

use pbbf_core::adaptive::AdaptiveConfig;
use pbbf_core::{PbbfParams, PowerProfile};
use pbbf_radio::Phy;
use serde::{Deserialize, Serialize};

/// Which protocol the network runs (mirrors the idealized simulator's
/// mode, but for the full stack).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NetMode {
    /// Radios always on, no beacon structure, pure CSMA flooding: the
    /// paper's `NO PSM` baseline.
    AlwaysOn,
    /// IEEE 802.11 PSM with PBBF parameters (PSM itself is
    /// `PbbfParams::PSM`).
    SleepScheduled(PbbfParams),
    /// PSM with per-node *adaptive* PBBF — the Section-6 future-work
    /// heuristics: each node tunes its own `p` from overheard activity
    /// and its own `q` from detected sequence holes, once per beacon
    /// interval.
    Adaptive(AdaptiveConfig),
}

impl NetMode {
    /// The paper's legend label (`NO PSM`, `PSM`, `PBBF-<p>`,
    /// `PBBF-ADAPT`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            NetMode::AlwaysOn => "NO PSM".to_string(),
            NetMode::SleepScheduled(p) if *p == PbbfParams::PSM => "PSM".to_string(),
            NetMode::SleepScheduled(p) => format!("PBBF-{}", p.p()),
            NetMode::Adaptive(_) => "PBBF-ADAPT".to_string(),
        }
    }
}

/// How the runner settles the beacon boundaries of *idle* nodes — the
/// per-beacon wake/`begin_frame`/sleep-coin steps of everyone with no
/// pending traffic.
///
/// Both engines simulate the same protocol and agree in distribution;
/// they differ in RNG stream layout (and therefore in the exact values a
/// fixed seed produces) and in cost:
///
/// * [`Geometric`](BoundaryEngine::Geometric) — the default. Skipped
///   boundaries are settled in closed form: the index of the node's next
///   "stay awake" boundary is drawn from a geometric distribution (one
///   RNG draw per run of sleeps instead of one Bernoulli per boundary)
///   and the energy of the whole run is credited in O(1). A node asleep
///   through a hundred beacon intervals costs a handful of arithmetic
///   operations instead of a hundred replayed steps.
/// * [`Dense`](BoundaryEngine::Dense) — the exact-equivalence mode:
///   every skipped boundary is replayed individually, consuming one coin
///   per boundary, bit-for-bit identical to the original per-node walk
///   (and to the committed pre-geometric goldens). Kept for equivalence
///   tests and for dense workloads (Δ = 16-style scenarios keep most
///   nodes busy, where batching has nothing to skip).
///
/// The environment variable `PBBF_DENSE_BOUNDARIES=1` (read once per
/// process) forces [`Dense`](BoundaryEngine::Dense) regardless of
/// configuration — the escape hatch for golden regeneration and
/// triage. Set it to `0` (or unset it) for the configured engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BoundaryEngine {
    /// Closed-form geometric-skip settling of idle boundaries (default).
    #[default]
    Geometric,
    /// Exact per-boundary replay (the pre-geometric stream layout).
    Dense,
}

impl BoundaryEngine {
    /// The engine actually in force: `self`, unless
    /// `PBBF_DENSE_BOUNDARIES` overrides it process-wide.
    #[must_use]
    pub fn effective(self) -> Self {
        static FORCED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        let forced = *FORCED.get_or_init(|| {
            std::env::var("PBBF_DENSE_BOUNDARIES").is_ok_and(|v| {
                let v = v.trim();
                !v.is_empty() && v != "0"
            })
        });
        if forced {
            BoundaryEngine::Dense
        } else {
            self
        }
    }
}

/// Scenario parameters for one realistic-simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Number of nodes (Table 2: 50).
    pub nodes: usize,
    /// Target node density Δ = πR²N/A (Table 2 default: 10).
    pub delta: f64,
    /// Radio range in meters (sets the deployment area via Δ).
    pub range_m: f64,
    /// Source update rate λ (Table 1: 0.01 updates/s, deterministic).
    pub lambda: f64,
    /// Updates carried per data packet (Table 2: k = 1).
    pub k: usize,
    /// Beacon interval (s) — `T_frame` of Table 1.
    pub beacon_interval_secs: f64,
    /// ATIM window (s) — `T_active` of Table 1.
    pub atim_window_secs: f64,
    /// Simulated duration (Section 5.1: 500 s).
    pub duration_secs: f64,
    /// Physical layer (bit rate and frame sizes).
    pub phy: Phy,
    /// Radio power draw.
    pub power: PowerProfile,
    /// Attempts to draw a connected deployment before giving up.
    pub max_deploy_attempts: u32,
    /// How idle nodes' beacon boundaries are settled (see
    /// [`BoundaryEngine`]). Not part of the deployment identity — both
    /// engines run on the same cached scenarios.
    pub boundary_engine: BoundaryEngine,
}

impl NetConfig {
    /// The Table-2 scenario: 50 nodes, Δ = 10, 64-byte packets at
    /// 19.2 kbps, 500 s runs, Table-1 timing and power.
    #[must_use]
    pub fn table2() -> Self {
        Self {
            nodes: 50,
            delta: 10.0,
            range_m: 30.0,
            lambda: 0.01,
            k: 1,
            beacon_interval_secs: 10.0,
            atim_window_secs: 1.0,
            duration_secs: 500.0,
            phy: Phy::mica2(),
            power: PowerProfile::MICA2,
            max_deploy_attempts: 1000,
            boundary_engine: BoundaryEngine::Geometric,
        }
    }

    /// Expected number of updates generated in `duration_secs` (the first
    /// arrives mid-window of the first beacon interval, then every `1/λ`).
    #[must_use]
    pub fn expected_updates(&self) -> u32 {
        let first = 0.5 * self.atim_window_secs;
        if self.duration_secs <= first {
            return 0;
        }
        1 + ((self.duration_secs - first) * self.lambda).floor() as u32
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        Self::table2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_defaults() {
        let c = NetConfig::table2();
        assert_eq!(c.nodes, 50);
        assert_eq!(c.delta, 10.0);
        assert_eq!(c.k, 1);
        assert_eq!(c.phy.data_bytes, 64);
        assert_eq!(c.expected_updates(), 5);
    }

    #[test]
    fn expected_updates_scales_with_duration() {
        let mut c = NetConfig::table2();
        c.duration_secs = 1000.0;
        assert_eq!(c.expected_updates(), 10);
        c.duration_secs = 0.1;
        assert_eq!(c.expected_updates(), 0);
    }

    #[test]
    fn boundary_engine_defaults_to_geometric() {
        assert_eq!(
            NetConfig::table2().boundary_engine,
            BoundaryEngine::Geometric
        );
        assert_eq!(BoundaryEngine::default(), BoundaryEngine::Geometric);
        // Without the env override in this process, `effective` is the
        // identity (CI sets PBBF_DENSE_BOUNDARIES only in dedicated
        // steps, never for the unit-test run).
        if std::env::var("PBBF_DENSE_BOUNDARIES").is_err() {
            assert_eq!(
                BoundaryEngine::Geometric.effective(),
                BoundaryEngine::Geometric
            );
            assert_eq!(BoundaryEngine::Dense.effective(), BoundaryEngine::Dense);
        }
    }

    #[test]
    fn env_override_forces_dense() {
        // Gives the PBBF_DENSE_BOUNDARIES=1 CI step its signal; a no-op
        // in the ordinary test run (the variable is read once per
        // process, so it cannot be toggled in-process here).
        let forced = std::env::var("PBBF_DENSE_BOUNDARIES")
            .is_ok_and(|v| !v.trim().is_empty() && v.trim() != "0");
        if forced {
            assert_eq!(BoundaryEngine::Geometric.effective(), BoundaryEngine::Dense);
            assert_eq!(BoundaryEngine::Dense.effective(), BoundaryEngine::Dense);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(NetMode::AlwaysOn.label(), "NO PSM");
        assert_eq!(NetMode::SleepScheduled(PbbfParams::PSM).label(), "PSM");
        assert_eq!(
            NetMode::SleepScheduled(PbbfParams::new(0.1, 0.0).unwrap()).label(),
            "PBBF-0.1"
        );
        let adapt = NetMode::Adaptive(AdaptiveConfig::default_for(PbbfParams::PSM));
        assert_eq!(adapt.label(), "PBBF-ADAPT");
    }
}
