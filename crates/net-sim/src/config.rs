//! Configuration of the realistic simulator (Table 2).

use pbbf_core::adaptive::AdaptiveConfig;
use pbbf_core::{PbbfParams, PowerProfile};
use pbbf_radio::Phy;
use serde::{Deserialize, Serialize};

/// Which protocol the network runs (mirrors the idealized simulator's
/// mode, but for the full stack).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NetMode {
    /// Radios always on, no beacon structure, pure CSMA flooding: the
    /// paper's `NO PSM` baseline.
    AlwaysOn,
    /// IEEE 802.11 PSM with PBBF parameters (PSM itself is
    /// `PbbfParams::PSM`).
    SleepScheduled(PbbfParams),
    /// PSM with per-node *adaptive* PBBF — the Section-6 future-work
    /// heuristics: each node tunes its own `p` from overheard activity
    /// and its own `q` from detected sequence holes, once per beacon
    /// interval.
    Adaptive(AdaptiveConfig),
}

impl NetMode {
    /// The paper's legend label (`NO PSM`, `PSM`, `PBBF-<p>`,
    /// `PBBF-ADAPT`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            NetMode::AlwaysOn => "NO PSM".to_string(),
            NetMode::SleepScheduled(p) if *p == PbbfParams::PSM => "PSM".to_string(),
            NetMode::SleepScheduled(p) => format!("PBBF-{}", p.p()),
            NetMode::Adaptive(_) => "PBBF-ADAPT".to_string(),
        }
    }
}

/// How the runner settles the beacon boundaries of *idle* nodes — the
/// per-beacon wake/`begin_frame`/sleep-coin steps of everyone with no
/// pending traffic — and, for [`FrameSkip`](BoundaryEngine::FrameSkip),
/// whether the *global* loop may jump whole quiescent frames at once.
///
/// All engines simulate the same protocol and agree in distribution;
/// they differ in RNG stream layout (and therefore in the exact values a
/// fixed seed produces) and in cost:
///
/// * [`Auto`](BoundaryEngine::Auto) — the default. A deterministic
///   idle-fraction probe over the scenario parameters (traffic per
///   beacon, estimated flood footprint vs horizon — see
///   [`BoundaryEngine::resolve`]) picks one of the three concrete
///   engines per run, so sweeps spanning dense and sparse points each
///   get the engine that fits without a manual knob.
/// * [`FrameSkip`](BoundaryEngine::FrameSkip) — the rare-event engine.
///   On top of the geometric per-node settling, whenever the network is
///   *globally* quiescent (no flood in flight, no pending ATIM/data
///   events) the runner jumps the event loop straight to the frame of
///   the next traffic arrival and settles all skipped frames for all
///   nodes in one batched pass. Cost becomes O(traffic) instead of
///   O(sim-time × nodes) in the λ → 0 regime.
/// * [`Geometric`](BoundaryEngine::Geometric) — per-node closed-form
///   settling: the index of the node's next "stay awake" boundary is
///   drawn from a geometric distribution (one RNG draw per run of
///   sleeps instead of one Bernoulli per boundary) and the energy of
///   the whole run is credited in O(1). A node asleep through a hundred
///   beacon intervals costs a handful of arithmetic operations instead
///   of a hundred replayed steps.
/// * [`Dense`](BoundaryEngine::Dense) — the exact-equivalence mode:
///   every skipped boundary is replayed individually, consuming one coin
///   per boundary, bit-for-bit identical to the original per-node walk
///   (and to the committed pre-geometric goldens). Kept for equivalence
///   tests and for dense workloads (Δ = 16-style scenarios keep most
///   nodes busy, where batching has nothing to skip).
///
/// `FrameSkip` and `Geometric` share one RNG stream layout — a skipped
/// frame consumes exactly the coins the geometric settle would have —
/// so the q ∈ {0, 1} endpoints (draw-free) are bitwise identical across
/// *all* engines, and `FrameSkip` vs `Geometric` differ only in where
/// the global loop spends its time.
///
/// The environment variable `PBBF_DENSE_BOUNDARIES=1` (read once per
/// process) forces [`Dense`](BoundaryEngine::Dense) regardless of
/// configuration — the escape hatch for golden regeneration and
/// triage. Set it to `0` (or unset it) for the configured engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BoundaryEngine {
    /// Deterministic per-run probe picks Dense, Geometric, or FrameSkip
    /// (default).
    #[default]
    Auto,
    /// Closed-form geometric-skip settling of idle boundaries.
    Geometric,
    /// Exact per-boundary replay (the pre-geometric stream layout).
    Dense,
    /// Geometric settling plus whole-frame jumps of the global loop
    /// across quiescent stretches.
    FrameSkip,
}

impl BoundaryEngine {
    /// The engine actually in force before auto-selection: `self`,
    /// unless `PBBF_DENSE_BOUNDARIES` overrides it process-wide.
    #[must_use]
    pub fn effective(self) -> Self {
        static FORCED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        let forced = *FORCED.get_or_init(|| {
            std::env::var("PBBF_DENSE_BOUNDARIES").is_ok_and(|v| {
                let v = v.trim();
                !v.is_empty() && v != "0"
            })
        });
        if forced {
            BoundaryEngine::Dense
        } else {
            self
        }
    }

    /// The concrete engine a run of `cfg` uses: the env override, then
    /// the explicit configured engine, with [`Auto`](Self::Auto)
    /// resolved by an idle-fraction probe.
    ///
    /// The probe is a pure function of the scenario parameters (never of
    /// measured time or drawn randomness), so the choice is identical
    /// across threads, replica lanes, and serial re-runs of the same
    /// config — engine selection can never break bitwise determinism.
    ///
    /// Two analytic fractions drive it:
    ///
    /// * **global quiescence** — the fraction of the horizon's beacon
    ///   frames with no flood in flight, estimating each update's
    ///   footprint as the network diameter in hops (one hop per frame
    ///   under PSM) plus a drain allowance. High quiescence ⇒ the
    ///   global loop itself is the cost ⇒ [`FrameSkip`](Self::FrameSkip).
    /// * **per-node busyness** — frames in which a typical node handles
    ///   traffic (receive/forward/announce per update) over total
    ///   frames. Near-saturation ⇒ nothing to skip ⇒
    ///   [`Dense`](Self::Dense); otherwise [`Geometric`](Self::Geometric).
    #[must_use]
    pub fn resolve(self, cfg: &NetConfig) -> Self {
        match self.effective() {
            BoundaryEngine::Auto => {
                let frames = (cfg.duration_secs / cfg.beacon_interval_secs).max(1.0);
                let updates = f64::from(cfg.expected_updates());
                // Flood footprint per update, in frames: the unit-disk
                // diameter in hops (√(Nπ/Δ) radio ranges across the
                // deployment square) plus two frames of announce drain.
                let diameter = (cfg.nodes as f64 * std::f64::consts::PI / cfg.delta).sqrt();
                let busy_frames = updates * (diameter + 2.0);
                let quiescent = 1.0 - (busy_frames / frames).min(1.0);
                // Frames in which a typical node touches traffic: about
                // three (hear the flood, forward it, announce) per
                // update it participates in.
                let node_busy = (updates * 3.0 / frames).min(1.0);
                if quiescent >= 0.5 {
                    BoundaryEngine::FrameSkip
                } else if node_busy >= 0.8 {
                    BoundaryEngine::Dense
                } else {
                    BoundaryEngine::Geometric
                }
            }
            concrete => concrete,
        }
    }
}

/// Scenario parameters for one realistic-simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Number of nodes (Table 2: 50).
    pub nodes: usize,
    /// Target node density Δ = πR²N/A (Table 2 default: 10).
    pub delta: f64,
    /// Radio range in meters (sets the deployment area via Δ).
    pub range_m: f64,
    /// Source update rate λ (Table 1: 0.01 updates/s, deterministic).
    pub lambda: f64,
    /// Updates carried per data packet (Table 2: k = 1).
    pub k: usize,
    /// Beacon interval (s) — `T_frame` of Table 1.
    pub beacon_interval_secs: f64,
    /// ATIM window (s) — `T_active` of Table 1.
    pub atim_window_secs: f64,
    /// Simulated duration (Section 5.1: 500 s).
    pub duration_secs: f64,
    /// Physical layer (bit rate and frame sizes).
    pub phy: Phy,
    /// Radio power draw.
    pub power: PowerProfile,
    /// Attempts to draw a connected deployment before giving up.
    pub max_deploy_attempts: u32,
    /// How idle nodes' beacon boundaries are settled (see
    /// [`BoundaryEngine`]; [`BoundaryEngine::Auto`] probes the scenario
    /// and picks one). Not part of the deployment identity — all
    /// engines run on the same cached scenarios.
    pub boundary_engine: BoundaryEngine,
}

impl NetConfig {
    /// The Table-2 scenario: 50 nodes, Δ = 10, 64-byte packets at
    /// 19.2 kbps, 500 s runs, Table-1 timing and power.
    #[must_use]
    pub fn table2() -> Self {
        Self {
            nodes: 50,
            delta: 10.0,
            range_m: 30.0,
            lambda: 0.01,
            k: 1,
            beacon_interval_secs: 10.0,
            atim_window_secs: 1.0,
            duration_secs: 500.0,
            phy: Phy::mica2(),
            power: PowerProfile::MICA2,
            max_deploy_attempts: 1000,
            boundary_engine: BoundaryEngine::Auto,
        }
    }

    /// Expected number of updates generated in `duration_secs` (the first
    /// arrives mid-window of the first beacon interval, then every `1/λ`).
    #[must_use]
    pub fn expected_updates(&self) -> u32 {
        let first = 0.5 * self.atim_window_secs;
        if self.duration_secs <= first {
            return 0;
        }
        1 + ((self.duration_secs - first) * self.lambda).floor() as u32
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        Self::table2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_defaults() {
        let c = NetConfig::table2();
        assert_eq!(c.nodes, 50);
        assert_eq!(c.delta, 10.0);
        assert_eq!(c.k, 1);
        assert_eq!(c.phy.data_bytes, 64);
        assert_eq!(c.expected_updates(), 5);
    }

    #[test]
    fn expected_updates_scales_with_duration() {
        let mut c = NetConfig::table2();
        c.duration_secs = 1000.0;
        assert_eq!(c.expected_updates(), 10);
        c.duration_secs = 0.1;
        assert_eq!(c.expected_updates(), 0);
    }

    #[test]
    fn boundary_engine_defaults_to_auto() {
        assert_eq!(NetConfig::table2().boundary_engine, BoundaryEngine::Auto);
        assert_eq!(BoundaryEngine::default(), BoundaryEngine::Auto);
        // Without the env override in this process, `effective` is the
        // identity (CI sets PBBF_DENSE_BOUNDARIES only in dedicated
        // steps, never for the unit-test run).
        if std::env::var("PBBF_DENSE_BOUNDARIES").is_err() {
            for e in [
                BoundaryEngine::Auto,
                BoundaryEngine::Geometric,
                BoundaryEngine::Dense,
                BoundaryEngine::FrameSkip,
            ] {
                assert_eq!(e.effective(), e);
            }
        }
    }

    #[test]
    fn auto_probe_picks_by_regime() {
        if std::env::var("PBBF_DENSE_BOUNDARIES").is_ok() {
            return; // the override test below covers the forced process
        }
        // Table-2 scale: moderate traffic, most nodes idle most beacons
        // but floods overlap a large share of the 50-frame horizon.
        let c = NetConfig::table2();
        assert_eq!(BoundaryEngine::Auto.resolve(&c), BoundaryEngine::Geometric);

        // Dense Δ = 16 churn: an update nearly every beacon keeps every
        // node busy — nothing to skip.
        let mut dense = NetConfig::table2();
        dense.nodes = 1000;
        dense.delta = 16.0;
        dense.lambda = 0.1;
        dense.duration_secs = 200.0;
        assert_eq!(BoundaryEngine::Auto.resolve(&dense), BoundaryEngine::Dense);

        // Long-horizon rare traffic: one flood, then hundreds of idle
        // beacon intervals — the global loop is the cost.
        let mut sparse = NetConfig::table2();
        sparse.nodes = 10_000;
        sparse.lambda = 0.000125;
        sparse.duration_secs = 7200.0;
        assert_eq!(
            BoundaryEngine::Auto.resolve(&sparse),
            BoundaryEngine::FrameSkip
        );

        // Explicit engines resolve to themselves — `NetConfig` keeps
        // working overrides for tests and benches.
        for e in [
            BoundaryEngine::Geometric,
            BoundaryEngine::Dense,
            BoundaryEngine::FrameSkip,
        ] {
            assert_eq!(e.resolve(&sparse), e);
        }
    }

    #[test]
    fn auto_probe_is_deterministic() {
        let mut c = NetConfig::table2();
        c.nodes = 3000;
        c.lambda = 0.001;
        c.duration_secs = 4000.0;
        let first = BoundaryEngine::Auto.resolve(&c);
        for _ in 0..10 {
            assert_eq!(BoundaryEngine::Auto.resolve(&c), first);
        }
    }

    #[test]
    fn env_override_forces_dense() {
        // Gives the PBBF_DENSE_BOUNDARIES=1 CI step its signal; a no-op
        // in the ordinary test run (the variable is read once per
        // process, so it cannot be toggled in-process here).
        let forced = std::env::var("PBBF_DENSE_BOUNDARIES")
            .is_ok_and(|v| !v.trim().is_empty() && v.trim() != "0");
        if forced {
            let sparse = {
                let mut c = NetConfig::table2();
                c.nodes = 10_000;
                c.lambda = 0.000125;
                c.duration_secs = 7200.0;
                c
            };
            for e in [
                BoundaryEngine::Auto,
                BoundaryEngine::Geometric,
                BoundaryEngine::Dense,
                BoundaryEngine::FrameSkip,
            ] {
                assert_eq!(e.effective(), BoundaryEngine::Dense);
                // The override beats the probe too: even the scenario
                // Auto would send to FrameSkip resolves Dense.
                assert_eq!(e.resolve(&sparse), BoundaryEngine::Dense);
            }
        }
    }

    #[test]
    fn labels() {
        assert_eq!(NetMode::AlwaysOn.label(), "NO PSM");
        assert_eq!(NetMode::SleepScheduled(PbbfParams::PSM).label(), "PSM");
        assert_eq!(
            NetMode::SleepScheduled(PbbfParams::new(0.1, 0.0).unwrap()).label(),
            "PBBF-0.1"
        );
        let adapt = NetMode::Adaptive(AdaptiveConfig::default_for(PbbfParams::PSM));
        assert_eq!(adapt.label(), "PBBF-ADAPT");
    }
}
