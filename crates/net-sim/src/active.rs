//! Incremental membership sets for the active-set event loop.

/// A set of node indices with O(1) insert/remove and sorted sweeps.
///
/// The runner keeps one of these per beacon-boundary handler (frame
/// start, ATIM-window end) so each handler iterates only the nodes that
/// actually need processing — O(active) per beacon instead of O(n).
/// Membership follows [`pbbf_mac::MacState::pending_work`] and is
/// refreshed at every MAC transition point.
///
/// Removal just clears the flag; stale entries in the insertion list are
/// dropped (and the list re-sorted) by the next [`ActiveSet::sweep`], so
/// updates never shift the backing vector. Sweeps yield ascending
/// indices, which the runner relies on: events scheduled for active
/// nodes must enter the queue in node order, exactly as the full
/// per-node walk scheduled them, to preserve FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use pbbf_net_sim::ActiveSet;
///
/// let mut set = ActiveSet::new(8);
/// set.set(5, true);
/// set.set(2, true);
/// set.set(5, false);
/// let mut sweep = Vec::new();
/// set.sweep(&mut sweep);
/// assert_eq!(sweep, vec![2]);
/// ```
#[derive(Debug, Clone)]
pub struct ActiveSet {
    /// Insertion-ordered members; may contain stale (cleared) or
    /// duplicate entries between sweeps.
    members: Vec<u32>,
    in_set: Vec<bool>,
    /// Live-member count, maintained on every membership transition so
    /// [`ActiveSet::len`]/[`ActiveSet::is_empty`] are O(1) — the
    /// frame-skip engine polls emptiness at every beacon boundary.
    live: usize,
}

impl ActiveSet {
    /// Creates an empty set over indices `0..n`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            members: Vec::new(),
            in_set: vec![false; n],
            live: 0,
        }
    }

    /// Sets index `i`'s membership.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn set(&mut self, i: usize, member: bool) {
        if member && !self.in_set[i] {
            self.in_set[i] = true;
            self.live += 1;
            self.members.push(i as u32);
        } else if !member && self.in_set[i] {
            self.in_set[i] = false;
            self.live -= 1;
        }
    }

    /// Whether index `i` is currently a member.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        self.in_set[i]
    }

    /// Writes the current members into `out` in ascending index order
    /// (clearing it first), compacting internal storage as a side effect.
    pub fn sweep(&mut self, out: &mut Vec<u32>) {
        out.clear();
        if self.members.len() * 8 >= self.in_set.len() {
            // Dense: scanning the membership bitmap is cheaper than
            // sorting the (stale-entry-laden) insertion list, and yields
            // ascending order for free.
            out.extend(
                self.in_set
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &m)| m.then_some(i as u32)),
            );
        } else {
            let in_set = &self.in_set;
            self.members.retain(|&i| in_set[i as usize]);
            self.members.sort_unstable();
            self.members.dedup();
            out.extend_from_slice(&self.members);
        }
        self.members.clear();
        self.members.extend_from_slice(out);
    }

    /// Number of live members (O(1)).
    #[must_use]
    pub fn len(&self) -> usize {
        debug_assert_eq!(self.live, self.in_set.iter().filter(|&&b| b).count());
        self.live
    }

    /// Whether no index is a member (O(1)).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

/// A per-replica active-set mask layered on [`ActiveSet`]: node-level
/// union membership plus a `u64` lane bitmask per node.
///
/// The replica runner's merged boundary handlers sweep the union in
/// ascending node order (one [`ActiveSet::sweep`], shared by all lanes)
/// and then visit each member's lanes in ascending bit order — so every
/// lane sees exactly its own members, in exactly the node order the
/// serial runner's per-replica sweep would have used (FIFO tie-breaking
/// preserved per lane). The union invariant — `mask(i) != 0` iff `i` is
/// a union member — is maintained entirely inside [`ReplicaSet::set`].
#[derive(Debug, Clone)]
pub(crate) struct ReplicaSet {
    union: ActiveSet,
    masks: Vec<u64>,
    /// Live-member count per lane, maintained on every bit transition —
    /// the replica frame-skip path polls per-lane emptiness at every
    /// shared beacon boundary, so it must be O(1).
    lane_live: [u32; 64],
}

impl ReplicaSet {
    /// Creates an empty set over nodes `0..n` (lanes `0..64`).
    pub(crate) fn new(n: usize) -> Self {
        Self {
            union: ActiveSet::new(n),
            masks: vec![0; n],
            lane_live: [0; 64],
        }
    }

    /// Sets node `i`'s membership on `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range; debug-panics if `lane >= 64`.
    #[inline]
    pub(crate) fn set(&mut self, i: usize, lane: usize, member: bool) {
        debug_assert!(lane < 64, "lane {lane} exceeds the u64 mask");
        let bit = 1u64 << lane;
        let m = &mut self.masks[i];
        if member && *m & bit == 0 {
            *m |= bit;
            self.lane_live[lane] += 1;
        } else if !member && *m & bit != 0 {
            *m &= !bit;
            self.lane_live[lane] -= 1;
        }
        self.union.set(i, *m != 0);
    }

    /// Whether `lane` has no members (O(1)).
    #[inline]
    pub(crate) fn lane_is_empty(&self, lane: usize) -> bool {
        self.lane_live[lane] == 0
    }

    /// The lane bitmask of node `i`.
    #[inline]
    pub(crate) fn mask(&self, i: usize) -> u64 {
        self.masks[i]
    }

    /// Writes the union members into `out` in ascending node order
    /// (clearing it first); per-lane membership is read via
    /// [`ReplicaSet::mask`].
    pub(crate) fn sweep(&mut self, out: &mut Vec<u32>) {
        self.union.sweep(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_reinsert_sweeps_sorted() {
        let mut s = ActiveSet::new(10);
        for i in [7usize, 3, 9, 3, 0] {
            s.set(i, true);
        }
        s.set(9, false);
        s.set(9, true); // re-insert after removal: duplicate entry internally
        let mut out = Vec::new();
        s.sweep(&mut out);
        assert_eq!(out, vec![0, 3, 7, 9]);
        // Sweep again: compaction kept exactly the live members.
        s.sweep(&mut out);
        assert_eq!(out, vec![0, 3, 7, 9]);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn removal_is_immediate() {
        let mut s = ActiveSet::new(4);
        s.set(1, true);
        s.set(2, true);
        s.set(1, false);
        assert!(!s.contains(1));
        assert!(s.contains(2));
        let mut out = Vec::new();
        s.sweep(&mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn empty_set() {
        let mut s = ActiveSet::new(3);
        assert!(s.is_empty());
        let mut out = vec![99];
        s.sweep(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn replica_set_union_tracks_lane_masks() {
        let mut s = ReplicaSet::new(6);
        s.set(4, 0, true);
        s.set(4, 3, true);
        s.set(1, 63, true);
        let mut out = Vec::new();
        s.sweep(&mut out);
        assert_eq!(out, vec![1, 4]);
        assert_eq!(s.mask(4), 0b1001);
        assert_eq!(s.mask(1), 1 << 63);
        // Clearing one lane keeps the node a member; clearing the last
        // lane drops it from the union.
        s.set(4, 0, false);
        s.sweep(&mut out);
        assert_eq!(out, vec![1, 4]);
        s.set(4, 3, false);
        s.set(1, 63, false);
        s.sweep(&mut out);
        assert!(out.is_empty());
        assert_eq!(s.mask(4), 0);
    }

    #[test]
    fn replica_set_lane_emptiness_is_tracked() {
        let mut s = ReplicaSet::new(4);
        assert!(s.lane_is_empty(0) && s.lane_is_empty(63));
        s.set(2, 5, true);
        s.set(3, 5, true);
        s.set(2, 7, true);
        assert!(!s.lane_is_empty(5) && !s.lane_is_empty(7));
        assert!(s.lane_is_empty(6));
        // Redundant sets must not double-count.
        s.set(2, 5, true);
        s.set(2, 5, false);
        assert!(!s.lane_is_empty(5), "node 3 still holds lane 5");
        s.set(3, 5, false);
        s.set(3, 5, false);
        assert!(s.lane_is_empty(5));
        s.set(2, 7, false);
        assert!(s.lane_is_empty(7));
    }
}
