//! The discrete-event loop composing app, PBBF, PSM, CSMA, radio, channel.

use pbbf_core::adaptive::AdaptiveController;
use pbbf_core::ForwardDecision;
use pbbf_des::{EventQueue, SimDuration, SimRng, SimTime};
use pbbf_mac::{BackoffPolicy, DataIntent, MacState, PsmTiming};
use pbbf_radio::{
    BruteChannel, Channel, CollisionChannel, Delivery, EnergyMeter, Frame, FrameKind, RadioState,
};
use pbbf_topology::{NodeId, RandomDeployment};

use crate::{NetConfig, NetMode, NetRunStats};

/// The realistic simulator: construct once, [`NetSim::run`] per seed.
///
/// Every run draws a fresh connected random deployment, a fresh random
/// source node, and fresh protocol randomness — all deterministically from
/// the seed, matching the paper's "each data point is averaged over ten
/// runs" methodology (each run is a new scenario).
#[derive(Debug, Clone)]
pub struct NetSim {
    config: NetConfig,
    mode: NetMode,
}

impl NetSim {
    /// Creates a simulator for the given scenario and protocol mode.
    #[must_use]
    pub fn new(config: NetConfig, mode: NetMode) -> Self {
        Self { config, mode }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// The protocol mode.
    #[must_use]
    pub fn mode(&self) -> NetMode {
        self.mode
    }

    /// Executes one fully deterministic run.
    ///
    /// # Panics
    ///
    /// Panics if no connected deployment can be drawn within
    /// `config.max_deploy_attempts` (raise Δ or the attempt budget).
    #[must_use]
    pub fn run(&self, seed: u64) -> NetRunStats {
        self.run_with(seed, Channel::new)
    }

    /// [`NetSim::run`] over the reference [`BruteChannel`] instead of the
    /// incremental engine. Kept for the channel-equivalence tests and the
    /// baseline benches — results must be identical to [`NetSim::run`]
    /// for every seed.
    ///
    /// # Panics
    ///
    /// Panics if no connected deployment can be drawn within
    /// `config.max_deploy_attempts` (raise Δ or the attempt budget).
    #[must_use]
    pub fn run_brute(&self, seed: u64) -> NetRunStats {
        self.run_with(seed, BruteChannel::new)
    }

    fn run_with<C: CollisionChannel>(
        &self,
        seed: u64,
        channel: impl FnOnce(pbbf_topology::Topology) -> C,
    ) -> NetRunStats {
        let root = SimRng::new(seed);
        let mut deploy_rng = root.substream(0);
        let deployment = RandomDeployment::connected_with_density(
            self.config.nodes,
            self.config.range_m,
            self.config.delta,
            self.config.max_deploy_attempts,
            &mut deploy_rng,
        )
        .expect("no connected deployment found; raise delta or attempts");
        let mut source_rng = root.substream(1);
        let source = NodeId(source_rng.below(self.config.nodes as u64) as u32);

        let mut runner = Runner::new(
            &self.config,
            self.mode,
            channel(deployment.into_topology()),
            source,
            &root,
        );
        runner.prime();
        runner.drain();
        runner.into_stats()
    }
}

#[derive(Debug)]
enum Ev {
    FrameStart,
    WindowEnd,
    GenUpdate,
    AtimAttempt(u32),
    DataAttempt(u32, DataIntent),
    TxEnd(u32),
}

#[derive(Debug)]
struct NodeRt {
    mac: MacState,
    meter: EnergyMeter,
    awake: bool,
    awake_since: SimTime,
    rng: SimRng,
    atim_scheduled: bool,
    normal_scheduled: bool,
    immediate_scheduled: bool,
    /// Present only in [`NetMode::Adaptive`]: the Section-6 controller
    /// plus last-window snapshots of its loss-signal inputs.
    adapt: Option<AdaptiveController>,
    holes_snapshot: u64,
    known_snapshot: u64,
}

struct Runner<C: CollisionChannel> {
    psm: bool,
    adaptive: bool,
    k: usize,
    timing: PsmTiming,
    backoff: BackoffPolicy,
    data_air: SimDuration,
    atim_air: SimDuration,
    update_period: SimDuration,
    duration: SimTime,
    channel: C,
    nodes: Vec<NodeRt>,
    queue: EventQueue<Ev>,
    source: NodeId,
    gen_times: Vec<SimTime>,
    receptions: Vec<Vec<Option<SimTime>>>,
    /// Reused per-`end_tx` delivery buffer: the channel writes into it so
    /// the steady-state event loop makes no delivery allocations.
    deliveries: Vec<Delivery>,
    data_tx: u64,
    atim_tx: u64,
    immediate_tx: u64,
    collisions: u64,
    /// Mean `(p, q)` across nodes at each beacon interval (adaptive mode).
    adaptive_trace: Vec<(f64, f64)>,
}

impl<C: CollisionChannel> Runner<C> {
    fn new(cfg: &NetConfig, mode: NetMode, channel: C, source: NodeId, root: &SimRng) -> Self {
        let params = match mode {
            NetMode::AlwaysOn => pbbf_core::PbbfParams::ALWAYS_ON,
            NetMode::SleepScheduled(p) => p,
            NetMode::Adaptive(a) => a.initial,
        };
        let nodes = (0..cfg.nodes)
            .map(|i| NodeRt {
                mac: MacState::new(params, root.substream(1000 + i as u64)),
                meter: EnergyMeter::new(cfg.power),
                awake: true,
                awake_since: SimTime::ZERO,
                rng: root.substream(2000 + i as u64),
                atim_scheduled: false,
                normal_scheduled: false,
                immediate_scheduled: false,
                adapt: match mode {
                    NetMode::Adaptive(a) => Some(AdaptiveController::new(a)),
                    _ => None,
                },
                holes_snapshot: 0,
                known_snapshot: 0,
            })
            .collect();
        let phy = cfg.phy;
        // One row per generated update lands in `gen_times`/`receptions`;
        // pre-size them so the steady-state loop never reallocates.
        let expected_updates = cfg.expected_updates() as usize;
        // Degree ≈ Δ bounds the per-`end_tx` delivery count.
        let expected_degree = cfg.delta.ceil() as usize + 1;
        Self {
            psm: !matches!(mode, NetMode::AlwaysOn),
            adaptive: matches!(mode, NetMode::Adaptive(_)),
            k: cfg.k,
            timing: PsmTiming::new(
                SimDuration::from_secs(cfg.beacon_interval_secs),
                SimDuration::from_secs(cfg.atim_window_secs),
            ),
            backoff: BackoffPolicy::mica2(),
            data_air: phy.airtime(phy.data_bytes),
            atim_air: phy.airtime(phy.atim_bytes),
            update_period: SimDuration::from_secs(1.0 / cfg.lambda),
            duration: SimTime::from_secs(cfg.duration_secs),
            channel,
            nodes,
            queue: EventQueue::new(),
            source,
            gen_times: Vec::with_capacity(expected_updates),
            receptions: Vec::with_capacity(expected_updates),
            deliveries: Vec::with_capacity(expected_degree),
            data_tx: 0,
            atim_tx: 0,
            immediate_tx: 0,
            collisions: 0,
            adaptive_trace: Vec::new(),
        }
    }

    fn prime(&mut self) {
        if self.psm {
            self.queue.schedule(SimTime::ZERO, Ev::FrameStart);
        }
        let first_update = SimTime::ZERO + self.timing.atim_window() / 2;
        if first_update <= self.duration {
            self.queue.schedule(first_update, Ev::GenUpdate);
        }
    }

    fn drain(&mut self) {
        while let Some((now, ev)) = self.queue.pop() {
            if now > self.duration {
                break;
            }
            match ev {
                Ev::FrameStart => self.on_frame_start(now),
                Ev::WindowEnd => self.on_window_end(now),
                Ev::GenUpdate => self.on_gen_update(now),
                Ev::AtimAttempt(i) => self.on_atim_attempt(now, i as usize),
                Ev::DataAttempt(i, intent) => self.on_data_attempt(now, i as usize, intent),
                Ev::TxEnd(i) => self.on_tx_end(now, i as usize),
            }
        }
    }

    fn on_frame_start(&mut self, now: SimTime) {
        let mut p_sum = 0.0;
        let mut q_sum = 0.0;
        for i in 0..self.nodes.len() {
            let node = &mut self.nodes[i];
            if !node.awake {
                node.meter.set_state(now, RadioState::Idle);
                node.awake = true;
                node.awake_since = now;
            }
            // Adaptive PBBF: close the observation window at each beacon.
            if let Some(ctl) = &mut node.adapt {
                let holes = node.mac.sequence_holes();
                let known = node.mac.known_updates().len() as u64;
                let missed = holes.saturating_sub(node.holes_snapshot);
                let received = known.saturating_sub(node.known_snapshot);
                node.holes_snapshot = holes;
                node.known_snapshot = known;
                ctl.observe_updates(received, missed);
                let params = ctl.end_window();
                node.mac.set_params(params);
                p_sum += params.p();
                q_sum += params.q();
            }
            if node.mac.begin_frame() && !node.atim_scheduled {
                node.atim_scheduled = true;
                let at = self.backoff.next_atim_attempt(now, &mut node.rng);
                self.queue.schedule(at, Ev::AtimAttempt(i as u32));
            }
        }
        if self.adaptive {
            let n = self.nodes.len() as f64;
            self.adaptive_trace.push((p_sum / n, q_sum / n));
        }
        self.queue
            .schedule(now + self.timing.atim_window(), Ev::WindowEnd);
        let next = now + self.timing.beacon_interval();
        if next <= self.duration {
            self.queue.schedule(next, Ev::FrameStart);
        }
    }

    fn on_window_end(&mut self, now: SimTime) {
        for i in 0..self.nodes.len() {
            let stay = self.nodes[i].mac.sleep_decision();
            let transmitting = self.channel.is_transmitting(NodeId(i as u32));
            let node = &mut self.nodes[i];
            if !stay && !transmitting && node.awake {
                node.meter.set_state(now, RadioState::Sleep);
                node.awake = false;
            }
            if node.mac.has_pending_normal() && !node.normal_scheduled {
                node.normal_scheduled = true;
                let at = self.backoff.next_data_attempt(now, &mut node.rng);
                self.queue
                    .schedule(at, Ev::DataAttempt(i as u32, DataIntent::Normal));
            }
            if node.mac.has_pending_immediate() && !node.immediate_scheduled {
                node.immediate_scheduled = true;
                let at = self.backoff.next_data_attempt(now, &mut node.rng);
                self.queue
                    .schedule(at, Ev::DataAttempt(i as u32, DataIntent::Immediate));
            }
        }
    }

    fn on_gen_update(&mut self, now: SimTime) {
        let id = self.gen_times.len() as u64;
        self.gen_times.push(now);
        let mut row = vec![None; self.nodes.len()];
        row[self.source.index()] = Some(now);
        self.receptions.push(row);

        let i = self.source.index();
        let decision = self.nodes[i].mac.source_update(id);
        if self.psm {
            match decision {
                ForwardDecision::EnqueueForNextActiveWindow => {
                    // The paper's source announces in the window the update
                    // arrives in.
                    if self.timing.in_atim_window(now) {
                        self.nodes[i].mac.announce_now();
                        if !self.nodes[i].atim_scheduled {
                            self.nodes[i].atim_scheduled = true;
                            let at = self.backoff.next_atim_attempt(now, &mut self.nodes[i].rng);
                            self.queue.schedule(at, Ev::AtimAttempt(i as u32));
                        }
                    }
                }
                ForwardDecision::SendImmediately => {
                    self.schedule_immediate_attempt(now, i);
                }
            }
        } else {
            self.schedule_immediate_attempt(now, i);
        }

        let next = now + self.update_period;
        if next <= self.duration {
            self.queue.schedule(next, Ev::GenUpdate);
        }
    }

    /// Schedules an immediate-data attempt respecting the no-data-in-window
    /// rule.
    fn schedule_immediate_attempt(&mut self, now: SimTime, i: usize) {
        if self.nodes[i].immediate_scheduled || !self.nodes[i].mac.has_pending_immediate() {
            return;
        }
        self.nodes[i].immediate_scheduled = true;
        let from = if self.psm {
            self.timing.earliest_data_time(now)
        } else {
            now
        };
        let at = self.backoff.next_data_attempt(from, &mut self.nodes[i].rng);
        self.queue
            .schedule(at, Ev::DataAttempt(i as u32, DataIntent::Immediate));
    }

    fn on_atim_attempt(&mut self, now: SimTime, i: usize) {
        let id = NodeId(i as u32);
        if !self.nodes[i].mac.has_pending_normal() {
            self.nodes[i].atim_scheduled = false;
            return;
        }
        let window_end = self.timing.window_end(now);
        if !self.timing.in_atim_window(now) || now + self.atim_air > window_end {
            // Too late to announce this window; the data still goes out in
            // the data phase (unannounced), and `begin_frame` re-announces
            // next interval if it remains unsent.
            self.nodes[i].atim_scheduled = false;
            return;
        }
        if self.channel.is_transmitting(id) || self.channel.carrier_busy(id) {
            let at = self.backoff.next_atim_attempt(now, &mut self.nodes[i].rng);
            if at + self.atim_air <= window_end {
                self.queue.schedule(at, Ev::AtimAttempt(i as u32));
            } else {
                self.nodes[i].atim_scheduled = false;
            }
            return;
        }
        self.nodes[i].atim_scheduled = false;
        let contents = self.nodes[i].mac.packet_contents(self.k);
        let end = self
            .channel
            .begin_tx(now, Frame::atim(id, contents), self.atim_air);
        self.nodes[i].meter.set_state(now, RadioState::Transmit);
        self.queue.schedule(end, Ev::TxEnd(i as u32));
    }

    fn on_data_attempt(&mut self, now: SimTime, i: usize, intent: DataIntent) {
        let id = NodeId(i as u32);
        let pending = match intent {
            DataIntent::Normal => self.nodes[i].mac.has_pending_normal(),
            DataIntent::Immediate => self.nodes[i].mac.has_pending_immediate(),
        };
        if !pending {
            self.clear_guard(i, intent);
            return;
        }
        debug_assert!(self.nodes[i].awake, "pending data must keep {id} awake");

        // Data may not be sent during an ATIM window, and a frame may not
        // straddle the next beacon boundary.
        if self.psm {
            let blocked_by_window = self.timing.in_atim_window(now);
            let overruns = now + self.data_air > self.timing.next_frame_start(now);
            if blocked_by_window || overruns {
                let from = if blocked_by_window {
                    self.timing.earliest_data_time(now)
                } else {
                    self.timing
                        .earliest_data_time(self.timing.next_frame_start(now))
                };
                let at = self.backoff.next_data_attempt(from, &mut self.nodes[i].rng);
                self.queue.schedule(at, Ev::DataAttempt(i as u32, intent));
                return;
            }
        }
        if self.channel.is_transmitting(id) || self.channel.carrier_busy(id) {
            let at = self.backoff.next_data_attempt(now, &mut self.nodes[i].rng);
            self.queue.schedule(at, Ev::DataAttempt(i as u32, intent));
            return;
        }
        self.clear_guard(i, intent);
        let contents = self.nodes[i].mac.packet_contents(self.k);
        let frame = Frame::data(id, contents, intent == DataIntent::Immediate);
        let end = self.channel.begin_tx(now, frame, self.data_air);
        self.nodes[i].meter.set_state(now, RadioState::Transmit);
        self.queue.schedule(end, Ev::TxEnd(i as u32));
    }

    fn clear_guard(&mut self, i: usize, intent: DataIntent) {
        match intent {
            DataIntent::Normal => self.nodes[i].normal_scheduled = false,
            DataIntent::Immediate => self.nodes[i].immediate_scheduled = false,
        }
    }

    fn on_tx_end(&mut self, now: SimTime, i: usize) {
        // Take the buffer so the channel and node state can be borrowed
        // together; it goes back (with its capacity) at the end.
        let mut deliveries = std::mem::take(&mut self.deliveries);
        let frame = self
            .channel
            .end_tx_into(now, NodeId(i as u32), &mut deliveries);
        self.nodes[i].meter.set_state(now, RadioState::Idle);
        match frame.kind {
            FrameKind::Beacon => {}
            FrameKind::Atim { .. } => {
                self.atim_tx += 1;
                for d in &deliveries {
                    let r = d.receiver.index();
                    if !self.nodes[r].awake || self.nodes[r].awake_since > d.started {
                        continue;
                    }
                    if !d.clean {
                        self.collisions += 1;
                        continue;
                    }
                    self.nodes[r].mac.receive_atim();
                }
            }
            FrameKind::Data { updates, immediate } => {
                self.data_tx += 1;
                if immediate {
                    self.immediate_tx += 1;
                    self.nodes[i].mac.mark_immediate_sent();
                } else {
                    self.nodes[i].mac.mark_normal_sent();
                }
                for d in &deliveries {
                    let r = d.receiver.index();
                    if !self.nodes[r].awake || self.nodes[r].awake_since > d.started {
                        continue;
                    }
                    // Adaptive PBBF: any audible data frame (even a
                    // collision or a duplicate) counts as overheard
                    // activity — the Section-6 p signal.
                    if let Some(ctl) = &mut self.nodes[r].adapt {
                        ctl.observe_transmission();
                    }
                    if !d.clean {
                        self.collisions += 1;
                        continue;
                    }
                    let fresh = self.nodes[r].mac.receive_data(&updates);
                    for id in fresh {
                        let row = &mut self.receptions[id as usize];
                        if row[r].is_none() {
                            row[r] = Some(now);
                        }
                    }
                    if self.nodes[r].mac.has_pending_immediate() {
                        self.schedule_immediate_attempt(now, r);
                    }
                    // A queued normal forward waits for the next ATIM
                    // window; `begin_frame`/`on_window_end` pick it up.
                }
            }
        }
        self.deliveries = deliveries;
    }

    fn into_stats(self) -> NetRunStats {
        let topo = self.channel.topology();
        let hop_distance = topo.hop_distances(self.source);
        let energy_joules = self
            .nodes
            .iter()
            .map(|n| n.meter.joules_at(self.duration))
            .collect();
        NetRunStats {
            source: self.source,
            hop_distance,
            gen_times: self.gen_times,
            receptions: self.receptions,
            energy_joules,
            data_tx: self.data_tx,
            atim_tx: self.atim_tx,
            immediate_tx: self.immediate_tx,
            collisions: self.collisions,
            mean_degree: topo.mean_degree(),
            adaptive_trace: self.adaptive_trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbbf_core::PbbfParams;

    fn cfg(duration: f64) -> NetConfig {
        let mut c = NetConfig::table2();
        c.duration_secs = duration;
        c
    }

    fn pbbf(p: f64, q: f64) -> NetMode {
        NetMode::SleepScheduled(PbbfParams::new(p, q).unwrap())
    }

    #[test]
    fn psm_delivers_reliably() {
        let sim = NetSim::new(cfg(300.0), NetMode::SleepScheduled(PbbfParams::PSM));
        let s = sim.run(1);
        assert_eq!(s.updates_generated(), 3);
        assert!(
            s.mean_delivery_ratio() > 0.9,
            "ratio {}",
            s.mean_delivery_ratio()
        );
        assert_eq!(s.immediate_tx, 0, "PSM never sends immediately");
        assert!(s.atim_tx > 0, "PSM announces every broadcast");
    }

    #[test]
    fn always_on_is_fast_and_reliable() {
        let sim = NetSim::new(cfg(300.0), NetMode::AlwaysOn);
        let s = sim.run(2);
        assert!(
            s.mean_delivery_ratio() > 0.9,
            "ratio {}",
            s.mean_delivery_ratio()
        );
        assert_eq!(s.atim_tx, 0, "no PSM structure");
        // Latency well under one beacon interval at every hop count.
        let l2 = s.mean_latency_at_hops(2);
        if let Some(l) = l2 {
            assert!(l < 10.0, "2-hop latency {l}");
        }
    }

    #[test]
    fn psm_latency_about_one_beacon_interval_per_hop() {
        let sim = NetSim::new(cfg(500.0), NetMode::SleepScheduled(PbbfParams::PSM));
        let s = sim.run(3);
        let l1 = s.mean_latency_at_hops(1).expect("1-hop nodes reached");
        let l2 = s.mean_latency_at_hops(2).expect("2-hop nodes reached");
        // First hop leaves in the generation interval (≈ AW + access);
        // the second waits for the next interval.
        assert!(l1 < 6.0, "1-hop {l1}");
        assert!((6.0..20.0).contains(&l2), "2-hop {l2}");
        assert!(
            l2 > l1 + 5.0,
            "each extra hop costs about a beacon interval"
        );
    }

    #[test]
    fn energy_ordering_no_psm_vs_psm_vs_pbbf() {
        let psm = NetSim::new(cfg(300.0), NetMode::SleepScheduled(PbbfParams::PSM))
            .run(4)
            .energy_per_update();
        let pbbf_mid = NetSim::new(cfg(300.0), pbbf(0.25, 0.5))
            .run(4)
            .energy_per_update();
        let no_psm = NetSim::new(cfg(300.0), NetMode::AlwaysOn)
            .run(4)
            .energy_per_update();
        assert!(psm < pbbf_mid, "PSM {psm} < PBBF(q=0.5) {pbbf_mid}");
        assert!(
            pbbf_mid < no_psm,
            "PBBF(q=0.5) {pbbf_mid} < NO PSM {no_psm}"
        );
        // Fig. 13 scale: PSM saves about 2+ J/update over NO PSM.
        assert!(no_psm - psm > 1.5, "saving {}", no_psm - psm);
    }

    #[test]
    fn energy_grows_with_q_not_p() {
        let base = cfg(300.0);
        let e_low = NetSim::new(base, pbbf(0.25, 0.1))
            .run(5)
            .energy_per_update();
        let e_high = NetSim::new(base, pbbf(0.25, 0.9))
            .run(5)
            .energy_per_update();
        assert!(e_high > e_low * 1.5, "q drives energy: {e_low} -> {e_high}");
        let e_p1 = NetSim::new(base, pbbf(0.05, 0.5))
            .run(6)
            .energy_per_update();
        let e_p2 = NetSim::new(base, pbbf(0.5, 0.5)).run(6).energy_per_update();
        let rel = (e_p1 - e_p2).abs() / e_p1;
        assert!(rel < 0.15, "p barely affects energy: {e_p1} vs {e_p2}");
    }

    #[test]
    fn high_p_low_q_degrades_reliability() {
        let good = NetSim::new(cfg(300.0), pbbf(0.5, 0.9))
            .run(7)
            .mean_delivery_ratio();
        let bad = NetSim::new(cfg(300.0), pbbf(0.5, 0.05))
            .run(7)
            .mean_delivery_ratio();
        assert!(bad < good, "q rescues reliability: {bad} !< {good}");
    }

    #[test]
    fn runs_are_deterministic() {
        let sim = NetSim::new(cfg(200.0), pbbf(0.5, 0.5));
        let a = sim.run(42);
        let b = sim.run(42);
        assert_eq!(a.receptions, b.receptions);
        assert_eq!(a.data_tx, b.data_tx);
        assert_eq!(a.energy_joules, b.energy_joules);
        let c = sim.run(43);
        assert!(a.receptions != c.receptions || a.data_tx != c.data_tx);
    }

    #[test]
    fn adaptive_mode_tunes_parameters_and_delivers() {
        use pbbf_core::adaptive::AdaptiveConfig;
        // Start from conservative parameters; the busy code-distribution
        // channel should pull p up, and full delivery should keep q low.
        let initial = PbbfParams::new(0.1, 0.3).unwrap();
        let sim = NetSim::new(
            cfg(400.0),
            NetMode::Adaptive(AdaptiveConfig::default_for(initial)),
        );
        let s = sim.run(11);
        assert!(!s.adaptive_trace.is_empty(), "trace recorded every beacon");
        // Parameters moved away from the initial point.
        let (p_last, q_last) = *s.adaptive_trace.last().unwrap();
        assert!(
            (p_last - 0.1).abs() > 0.05 || (q_last - 0.3).abs() > 0.05,
            "controller must react: trace ends at ({p_last}, {q_last})"
        );
        // Adaptation must not wreck delivery.
        assert!(
            s.mean_delivery_ratio() > 0.6,
            "ratio {}",
            s.mean_delivery_ratio()
        );
        // Static modes record no trace.
        let st = NetSim::new(cfg(200.0), NetMode::SleepScheduled(initial)).run(11);
        assert!(st.adaptive_trace.is_empty());
    }

    #[test]
    fn adaptive_q_rises_under_forced_losses() {
        use pbbf_core::adaptive::AdaptiveConfig;
        // Force losses: start with aggressive immediate forwarding and no
        // listeners (p = 1, q at floor) — nodes detect sequence holes and
        // must raise q over time.
        let mut acfg = AdaptiveConfig::default_for(PbbfParams::new(1.0, 0.05).unwrap());
        acfg.p_step = 0.0; // isolate the q loop
        let sim = NetSim::new(cfg(500.0), NetMode::Adaptive(acfg));
        let s = sim.run(12);
        let early_q = s.adaptive_trace[2].1;
        let late_q = s.adaptive_trace.last().unwrap().1;
        assert!(
            late_q > early_q,
            "detected holes must raise q: {early_q} -> {late_q}"
        );
    }

    #[test]
    fn incremental_channel_matches_brute_reference() {
        // Whole-run equivalence: the incremental engine and the brute
        // reference must produce identical stats for every seed, including
        // a dense (Δ = 18) contention-heavy scenario.
        for seed in [1, 7, 42] {
            let sim = NetSim::new(cfg(300.0), pbbf(0.5, 0.5));
            assert_eq!(sim.run(seed), sim.run_brute(seed), "seed {seed}");
        }
        let mut dense = cfg(300.0);
        dense.delta = 18.0;
        let sim = NetSim::new(dense, NetMode::AlwaysOn);
        let s = sim.run(8);
        assert_eq!(s, sim.run_brute(8));
        assert!(s.collisions > 0, "contention exercised the collision path");
    }

    #[test]
    fn collisions_happen_under_contention() {
        // Dense network, always-on flooding: plenty of concurrent senders.
        let mut c = cfg(300.0);
        c.delta = 18.0;
        let s = NetSim::new(c, NetMode::AlwaysOn).run(8);
        assert!(s.collisions > 0, "no collisions in a dense flood?");
    }

    #[test]
    fn stats_bookkeeping_consistent() {
        let s = NetSim::new(cfg(300.0), pbbf(0.75, 0.75)).run(9);
        assert!(s.immediate_tx <= s.data_tx);
        assert_eq!(s.gen_times.len(), s.receptions.len());
        assert_eq!(s.energy_joules.len(), 50);
        assert!(s.mean_degree > 3.0, "Δ=10 deployment");
        // Source "receives" its own updates at generation time.
        for (u, row) in s.receptions.iter().enumerate() {
            assert_eq!(row[s.source.index()], Some(s.gen_times[u]));
        }
    }
}
