//! The discrete-event loop composing app, PBBF, PSM, CSMA, radio, channel.
//!
//! # The active-set event loop
//!
//! PSM gives every node two pieces of per-beacon bookkeeping: wake for
//! the ATIM window at each frame start, and run the Figure-3 sleep
//! decision at each window end. The original runner walked all `n` nodes
//! in both handlers — O(n) per beacon interval even when the network was
//! asleep and idle, which made the event loop (not the channel) the
//! bottleneck of sparse low-duty-cycle scenarios.
//!
//! This runner is O(active) per beacon instead:
//!
//! * **Active sets** ([`ActiveSet`]) track the nodes each boundary
//!   handler must process eagerly — at frame starts the nodes with an
//!   announce to contend (`MacState::pending_work().frame_start`), at
//!   window ends the nodes with pending data sends to schedule
//!   (`.window_end`). Membership is refreshed at every MAC transition
//!   point (`source_update`, `receive_data`, `mark_*_sent`,
//!   `begin_frame`, `announce_now`). Handlers sweep members in ascending
//!   node order so events enter the queue exactly as the full walk
//!   inserted them (FIFO tie-breaking preserved).
//! * **Lazy boundary settling** covers everyone else: each node carries
//!   a cursor of boundaries already applied (`NodeRt::applied`), and
//!   [`Runner::settle`] brings it up to date whenever the node is next
//!   touched (a delivery, a generated update, or `into_stats`). *How*
//!   the missed boundaries are settled is the
//!   [`BoundaryEngine`](crate::BoundaryEngine) choice:
//!
//!   - [`Geometric`](crate::BoundaryEngine::Geometric) (default) —
//!     **geometric skip**: the skipped `(frame start, window end)` pairs
//!     are settled in closed form. The length of each run of "sleep"
//!     decisions is drawn directly from a geometric distribution
//!     (`MacState::skip_boundaries`, one RNG draw per run instead of one
//!     Bernoulli per boundary) and the run's energy is credited in O(1)
//!     (`EnergyMeter::accrue_batch` + `jump_to_secs`): per skipped frame,
//!     one ATIM window of idle plus one data phase of idle or sleep. A
//!     node asleep through a hundred beacon intervals costs a handful of
//!     arithmetic operations. This relaxes the per-node RNG stream
//!     *layout* (values for a fixed seed move), but the per-boundary
//!     decisions keep exactly the Figure-3 distribution —
//!     `tests/boundary_equivalence.rs` pins the two engines together
//!     statistically, and the `q = 0` / `q = 1` endpoints stay exact.
//!
//!   - [`Dense`](crate::BoundaryEngine::Dense) — exact per-boundary
//!     replay at original timestamps, consuming the node's RNG
//!     substreams in the original order: bit-for-bit identical to the
//!     deleted per-node walk (`tests/run_active_vs_seed.rs` pins that
//!     against fingerprints captured from it).
//!
//!   Boundaries a batch cannot see uniformly — a leading window end
//!   whose sleep decision may hinge on an ATIM heard this window, or a
//!   trailing frame start — are replayed exactly on both engines.
//!
//! * **Rare-event frame skip**
//!   ([`FrameSkip`](crate::BoundaryEngine::FrameSkip)) removes the last
//!   O(sim-time) cost: the *global* loop. Even with every node settled
//!   lazily, the geometric engine still pops one `FrameStart` and one
//!   `WindowEnd` event per beacon interval — pure bookkeeping when no
//!   flood is in flight. Under frame skip, a frame start that finds the
//!   network **globally quiescent** (both boundary active sets empty,
//!   no ATIM/data/`TxEnd` event pending — an O(1) check against live
//!   counters) fast-forwards the boundary bookkeeping over every whole
//!   frame before the next traffic arrival (the generation schedule is
//!   mirrored in [`Runner::next_gen`]) and reschedules the frame start
//!   there. The skipped events were provably no-ops — empty sweeps over
//!   empty sets — so a `FrameSkip` run is **bitwise identical** to the
//!   `Geometric` run of the same seed at every `q`, not merely in
//!   distribution: the engine changes where the loop spends its time,
//!   never what it computes. Cost becomes O(traffic) instead of
//!   O(sim-time × nodes) in the λ → 0 regime the paper's energy-latency
//!   frontier lives in.
//!
//! Adaptive mode keeps a full walk: closing every node's controller
//! window (and tracing mean parameters) at each beacon is inherently
//! O(n), and its per-window `q` changes feed the sleep coin.

use std::sync::Arc;

use pbbf_core::adaptive::AdaptiveController;
use pbbf_core::ForwardDecision;
use pbbf_des::{EventQueue, SimDuration, SimRng, SimTime};
use pbbf_mac::{BackoffPolicy, DataIntent, MacState, PsmTiming};
use pbbf_radio::{
    BruteChannel, Channel, CollisionChannel, Delivery, EnergyMeter, Frame, FrameKind, RadioState,
};
use pbbf_topology::{NodeId, RandomDeployment};

use crate::{ActiveSet, BoundaryEngine, CachedDeployment, NetConfig, NetMode, NetRunStats};

/// The realistic simulator: construct once, [`NetSim::run`] per seed.
///
/// Every run draws a fresh connected random deployment, a fresh random
/// source node, and fresh protocol randomness — all deterministically from
/// the seed, matching the paper's "each data point is averaged over ten
/// runs" methodology (each run is a new scenario).
#[derive(Debug, Clone)]
pub struct NetSim {
    config: NetConfig,
    mode: NetMode,
}

impl NetSim {
    /// Creates a simulator for the given scenario and protocol mode.
    #[must_use]
    pub fn new(config: NetConfig, mode: NetMode) -> Self {
        Self { config, mode }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// The protocol mode.
    #[must_use]
    pub fn mode(&self) -> NetMode {
        self.mode
    }

    /// Draws the deployment and source node that [`NetSim::run`] would
    /// use for `seed` — the unit of work the
    /// [`DeploymentCache`](crate::DeploymentCache) stores and shares
    /// across protocol modes.
    ///
    /// # Panics
    ///
    /// Panics if no connected deployment can be drawn within
    /// `cfg.max_deploy_attempts` (raise Δ or the attempt budget).
    #[must_use]
    pub fn draw_deployment(cfg: &NetConfig, seed: u64) -> CachedDeployment {
        let root = SimRng::new(seed);
        let mut deploy_rng = root.substream(0);
        let deployment = RandomDeployment::connected_with_density(
            cfg.nodes,
            cfg.range_m,
            cfg.delta,
            cfg.max_deploy_attempts,
            &mut deploy_rng,
        )
        .expect("no connected deployment found; raise delta or attempts");
        let mut source_rng = root.substream(1);
        let source = NodeId(source_rng.below(cfg.nodes as u64) as u32);
        CachedDeployment {
            topology: Arc::new(deployment.into_topology()),
            source,
        }
    }

    /// Executes one fully deterministic run.
    ///
    /// # Panics
    ///
    /// Panics if no connected deployment can be drawn within
    /// `config.max_deploy_attempts` (raise Δ or the attempt budget).
    #[must_use]
    pub fn run(&self, seed: u64) -> NetRunStats {
        self.run_with(seed, Channel::new)
    }

    /// [`NetSim::run`] over the reference [`BruteChannel`] instead of the
    /// incremental engine. Kept for the channel-equivalence tests and the
    /// baseline benches — results must be identical to [`NetSim::run`]
    /// for every seed.
    ///
    /// # Panics
    ///
    /// Panics if no connected deployment can be drawn within
    /// `config.max_deploy_attempts` (raise Δ or the attempt budget).
    #[must_use]
    pub fn run_brute(&self, seed: u64) -> NetRunStats {
        self.run_with(seed, BruteChannel::new)
    }

    /// Executes one run on an already-drawn scenario (typically from a
    /// [`DeploymentCache`](crate::DeploymentCache)), with protocol
    /// randomness from `seed`.
    ///
    /// `run_on(seed, &NetSim::draw_deployment(cfg, seed))` is bitwise
    /// identical to `run(seed)`: the deployment draw and the per-node
    /// protocol substreams are independent streams of the same root.
    ///
    /// The scenario's topology is *shared* into the run's channel (an
    /// [`Arc`] clone), never copied — every `(mode, run)` job of a sweep
    /// executes over the same adjacency allocation across threads.
    #[must_use]
    pub fn run_on(&self, seed: u64, deployment: &CachedDeployment) -> NetRunStats {
        self.run_core(
            seed,
            Arc::clone(&deployment.topology),
            deployment.source,
            Channel::new,
        )
    }

    fn run_with<C: CollisionChannel>(
        &self,
        seed: u64,
        channel: impl FnOnce(Arc<pbbf_topology::Topology>) -> C,
    ) -> NetRunStats {
        let drawn = Self::draw_deployment(&self.config, seed);
        self.run_core(seed, drawn.topology, drawn.source, channel)
    }

    fn run_core<C: CollisionChannel>(
        &self,
        seed: u64,
        topology: Arc<pbbf_topology::Topology>,
        source: NodeId,
        channel: impl FnOnce(Arc<pbbf_topology::Topology>) -> C,
    ) -> NetRunStats {
        let root = SimRng::new(seed);
        let mut runner = Runner::new(&self.config, self.mode, channel(topology), source, &root);
        runner.prime();
        runner.drain();
        runner.into_stats()
    }
}

#[derive(Debug)]
enum Ev {
    FrameStart,
    WindowEnd,
    GenUpdate,
    AtimAttempt(u32),
    DataAttempt(u32, DataIntent),
    TxEnd(u32),
}

#[derive(Debug)]
struct NodeRt {
    mac: MacState,
    meter: EnergyMeter,
    awake: bool,
    awake_since: SimTime,
    rng: SimRng,
    atim_scheduled: bool,
    normal_scheduled: bool,
    immediate_scheduled: bool,
    /// Lazy-replay cursor: boundaries applied to this node so far
    /// (eagerly or by [`Runner::settle`]). Boundaries alternate — frame
    /// start of beacon `f` is number `2f`, its window end `2f + 1` — so
    /// one counter encodes the position and `applied >= fired` is the
    /// settled check.
    applied: u32,
    /// Present only in [`NetMode::Adaptive`]: the Section-6 controller
    /// plus last-window snapshots of its loss-signal inputs. Boxed so
    /// the ~100-byte controller does not bloat every node of the static
    /// modes — `NodeRt` size is what the delivery loops stream through
    /// cache.
    adapt: Option<Box<AdaptiveController>>,
    holes_snapshot: u64,
    known_snapshot: u64,
}

struct Runner<C: CollisionChannel> {
    psm: bool,
    adaptive: bool,
    /// The active-set fast path: boundary handlers sweep only active
    /// nodes and everyone else is settled lazily. Off for always-on (no
    /// beacon structure at all) and adaptive mode (every beacon closes
    /// every node's observation window, an inherently dense walk).
    lazy: bool,
    /// Exact per-boundary replay instead of geometric-skip batching —
    /// from the resolved [`BoundaryEngine`] choice (config plus the
    /// `Auto` probe plus the `PBBF_DENSE_BOUNDARIES` override).
    dense_boundaries: bool,
    /// Whether globally quiescent frames are jumped wholesale
    /// ([`BoundaryEngine::FrameSkip`]).
    frame_skip: bool,
    /// Pending ATIM/data/`TxEnd` events in the queue — the traffic half
    /// of the frame-skip quiescence check. Maintained by
    /// [`Runner::sched_traffic`] and the drain loop.
    traffic_events: u32,
    /// The scheduled time of the next `GenUpdate` event, mirrored so
    /// the frame-skip jump knows where the next traffic arrival lands
    /// without searching the queue.
    next_gen: Option<SimTime>,
    /// ATIM-window length in seconds — the per-frame idle stint every
    /// settled boundary pair credits.
    aw_secs: f64,
    /// Data-phase length (beacon interval minus ATIM window) in seconds
    /// — the per-frame stint credited idle or sleep by the coin.
    data_secs: f64,
    k: usize,
    timing: PsmTiming,
    backoff: BackoffPolicy,
    data_air: SimDuration,
    atim_air: SimDuration,
    update_period: SimDuration,
    duration: SimTime,
    channel: C,
    nodes: Vec<NodeRt>,
    queue: EventQueue<Ev>,
    source: NodeId,
    /// Boundary events already fired (same numbering as
    /// `NodeRt::applied`) — the target lazy nodes settle to.
    fired: u32,
    /// Nodes the frame-start handler must process (pending announces).
    frame_set: ActiveSet,
    /// Nodes the window-end handler must process (pending data sends).
    window_set: ActiveSet,
    /// Scratch for sorted active-set sweeps.
    sweep: Vec<u32>,
    /// Boundary timestamps in seconds, one entry per fired frame
    /// (`frame_secs[f]` = start of frame `f`, `window_secs[f]` = its
    /// window end), appended by the frame-start handler **under the
    /// dense engine only**. Dense settling replays the same `set_state`
    /// instants for thousands of nodes; converting each boundary to
    /// seconds once — instead of dividing nanoseconds per node per
    /// boundary — keeps the replay loop in integer/flag work. The
    /// skipping engines touch only O(1) boundaries per settle, so they
    /// leave these empty and convert on demand — bit-identical values
    /// (boundaries are exact integer-nanosecond multiples, converted
    /// with the same division).
    frame_secs: Vec<f64>,
    window_secs: Vec<f64>,
    gen_times: Vec<SimTime>,
    receptions: Vec<Vec<Option<SimTime>>>,
    /// Reused per-`end_tx` delivery buffer: the channel writes into it so
    /// the steady-state event loop makes no delivery allocations.
    deliveries: Vec<Delivery>,
    data_tx: u64,
    atim_tx: u64,
    immediate_tx: u64,
    collisions: u64,
    /// Mean `(p, q)` across nodes at each beacon interval (adaptive mode).
    adaptive_trace: Vec<(f64, f64)>,
}

impl<C: CollisionChannel> Runner<C> {
    fn new(cfg: &NetConfig, mode: NetMode, channel: C, source: NodeId, root: &SimRng) -> Self {
        let params = match mode {
            NetMode::AlwaysOn => pbbf_core::PbbfParams::ALWAYS_ON,
            NetMode::SleepScheduled(p) => p,
            NetMode::Adaptive(a) => a.initial,
        };
        let nodes: Vec<NodeRt> = (0..cfg.nodes)
            .map(|i| NodeRt {
                mac: MacState::new(params, root.substream(1000 + i as u64)),
                meter: EnergyMeter::new(cfg.power),
                awake: true,
                awake_since: SimTime::ZERO,
                rng: root.substream(2000 + i as u64),
                atim_scheduled: false,
                normal_scheduled: false,
                immediate_scheduled: false,
                applied: 0,
                adapt: match mode {
                    NetMode::Adaptive(a) => Some(Box::new(AdaptiveController::new(a))),
                    _ => None,
                },
                holes_snapshot: 0,
                known_snapshot: 0,
            })
            .collect();
        let phy = cfg.phy;
        // One row per generated update lands in `gen_times`/`receptions`;
        // pre-size them so the steady-state loop never reallocates.
        let expected_updates = cfg.expected_updates() as usize;
        // Degree ≈ Δ bounds the per-`end_tx` delivery count.
        let expected_degree = cfg.delta.ceil() as usize + 1;
        let psm = !matches!(mode, NetMode::AlwaysOn);
        let adaptive = matches!(mode, NetMode::Adaptive(_));
        let timing = PsmTiming::new(
            SimDuration::from_secs(cfg.beacon_interval_secs),
            SimDuration::from_secs(cfg.atim_window_secs),
        );
        let engine = cfg.boundary_engine.resolve(cfg);
        Self {
            psm,
            adaptive,
            lazy: psm && !adaptive,
            dense_boundaries: engine == BoundaryEngine::Dense,
            frame_skip: engine == BoundaryEngine::FrameSkip,
            traffic_events: 0,
            next_gen: None,
            aw_secs: timing.atim_window().as_secs(),
            data_secs: (timing.beacon_interval() - timing.atim_window()).as_secs(),
            k: cfg.k,
            timing,
            backoff: BackoffPolicy::mica2(),
            data_air: phy.airtime(phy.data_bytes),
            atim_air: phy.airtime(phy.atim_bytes),
            update_period: SimDuration::from_secs(1.0 / cfg.lambda),
            duration: SimTime::from_secs(cfg.duration_secs),
            channel,
            queue: EventQueue::new(),
            source,
            fired: 0,
            frame_set: ActiveSet::new(nodes.len()),
            window_set: ActiveSet::new(nodes.len()),
            sweep: Vec::new(),
            frame_secs: Vec::new(),
            window_secs: Vec::new(),
            nodes,
            gen_times: Vec::with_capacity(expected_updates),
            receptions: Vec::with_capacity(expected_updates),
            deliveries: Vec::with_capacity(expected_degree),
            data_tx: 0,
            atim_tx: 0,
            immediate_tx: 0,
            collisions: 0,
            adaptive_trace: Vec::new(),
        }
    }

    fn prime(&mut self) {
        if self.psm {
            self.queue.schedule(SimTime::ZERO, Ev::FrameStart);
        }
        let first_update = SimTime::ZERO + self.timing.atim_window() / 2;
        if first_update <= self.duration {
            self.next_gen = Some(first_update);
            self.queue.schedule(first_update, Ev::GenUpdate);
        }
    }

    fn drain(&mut self) {
        while let Some((now, ev)) = self.queue.pop() {
            if now > self.duration {
                break;
            }
            match ev {
                Ev::FrameStart => self.on_frame_start(now),
                Ev::WindowEnd => self.on_window_end(now),
                Ev::GenUpdate => self.on_gen_update(now),
                Ev::AtimAttempt(i) => {
                    self.traffic_events -= 1;
                    self.on_atim_attempt(now, i as usize);
                }
                Ev::DataAttempt(i, intent) => {
                    self.traffic_events -= 1;
                    self.on_data_attempt(now, i as usize, intent);
                }
                Ev::TxEnd(i) => {
                    self.traffic_events -= 1;
                    self.on_tx_end(now, i as usize);
                }
            }
        }
    }

    /// Schedules a traffic event (ATIM/data attempt or `TxEnd`), keeping
    /// the frame-skip quiescence counter in sync with the queue. Every
    /// traffic schedule site must go through here; the drain loop
    /// decrements on pop.
    #[inline]
    fn sched_traffic(&mut self, at: SimTime, ev: Ev) {
        self.traffic_events += 1;
        self.queue.schedule(at, ev);
    }

    /// The [`BoundaryEngine::FrameSkip`] jump, tried at the top of every
    /// lazy frame start. When the network is globally quiescent — both
    /// boundary active sets empty and no traffic event pending, an O(1)
    /// check — every whole frame before the next generated update is
    /// pure bookkeeping: its frame-start and window-end handlers would
    /// sweep empty sets, touch no node, and draw no randomness. This
    /// settles that bookkeeping wholesale (the boundary-seconds tables
    /// and the global `fired` cursor) and reschedules the frame start at
    /// the first frame that can carry traffic, leaving per-node settling
    /// exactly as lazy as the geometric engine left it.
    ///
    /// Returns whether the jump was taken (the caller's frame-start work
    /// is then subsumed). The rescheduled frame start is a fresh event,
    /// not a fall-through: a `GenUpdate` landing exactly on the target
    /// boundary was scheduled earlier and must pop first, exactly as it
    /// would have against the serially-scheduled frame start.
    fn try_skip_frames(&mut self, now: SimTime) -> bool {
        if self.traffic_events != 0 || !self.frame_set.is_empty() || !self.window_set.is_empty() {
            return false;
        }
        let f = self.fired / 2;
        debug_assert_eq!(now, self.timing.frame_time(u64::from(f)));
        let beacon_nanos = self.timing.beacon_interval().as_nanos();
        let last_frame = (self.duration.as_nanos() / beacon_nanos) as u32;
        let target = match self.next_gen {
            Some(t) => ((t.as_nanos() / beacon_nanos) as u32).min(last_frame),
            None => last_frame,
        };
        if target <= f {
            return false;
        }
        // O(1): no per-skipped-frame work at all. The boundary-seconds
        // tables are a dense-engine cache (see their field docs), so the
        // jump is just the cursor advance and the rescheduled frame
        // start — later settles convert the skipped boundaries to
        // seconds on demand, bit-identically.
        self.fired = 2 * target;
        self.queue
            .schedule(self.timing.frame_time(u64::from(target)), Ev::FrameStart);
        true
    }

    /// Re-derives node `i`'s active-set membership from its MAC flags.
    /// Called at every transition point that can change pending work.
    #[inline]
    fn refresh_sets(&mut self, i: usize) {
        if !self.lazy {
            return;
        }
        let work = self.nodes[i].mac.pending_work();
        self.frame_set.set(i, work.frame_start);
        self.window_set.set(i, work.window_end);
    }

    /// Applies the frame-start boundary of beacon interval `frame` to
    /// node `i`: wake it for the ATIM window and begin its MAC frame.
    /// Returns whether the node wants to contend for an ATIM.
    fn apply_frame_start(&mut self, i: usize, frame: u32) -> bool {
        let node = &mut self.nodes[i];
        node.applied = 2 * frame + 1;
        if !node.awake {
            let t = self.timing.frame_time(u64::from(frame));
            node.meter.set_state(t, RadioState::Idle);
            node.awake = true;
            node.awake_since = t;
        }
        node.mac.begin_frame()
    }

    /// Applies the window-end boundary of beacon interval `frame` to node
    /// `i` inside the `WindowEnd` handler itself: the Figure-3 sleep
    /// decision and its radio-state transition. Only a node with a
    /// pending sleep-state change queries the channel (lazy replay in
    /// [`Runner::settle_replay`] never does — an untouched node cannot
    /// be mid-transmission).
    fn apply_window_end(&mut self, i: usize, frame: u32) {
        let stay = self.nodes[i].mac.sleep_decision();
        self.nodes[i].applied = 2 * frame + 2;
        if !stay && self.nodes[i].awake && !self.channel.is_transmitting(NodeId(i as u32)) {
            let t = self.timing.frame_time(u64::from(frame)) + self.timing.atim_window();
            self.nodes[i].meter.set_state(t, RadioState::Sleep);
            self.nodes[i].awake = false;
        }
    }

    /// Brings node `i` up to the boundaries whose events have already
    /// fired, replaying wake/sleep transitions at their original
    /// timestamps and RNG draws in their original order. O(1) when the
    /// node is already settled; every path that touches a node (a
    /// delivery, a generated update, an attempt, `into_stats`) settles it
    /// first.
    ///
    /// This is the hot loop of sparse scenarios — a node asleep for a
    /// hundred beacon intervals pays for all of them here, in one pass
    /// over cursor-indexed locals — so it works on a single borrow of
    /// the node and the precomputed boundary-seconds tables rather than
    /// going through the eager per-boundary helpers.
    #[inline]
    fn settle(&mut self, i: usize) {
        if self.nodes[i].applied < self.fired {
            self.settle_replay(i);
        }
    }

    /// The out-of-line settle body of [`Runner::settle`] — kept cold so
    /// the settled-already fast path (every delivery in a busy network)
    /// stays a two-compare inline check. Dispatches on the configured
    /// [`BoundaryEngine`].
    fn settle_replay(&mut self, i: usize) {
        debug_assert!(self.lazy, "only the lazy path leaves nodes unsettled");
        // An unsettled node has had no events since before the boundaries
        // being replayed, so it cannot be mid-transmission.
        debug_assert!(
            !self.channel.is_transmitting(NodeId(i as u32)),
            "untouched node {i} cannot be mid-transmission"
        );
        if self.dense_boundaries {
            self.settle_dense(i, self.fired);
        } else {
            self.settle_geometric(i);
        }
    }

    /// Exact per-boundary replay of node `i` up to boundary `target`:
    /// wake/sleep transitions at their original timestamps, RNG draws in
    /// their original order — bit-identical to the deleted per-node
    /// walk. The whole settle under [`BoundaryEngine::Dense`]; the
    /// single-boundary edges of a batch under
    /// [`BoundaryEngine::Geometric`].
    fn settle_dense(&mut self, i: usize, target: u32) {
        let beacon_nanos = self.timing.beacon_interval().as_nanos();
        let atim_nanos = self.timing.atim_window().as_nanos();
        // The tables are filled only under the dense engine; the skipping
        // engines replay at most one boundary per edge here, so the
        // on-demand conversion (bit-identical: exact integer-nanosecond
        // boundaries through the same division) costs nothing that
        // matters.
        let dense = self.dense_boundaries;
        let node = &mut self.nodes[i];
        while node.applied < target {
            let boundary = node.applied;
            node.applied = boundary + 1;
            let frame = boundary >> 1;
            if boundary & 1 == 0 {
                // Frame start: wake for the ATIM window.
                if !node.awake {
                    let secs = if dense {
                        self.frame_secs[frame as usize]
                    } else {
                        SimTime::from_nanos(u64::from(frame) * beacon_nanos).as_secs()
                    };
                    node.meter.set_state_secs(secs, RadioState::Idle);
                    node.awake = true;
                    node.awake_since = SimTime::from_nanos(u64::from(frame) * beacon_nanos);
                }
                let wants = node.mac.begin_frame();
                debug_assert!(
                    !wants,
                    "node {i} with announce work must be in the frame-start active set"
                );
                let _ = wants;
            } else {
                // Window end: the Figure-3 sleep decision.
                if !node.mac.sleep_decision() && node.awake {
                    let secs = if dense {
                        self.window_secs[frame as usize]
                    } else {
                        SimTime::from_nanos(u64::from(frame) * beacon_nanos + atim_nanos).as_secs()
                    };
                    node.meter.set_state_secs(secs, RadioState::Sleep);
                    node.awake = false;
                }
            }
        }
    }

    /// Geometric-skip settling of node `i` up to [`Runner::fired`]: the
    /// interior `(frame start, window end)` pairs are jumped over in
    /// closed form; only the batch's ragged edges replay exactly.
    fn settle_geometric(&mut self, i: usize) {
        let fired = self.fired;
        // A leading window end sees state the batch cannot assume away —
        // an ATIM heard in that window keeps the node awake
        // deterministically — so it replays exactly.
        if self.nodes[i].applied & 1 == 1 {
            self.settle_dense(i, (self.nodes[i].applied + 1).min(fired));
        }
        let pairs = (fired - self.nodes[i].applied) / 2;
        if pairs > 0 {
            self.settle_pairs_batched(i, pairs);
        }
        // A trailing frame start (the node is being touched inside an
        // ATIM window) is a lone wake: replay exactly.
        if self.nodes[i].applied < fired {
            self.settle_dense(i, fired);
        }
    }

    /// The closed-form core: settles `pairs` consecutive
    /// `(frame start, window end)` boundary pairs of idle node `i` with
    /// one [`MacState::skip_boundaries`] batch (geometric run-length
    /// draws) and O(1) energy accounting, instead of `2 × pairs`
    /// replayed steps.
    ///
    /// Per skipped frame the node is awake for the ATIM window
    /// (`aw_secs` idle) and then idle or asleep for the data phase
    /// (`data_secs`) by that window end's coin; the last pair's data
    /// phase lies *beyond* the settled span, so its coin only fixes the
    /// state the node leaves in.
    fn settle_pairs_batched(&mut self, i: usize, pairs: u32) {
        let g0 = self.nodes[i].applied / 2;
        // Only the skipping engines batch, and they leave the
        // boundary-seconds tables empty: convert the two touched
        // boundaries on demand (bit-identical to the dense engine's
        // table entries).
        let g0_secs = self.timing.frame_time(u64::from(g0)).as_secs();
        let node = &mut self.nodes[i];
        debug_assert_eq!(node.applied & 1, 0, "batch must start at a frame start");
        // Frame start `g0`: the node is awake for the ATIM window
        // whatever state it entered in. A real transition (not a jump):
        // it also closes the books on the stretch since the node's last
        // transition, in whatever state that stretch was spent.
        node.meter.set_state_secs(g0_secs, RadioState::Idle);
        if !node.awake {
            node.awake = true;
            node.awake_since = self.timing.frame_time(u64::from(g0));
        }
        let summary = node.mac.skip_boundaries(pairs);
        let stays_inside = summary.stays_before_last(pairs);
        let sleeps_inside = pairs - 1 - stays_inside;
        node.meter
            .accrue_batch(RadioState::Idle, u64::from(pairs), self.aw_secs);
        node.meter
            .accrue_batch(RadioState::Idle, u64::from(stays_inside), self.data_secs);
        node.meter
            .accrue_batch(RadioState::Sleep, u64::from(sleeps_inside), self.data_secs);
        let last = g0 + pairs - 1;
        let ends_awake = summary.ends_awake(pairs);
        let last_window_secs =
            (self.timing.frame_time(u64::from(last)) + self.timing.atim_window()).as_secs();
        node.meter.jump_to_secs(
            last_window_secs,
            if ends_awake {
                RadioState::Idle
            } else {
                RadioState::Sleep
            },
        );
        node.awake = ends_awake;
        if ends_awake {
            if let Some(j) = summary.last_sleep {
                // Slept last at window end `g0 + j`, so it has been
                // awake since the following frame start.
                node.awake_since = self.timing.frame_time(u64::from(g0 + j + 1));
            }
            // No sleeps at all: awake since before the batch (or since
            // the wake at `g0` above).
        }
        node.applied = 2 * (g0 + pairs);
    }

    fn on_frame_start(&mut self, now: SimTime) {
        if self.lazy {
            if self.frame_skip && self.try_skip_frames(now) {
                return;
            }
            let frame = self.fired / 2;
            if self.dense_boundaries {
                // The skipping engines convert on demand instead (see
                // the `frame_secs` field docs) — their tables stay
                // empty, which is also what lets `try_skip_frames` jump
                // in O(1).
                debug_assert_eq!(self.frame_secs.len(), frame as usize);
                self.frame_secs.push(now.as_secs());
                self.window_secs
                    .push((now + self.timing.atim_window()).as_secs());
            }
            let mut sweep = std::mem::take(&mut self.sweep);
            self.frame_set.sweep(&mut sweep);
            for &i in &sweep {
                let i = i as usize;
                self.settle(i);
                let wants = self.apply_frame_start(i, frame);
                // Every member has announce work (membership is refreshed
                // at each transition), so `begin_frame` left it with a
                // pending normal send: it stays in this set and now needs
                // window-end processing too.
                debug_assert!(wants, "frame-set member {i} had nothing to announce");
                if wants && !self.nodes[i].atim_scheduled {
                    self.nodes[i].atim_scheduled = true;
                    let at = self.backoff.next_atim_attempt(now, &mut self.nodes[i].rng);
                    self.sched_traffic(at, Ev::AtimAttempt(i as u32));
                }
                self.window_set.set(i, true);
            }
            self.sweep = sweep;
            self.fired = 2 * frame + 1;
        } else {
            // Adaptive mode: every beacon closes every node's observation
            // window and records the mean parameters — a dense walk by
            // construction.
            let mut p_sum = 0.0;
            let mut q_sum = 0.0;
            for i in 0..self.nodes.len() {
                let node = &mut self.nodes[i];
                if !node.awake {
                    node.meter.set_state(now, RadioState::Idle);
                    node.awake = true;
                    node.awake_since = now;
                }
                if let Some(ctl) = &mut node.adapt {
                    let holes = node.mac.sequence_holes();
                    let known = node.mac.known_updates().len() as u64;
                    let missed = holes.saturating_sub(node.holes_snapshot);
                    let received = known.saturating_sub(node.known_snapshot);
                    node.holes_snapshot = holes;
                    node.known_snapshot = known;
                    ctl.observe_updates(received, missed);
                    let params = ctl.end_window();
                    node.mac.set_params(params);
                    p_sum += params.p();
                    q_sum += params.q();
                }
                if node.mac.begin_frame() && !node.atim_scheduled {
                    node.atim_scheduled = true;
                    let at = self.backoff.next_atim_attempt(now, &mut node.rng);
                    self.sched_traffic(at, Ev::AtimAttempt(i as u32));
                }
            }
            if self.adaptive {
                let n = self.nodes.len() as f64;
                self.adaptive_trace.push((p_sum / n, q_sum / n));
            }
        }
        self.queue
            .schedule(now + self.timing.atim_window(), Ev::WindowEnd);
        let next = now + self.timing.beacon_interval();
        if next <= self.duration {
            self.queue.schedule(next, Ev::FrameStart);
        }
    }

    fn on_window_end(&mut self, now: SimTime) {
        if self.lazy {
            let frame = self.fired / 2;
            let mut sweep = std::mem::take(&mut self.sweep);
            self.window_set.sweep(&mut sweep);
            for &i in &sweep {
                let i = i as usize;
                self.settle(i);
                self.apply_window_end(i, frame);
                self.schedule_window_attempts(now, i);
            }
            self.sweep = sweep;
            self.fired = 2 * frame + 2;
        } else {
            for i in 0..self.nodes.len() {
                let stay = self.nodes[i].mac.sleep_decision();
                // Only a pending sleep-state change needs the channel
                // queried.
                if !stay && self.nodes[i].awake && !self.channel.is_transmitting(NodeId(i as u32)) {
                    let node = &mut self.nodes[i];
                    node.meter.set_state(now, RadioState::Sleep);
                    node.awake = false;
                }
                self.schedule_window_attempts(now, i);
            }
        }
    }

    /// The window-end contention kickoff: schedules the data-phase
    /// attempts for node `i`'s pending sends (identical for the eager
    /// sweep and the dense walk).
    #[inline]
    fn schedule_window_attempts(&mut self, now: SimTime, i: usize) {
        let node = &mut self.nodes[i];
        if node.mac.has_pending_normal() && !node.normal_scheduled {
            node.normal_scheduled = true;
            let at = self.backoff.next_data_attempt(now, &mut node.rng);
            self.sched_traffic(at, Ev::DataAttempt(i as u32, DataIntent::Normal));
        }
        let node = &mut self.nodes[i];
        if node.mac.has_pending_immediate() && !node.immediate_scheduled {
            node.immediate_scheduled = true;
            let at = self.backoff.next_data_attempt(now, &mut node.rng);
            self.sched_traffic(at, Ev::DataAttempt(i as u32, DataIntent::Immediate));
        }
    }

    fn on_gen_update(&mut self, now: SimTime) {
        let i = self.source.index();
        self.settle(i);
        let id = self.gen_times.len() as u64;
        self.gen_times.push(now);
        let mut row = vec![None; self.nodes.len()];
        row[i] = Some(now);
        self.receptions.push(row);

        let decision = self.nodes[i].mac.source_update(id);
        if self.psm {
            match decision {
                ForwardDecision::EnqueueForNextActiveWindow => {
                    // The paper's source announces in the window the update
                    // arrives in.
                    if self.timing.in_atim_window(now) {
                        self.nodes[i].mac.announce_now();
                        if !self.nodes[i].atim_scheduled {
                            self.nodes[i].atim_scheduled = true;
                            let at = self.backoff.next_atim_attempt(now, &mut self.nodes[i].rng);
                            self.sched_traffic(at, Ev::AtimAttempt(i as u32));
                        }
                    }
                }
                ForwardDecision::SendImmediately => {
                    self.schedule_immediate_attempt(now, i);
                }
            }
        } else {
            self.schedule_immediate_attempt(now, i);
        }
        self.refresh_sets(i);

        let next = now + self.update_period;
        if next <= self.duration {
            self.next_gen = Some(next);
            self.queue.schedule(next, Ev::GenUpdate);
        } else {
            self.next_gen = None;
        }
    }

    /// Schedules an immediate-data attempt respecting the no-data-in-window
    /// rule.
    fn schedule_immediate_attempt(&mut self, now: SimTime, i: usize) {
        if self.nodes[i].immediate_scheduled || !self.nodes[i].mac.has_pending_immediate() {
            return;
        }
        self.nodes[i].immediate_scheduled = true;
        let from = if self.psm {
            self.timing.earliest_data_time(now)
        } else {
            now
        };
        let at = self.backoff.next_data_attempt(from, &mut self.nodes[i].rng);
        self.sched_traffic(at, Ev::DataAttempt(i as u32, DataIntent::Immediate));
    }

    fn on_atim_attempt(&mut self, now: SimTime, i: usize) {
        let id = NodeId(i as u32);
        if !self.nodes[i].mac.has_pending_normal() {
            self.nodes[i].atim_scheduled = false;
            return;
        }
        let window_end = self.timing.window_end(now);
        if !self.timing.in_atim_window(now) || now + self.atim_air > window_end {
            // Too late to announce this window; the data still goes out in
            // the data phase (unannounced), and `begin_frame` re-announces
            // next interval if it remains unsent.
            self.nodes[i].atim_scheduled = false;
            return;
        }
        if self.channel.is_transmitting(id) || self.channel.carrier_busy(id) {
            let at = self.backoff.next_atim_attempt(now, &mut self.nodes[i].rng);
            if at + self.atim_air <= window_end {
                self.sched_traffic(at, Ev::AtimAttempt(i as u32));
            } else {
                self.nodes[i].atim_scheduled = false;
            }
            return;
        }
        self.nodes[i].atim_scheduled = false;
        // Announce work keeps a node in the frame-start set, so it was
        // settled when this frame began (the meter transition below needs
        // that).
        debug_assert!(
            !self.lazy || self.nodes[i].applied >= self.fired,
            "ATIM transmit on unsettled node {id}"
        );
        let contents = self.nodes[i].mac.packet_contents(self.k);
        let end = self
            .channel
            .begin_tx(now, Frame::atim(id, contents), self.atim_air);
        self.nodes[i].meter.set_state(now, RadioState::Transmit);
        self.sched_traffic(end, Ev::TxEnd(i as u32));
    }

    fn on_data_attempt(&mut self, now: SimTime, i: usize, intent: DataIntent) {
        let id = NodeId(i as u32);
        let pending = match intent {
            DataIntent::Normal => self.nodes[i].mac.has_pending_normal(),
            DataIntent::Immediate => self.nodes[i].mac.has_pending_immediate(),
        };
        if !pending {
            self.clear_guard(i, intent);
            return;
        }
        // No settle here: a pending-immediate node's attempt can fire
        // inside the next ATIM window before its frame start was applied
        // (it is not in the frame-start set), but that path only
        // reschedules — node state the boundary affects is not read, and
        // the transmit path below asserts settledness.
        debug_assert!(self.nodes[i].awake, "pending data must keep {id} awake");

        // Data may not be sent during an ATIM window, and a frame may not
        // straddle the next beacon boundary.
        if self.psm {
            let blocked_by_window = self.timing.in_atim_window(now);
            let overruns = now + self.data_air > self.timing.next_frame_start(now);
            if blocked_by_window || overruns {
                let from = if blocked_by_window {
                    self.timing.earliest_data_time(now)
                } else {
                    self.timing
                        .earliest_data_time(self.timing.next_frame_start(now))
                };
                let at = self.backoff.next_data_attempt(from, &mut self.nodes[i].rng);
                self.sched_traffic(at, Ev::DataAttempt(i as u32, intent));
                return;
            }
        }
        if self.channel.is_transmitting(id) || self.channel.carrier_busy(id) {
            let at = self.backoff.next_data_attempt(now, &mut self.nodes[i].rng);
            self.sched_traffic(at, Ev::DataAttempt(i as u32, intent));
            return;
        }
        self.clear_guard(i, intent);
        // Transmitting records a meter transition at `now`, so the node's
        // boundary replay must be current. It is: data transmits only in
        // the data phase, and every pending-send node was eagerly
        // processed at this frame's window end.
        debug_assert!(
            !self.lazy || self.nodes[i].applied >= self.fired,
            "transmit on unsettled node {id}"
        );
        let contents = self.nodes[i].mac.packet_contents(self.k);
        let frame = Frame::data(id, contents, intent == DataIntent::Immediate);
        let end = self.channel.begin_tx(now, frame, self.data_air);
        self.nodes[i].meter.set_state(now, RadioState::Transmit);
        self.sched_traffic(end, Ev::TxEnd(i as u32));
    }

    fn clear_guard(&mut self, i: usize, intent: DataIntent) {
        match intent {
            DataIntent::Normal => self.nodes[i].normal_scheduled = false,
            DataIntent::Immediate => self.nodes[i].immediate_scheduled = false,
        }
    }

    fn on_tx_end(&mut self, now: SimTime, i: usize) {
        // Take the buffer so the channel and node state can be borrowed
        // together; it goes back (with its capacity) at the end.
        let mut deliveries = std::mem::take(&mut self.deliveries);
        let frame = self
            .channel
            .end_tx_into(now, NodeId(i as u32), &mut deliveries);
        self.nodes[i].meter.set_state(now, RadioState::Idle);
        match frame.kind {
            FrameKind::Beacon => {}
            FrameKind::Atim { .. } => {
                self.atim_tx += 1;
                for d in &deliveries {
                    let r = d.receiver.index();
                    self.settle(r);
                    if !self.nodes[r].awake || self.nodes[r].awake_since > d.started {
                        continue;
                    }
                    if !d.clean {
                        self.collisions += 1;
                        continue;
                    }
                    self.nodes[r].mac.receive_atim();
                }
            }
            FrameKind::Data { updates, immediate } => {
                self.data_tx += 1;
                if immediate {
                    self.immediate_tx += 1;
                    self.nodes[i].mac.mark_immediate_sent();
                } else {
                    self.nodes[i].mac.mark_normal_sent();
                }
                self.refresh_sets(i);
                for d in &deliveries {
                    let r = d.receiver.index();
                    self.settle(r);
                    if !self.nodes[r].awake || self.nodes[r].awake_since > d.started {
                        continue;
                    }
                    // Adaptive PBBF: any audible data frame (even a
                    // collision or a duplicate) counts as overheard
                    // activity — the Section-6 p signal.
                    if let Some(ctl) = &mut self.nodes[r].adapt {
                        ctl.observe_transmission();
                    }
                    if !d.clean {
                        self.collisions += 1;
                        continue;
                    }
                    let fresh = self.nodes[r].mac.receive_data(&updates);
                    // Duplicate-only receptions (the common case in a
                    // flood) change no MAC flags, so membership needs no
                    // refresh for them.
                    let had_fresh = !fresh.is_empty();
                    for id in fresh {
                        let row = &mut self.receptions[id as usize];
                        if row[r].is_none() {
                            row[r] = Some(now);
                        }
                    }
                    if self.nodes[r].mac.has_pending_immediate() {
                        self.schedule_immediate_attempt(now, r);
                    }
                    // A queued normal forward waits for the next ATIM
                    // window; `begin_frame`/`on_window_end` pick it up.
                    if had_fresh {
                        self.refresh_sets(r);
                    }
                }
            }
        }
        self.deliveries = deliveries;
    }

    fn into_stats(mut self) -> NetRunStats {
        // Lazy nodes still owe their boundary replay; one cache-friendly
        // pass per node closes the books.
        if self.lazy {
            for i in 0..self.nodes.len() {
                self.settle(i);
            }
        }
        let topo = self.channel.topology();
        let hop_distance = topo.hop_distances(self.source);
        let energy_joules = self
            .nodes
            .iter()
            .map(|n| n.meter.joules_at(self.duration))
            .collect();
        let state_secs = self
            .nodes
            .iter()
            .map(|n| n.meter.durations_at(self.duration))
            .collect();
        NetRunStats {
            source: self.source,
            hop_distance,
            gen_times: self.gen_times,
            receptions: self.receptions,
            energy_joules,
            state_secs,
            data_tx: self.data_tx,
            atim_tx: self.atim_tx,
            immediate_tx: self.immediate_tx,
            collisions: self.collisions,
            mean_degree: topo.mean_degree(),
            adaptive_trace: self.adaptive_trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbbf_core::PbbfParams;

    fn cfg(duration: f64) -> NetConfig {
        let mut c = NetConfig::table2();
        c.duration_secs = duration;
        c
    }

    fn pbbf(p: f64, q: f64) -> NetMode {
        NetMode::SleepScheduled(PbbfParams::new(p, q).unwrap())
    }

    #[test]
    fn psm_delivers_reliably() {
        let sim = NetSim::new(cfg(300.0), NetMode::SleepScheduled(PbbfParams::PSM));
        let s = sim.run(1);
        assert_eq!(s.updates_generated(), 3);
        assert!(
            s.mean_delivery_ratio() > 0.9,
            "ratio {}",
            s.mean_delivery_ratio()
        );
        assert_eq!(s.immediate_tx, 0, "PSM never sends immediately");
        assert!(s.atim_tx > 0, "PSM announces every broadcast");
    }

    #[test]
    fn always_on_is_fast_and_reliable() {
        let sim = NetSim::new(cfg(300.0), NetMode::AlwaysOn);
        let s = sim.run(2);
        assert!(
            s.mean_delivery_ratio() > 0.9,
            "ratio {}",
            s.mean_delivery_ratio()
        );
        assert_eq!(s.atim_tx, 0, "no PSM structure");
        // Latency well under one beacon interval at every hop count.
        let l2 = s.mean_latency_at_hops(2);
        if let Some(l) = l2 {
            assert!(l < 10.0, "2-hop latency {l}");
        }
    }

    #[test]
    fn psm_latency_about_one_beacon_interval_per_hop() {
        let sim = NetSim::new(cfg(500.0), NetMode::SleepScheduled(PbbfParams::PSM));
        let s = sim.run(3);
        let l1 = s.mean_latency_at_hops(1).expect("1-hop nodes reached");
        let l2 = s.mean_latency_at_hops(2).expect("2-hop nodes reached");
        // First hop leaves in the generation interval (≈ AW + access);
        // the second waits for the next interval.
        assert!(l1 < 6.0, "1-hop {l1}");
        assert!((6.0..20.0).contains(&l2), "2-hop {l2}");
        assert!(
            l2 > l1 + 5.0,
            "each extra hop costs about a beacon interval"
        );
    }

    #[test]
    fn energy_ordering_no_psm_vs_psm_vs_pbbf() {
        let psm = NetSim::new(cfg(300.0), NetMode::SleepScheduled(PbbfParams::PSM))
            .run(4)
            .energy_per_update();
        let pbbf_mid = NetSim::new(cfg(300.0), pbbf(0.25, 0.5))
            .run(4)
            .energy_per_update();
        let no_psm = NetSim::new(cfg(300.0), NetMode::AlwaysOn)
            .run(4)
            .energy_per_update();
        assert!(psm < pbbf_mid, "PSM {psm} < PBBF(q=0.5) {pbbf_mid}");
        assert!(
            pbbf_mid < no_psm,
            "PBBF(q=0.5) {pbbf_mid} < NO PSM {no_psm}"
        );
        // Fig. 13 scale: PSM saves about 2+ J/update over NO PSM.
        assert!(no_psm - psm > 1.5, "saving {}", no_psm - psm);
    }

    #[test]
    fn energy_grows_with_q_not_p() {
        let base = cfg(300.0);
        let e_low = NetSim::new(base, pbbf(0.25, 0.1))
            .run(5)
            .energy_per_update();
        let e_high = NetSim::new(base, pbbf(0.25, 0.9))
            .run(5)
            .energy_per_update();
        assert!(e_high > e_low * 1.5, "q drives energy: {e_low} -> {e_high}");
        let e_p1 = NetSim::new(base, pbbf(0.05, 0.5))
            .run(6)
            .energy_per_update();
        let e_p2 = NetSim::new(base, pbbf(0.5, 0.5)).run(6).energy_per_update();
        let rel = (e_p1 - e_p2).abs() / e_p1;
        assert!(rel < 0.15, "p barely affects energy: {e_p1} vs {e_p2}");
    }

    #[test]
    fn high_p_low_q_degrades_reliability() {
        let good = NetSim::new(cfg(300.0), pbbf(0.5, 0.9))
            .run(7)
            .mean_delivery_ratio();
        let bad = NetSim::new(cfg(300.0), pbbf(0.5, 0.05))
            .run(7)
            .mean_delivery_ratio();
        assert!(bad < good, "q rescues reliability: {bad} !< {good}");
    }

    #[test]
    fn runs_are_deterministic() {
        let sim = NetSim::new(cfg(200.0), pbbf(0.5, 0.5));
        let a = sim.run(42);
        let b = sim.run(42);
        assert_eq!(a.receptions, b.receptions);
        assert_eq!(a.data_tx, b.data_tx);
        assert_eq!(a.energy_joules, b.energy_joules);
        let c = sim.run(43);
        assert!(a.receptions != c.receptions || a.data_tx != c.data_tx);
    }

    #[test]
    fn adaptive_mode_tunes_parameters_and_delivers() {
        use pbbf_core::adaptive::AdaptiveConfig;
        // Start from conservative parameters; the busy code-distribution
        // channel should pull p up, and full delivery should keep q low.
        let initial = PbbfParams::new(0.1, 0.3).unwrap();
        let sim = NetSim::new(
            cfg(400.0),
            NetMode::Adaptive(AdaptiveConfig::default_for(initial)),
        );
        let s = sim.run(11);
        assert!(!s.adaptive_trace.is_empty(), "trace recorded every beacon");
        // Parameters moved away from the initial point.
        let (p_last, q_last) = *s.adaptive_trace.last().unwrap();
        assert!(
            (p_last - 0.1).abs() > 0.05 || (q_last - 0.3).abs() > 0.05,
            "controller must react: trace ends at ({p_last}, {q_last})"
        );
        // Adaptation must not wreck delivery.
        assert!(
            s.mean_delivery_ratio() > 0.6,
            "ratio {}",
            s.mean_delivery_ratio()
        );
        // Static modes record no trace.
        let st = NetSim::new(cfg(200.0), NetMode::SleepScheduled(initial)).run(11);
        assert!(st.adaptive_trace.is_empty());
    }

    #[test]
    fn adaptive_q_rises_under_forced_losses() {
        use pbbf_core::adaptive::AdaptiveConfig;
        // Force losses: start with aggressive immediate forwarding and no
        // listeners (p = 1, q at floor) — nodes detect sequence holes and
        // must raise q over time.
        let mut acfg = AdaptiveConfig::default_for(PbbfParams::new(1.0, 0.05).unwrap());
        acfg.p_step = 0.0; // isolate the q loop
        let sim = NetSim::new(cfg(500.0), NetMode::Adaptive(acfg));
        let s = sim.run(12);
        let early_q = s.adaptive_trace[2].1;
        let late_q = s.adaptive_trace.last().unwrap().1;
        assert!(
            late_q > early_q,
            "detected holes must raise q: {early_q} -> {late_q}"
        );
    }

    #[test]
    fn incremental_channel_matches_brute_reference() {
        // Whole-run equivalence: the incremental engine and the brute
        // reference must produce identical stats for every seed, including
        // a dense (Δ = 18) contention-heavy scenario.
        for seed in [1, 7, 42] {
            let sim = NetSim::new(cfg(300.0), pbbf(0.5, 0.5));
            assert_eq!(sim.run(seed), sim.run_brute(seed), "seed {seed}");
        }
        let mut dense = cfg(300.0);
        dense.delta = 18.0;
        let sim = NetSim::new(dense, NetMode::AlwaysOn);
        let s = sim.run(8);
        assert_eq!(s, sim.run_brute(8));
        assert!(s.collisions > 0, "contention exercised the collision path");
    }

    #[test]
    fn collisions_happen_under_contention() {
        // Dense network, always-on flooding: plenty of concurrent senders.
        let mut c = cfg(300.0);
        c.delta = 18.0;
        let s = NetSim::new(c, NetMode::AlwaysOn).run(8);
        assert!(s.collisions > 0, "no collisions in a dense flood?");
    }

    #[test]
    fn stats_bookkeeping_consistent() {
        let s = NetSim::new(cfg(300.0), pbbf(0.75, 0.75)).run(9);
        assert!(s.immediate_tx <= s.data_tx);
        assert_eq!(s.gen_times.len(), s.receptions.len());
        assert_eq!(s.energy_joules.len(), 50);
        assert!(s.mean_degree > 3.0, "Δ=10 deployment");
        // Source "receives" its own updates at generation time.
        for (u, row) in s.receptions.iter().enumerate() {
            assert_eq!(row[s.source.index()], Some(s.gen_times[u]));
        }
    }

    fn with_engine(duration: f64, engine: BoundaryEngine) -> NetConfig {
        let mut c = cfg(duration);
        c.boundary_engine = engine;
        c
    }

    #[test]
    fn deterministic_endpoints_identical_across_boundary_engines() {
        // q = 0 (PSM) and q = 1 consume no sleep randomness on any
        // engine, and the Table-2 boundary instants are exactly
        // representable, so whole runs agree bit for bit — the strongest
        // cheap cross-check of the batched pair accounting (an off-by-one
        // in the credited ATIM windows or data phases shows up here).
        let dense = with_engine(300.0, BoundaryEngine::Dense);
        let geo = with_engine(300.0, BoundaryEngine::Geometric);
        let skip = with_engine(300.0, BoundaryEngine::FrameSkip);
        for seed in [1u64, 5] {
            for mode in [
                NetMode::SleepScheduled(PbbfParams::PSM),
                pbbf(0.25, 1.0),
                pbbf(1.0, 0.0),
            ] {
                let a = NetSim::new(dense, mode).run(seed);
                let b = NetSim::new(geo, mode).run(seed);
                let c = NetSim::new(skip, mode).run(seed);
                assert_eq!(a, b, "dense vs geometric, mode {mode:?} seed {seed}");
                assert_eq!(b, c, "geometric vs frame skip, mode {mode:?} seed {seed}");
            }
        }
    }

    #[test]
    fn frame_skip_is_bitwise_geometric() {
        // The frame-skip contract is stronger than the geometric engine's
        // statistical one: skipped frames were no-ops, so whole runs
        // agree bit for bit at *every* q, mid-range included.
        let geo = with_engine(400.0, BoundaryEngine::Geometric);
        let skip = with_engine(400.0, BoundaryEngine::FrameSkip);
        for seed in [1u64, 42] {
            for mode in [
                NetMode::SleepScheduled(PbbfParams::PSM),
                pbbf(0.5, 0.5),
                pbbf(0.25, 0.05),
            ] {
                assert_eq!(
                    NetSim::new(geo, mode).run(seed),
                    NetSim::new(skip, mode).run(seed),
                    "mode {mode:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn frame_skip_sparse_traffic_still_delivers() {
        // A genuinely quiescent scenario — one update in a long horizon —
        // exercises deep jumps (thousands of frames at once) end to end.
        let mut c = with_engine(600.0, BoundaryEngine::FrameSkip);
        c.lambda = 0.005; // 3 updates over 600 s, ~195 empty frames apart
        let mut g = c;
        g.boundary_engine = BoundaryEngine::Geometric;
        for seed in [3u64, 8] {
            let s = NetSim::new(c, pbbf(0.25, 0.5)).run(seed);
            assert_eq!(s.updates_generated(), 3);
            assert!(s.mean_delivery_ratio() > 0.3, "{}", s.mean_delivery_ratio());
            assert_eq!(s, NetSim::new(g, pbbf(0.25, 0.5)).run(seed));
        }
    }

    #[test]
    fn non_lazy_modes_ignore_the_boundary_engine() {
        use pbbf_core::adaptive::AdaptiveConfig;
        let dense = with_engine(200.0, BoundaryEngine::Dense);
        let geo = with_engine(200.0, BoundaryEngine::Geometric);
        let skip = with_engine(200.0, BoundaryEngine::FrameSkip);
        for mode in [
            NetMode::AlwaysOn,
            NetMode::Adaptive(AdaptiveConfig::default_for(
                PbbfParams::new(0.1, 0.3).unwrap(),
            )),
        ] {
            let d = NetSim::new(dense, mode).run(7);
            assert_eq!(d, NetSim::new(geo, mode).run(7), "mode {mode:?}");
            assert_eq!(d, NetSim::new(skip, mode).run(7), "mode {mode:?}");
        }
    }

    #[test]
    fn geometric_engine_is_deterministic_and_reasonable() {
        // Mid-q: the engines differ bitwise (different stream layouts)
        // but the geometric engine must stay seed-deterministic and
        // produce the same qualitative physics as dense.
        let sim = NetSim::new(
            with_engine(300.0, BoundaryEngine::Geometric),
            pbbf(0.5, 0.5),
        );
        assert_eq!(sim.run(42), sim.run(42));
        let dense = with_engine(300.0, BoundaryEngine::Dense);
        let d = NetSim::new(dense, pbbf(0.5, 0.5)).run(42);
        let g = sim.run(42);
        assert_ne!(g, d, "mid-q stream layouts legitimately differ");
        assert!(g.mean_delivery_ratio() > 0.8, "{}", g.mean_delivery_ratio());
        // Energy totals agree to a few percent even on single runs: the
        // q coin only modulates the data-phase residency.
        let (ge, de) = (g.energy_per_update(), d.energy_per_update());
        assert!(
            (ge - de).abs() / de < 0.1,
            "energy geometric {ge} vs dense {de}"
        );
    }

    #[test]
    fn run_on_cached_deployment_matches_run() {
        // The documented contract: running on the deployment drawn from
        // the same seed reproduces `run` bit for bit, for every mode.
        use pbbf_core::adaptive::AdaptiveConfig;
        let modes = [
            NetMode::AlwaysOn,
            NetMode::SleepScheduled(PbbfParams::PSM),
            pbbf(0.25, 0.05),
            pbbf(0.5, 0.5),
            NetMode::Adaptive(AdaptiveConfig::default_for(
                PbbfParams::new(0.1, 0.3).unwrap(),
            )),
        ];
        let c = cfg(300.0);
        for mode in modes {
            let sim = NetSim::new(c, mode);
            for seed in [1u64, 9] {
                let drawn = NetSim::draw_deployment(&c, seed);
                assert_eq!(sim.run_on(seed, &drawn), sim.run(seed));
            }
        }
        // Decoupling: a different deployment seed changes the scenario
        // while the protocol streams stay pinned to `seed`.
        let sim = NetSim::new(c, pbbf(0.5, 0.5));
        let other = NetSim::draw_deployment(&c, 77);
        let s = sim.run_on(1, &other);
        assert_eq!(s.source, other.source);
        assert_ne!(s, sim.run(1));
    }
}
