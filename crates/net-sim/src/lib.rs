//! The Section-5 realistic PBBF simulator.
//!
//! Where the idealized simulator of `pbbf-ideal-sim` assumes a perfect
//! MAC, this crate reproduces the paper's ns-2 study: a full discrete-event
//! node stack with
//!
//! * random node deployments at a target density Δ (Eq. 13, Table 2),
//! * a CSMA/CA broadcast MAC (carrier sensing + random backoff, no
//!   acknowledgments) over the collision channel of `pbbf-radio`,
//! * IEEE 802.11 PSM beacon intervals and ATIM windows with PBBF's `p`/`q`
//!   decisions from `pbbf-core` via `pbbf-mac`,
//! * the code-distribution application: a random source node generates
//!   updates deterministically at rate λ; every data packet carries the
//!   `k` most recent updates the sender knows,
//! * per-node energy metering with the Mica2 power profile.
//!
//! Collisions, hidden terminals, lost ATIMs and sleeping receivers all
//! happen here — the point of Section 5 is that PBBF's trends survive
//! them.
//!
//! # Examples
//!
//! ```
//! use pbbf_net_sim::{NetConfig, NetSim};
//! use pbbf_core::PbbfParams;
//!
//! let mut cfg = NetConfig::table2();
//! cfg.duration_secs = 100.0; // keep the doctest fast: one update, ample time
//! let sim = NetSim::new(cfg, pbbf_net_sim::NetMode::SleepScheduled(PbbfParams::PSM));
//! let stats = sim.run(7);
//! assert_eq!(stats.updates_generated(), 1);
//! // PSM is reliable: virtually every node gets the update.
//! assert!(stats.mean_delivery_ratio() > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod active;
mod config;
mod deploy;
mod replica;
mod runner;
mod stats;

pub use active::ActiveSet;
pub use config::{BoundaryEngine, NetConfig, NetMode};
pub use deploy::{CacheStats, CachedDeployment, DeploymentCache};
pub use runner::NetSim;
pub use stats::NetRunStats;
