//! Measurements of one realistic-simulation run.

use pbbf_des::SimTime;
use pbbf_metrics::Summary;
use pbbf_topology::NodeId;

/// Everything measured during one seeded run of the realistic simulator.
///
/// `PartialEq` compares every field exactly (including the `f64` vectors
/// bitwise-equal-or-not) — the channel-equivalence and determinism tests
/// rely on that strictness.
#[derive(Debug, Clone, PartialEq)]
pub struct NetRunStats {
    /// The randomly chosen source node.
    pub source: NodeId,
    /// BFS hop distance of every node from the source.
    pub hop_distance: Vec<Option<u32>>,
    /// Generation time of every update, in generation order (id = index).
    pub gen_times: Vec<SimTime>,
    /// `receptions[update][node]`: first clean reception time.
    pub receptions: Vec<Vec<Option<SimTime>>>,
    /// Per-node joules consumed over the whole run.
    pub energy_joules: Vec<f64>,
    /// Per-node seconds of radio-state residency over the whole run, as
    /// `[idle, transmit, sleep]` — the raw durations behind
    /// `energy_joules`. Sleeping happens only in whole data phases, so
    /// `sleep / (BI − AW)` is the node's slept-beacon count — the
    /// observable the boundary-engine statistical-equivalence suite
    /// compares.
    pub state_secs: Vec<[f64; 3]>,
    /// Data transmissions (normal + immediate).
    pub data_tx: u64,
    /// ATIM transmissions.
    pub atim_tx: u64,
    /// Immediate data transmissions (subset of `data_tx`).
    pub immediate_tx: u64,
    /// Receptions discarded because of collisions.
    pub collisions: u64,
    /// Empirical mean degree of the deployed topology.
    pub mean_degree: f64,
    /// Adaptive mode only: mean `(p, q)` across nodes at each beacon
    /// interval, in order. Empty for static modes.
    pub adaptive_trace: Vec<(f64, f64)>,
}

impl NetRunStats {
    /// Number of updates the source generated.
    #[must_use]
    pub fn updates_generated(&self) -> u32 {
        self.gen_times.len() as u32
    }

    /// Figure 13 metric: mean per-node energy divided by updates
    /// generated (J/update).
    #[must_use]
    pub fn energy_per_update(&self) -> f64 {
        let updates = self.updates_generated().max(1) as f64;
        let per_node: Summary = self.energy_joules.iter().copied().collect();
        per_node.mean() / updates
    }

    /// Figure 16/18 metric: updates received / updates sent, averaged over
    /// non-source nodes.
    #[must_use]
    pub fn mean_delivery_ratio(&self) -> f64 {
        let updates = self.updates_generated();
        if updates == 0 {
            return 0.0;
        }
        let mut s = Summary::new();
        for node in 0..self.hop_distance.len() {
            if node == self.source.index() {
                continue;
            }
            let got = self.receptions.iter().filter(|r| r[node].is_some()).count();
            s.record(got as f64 / f64::from(updates));
        }
        s.mean()
    }

    /// Figure 14/15 metric: mean delivery latency (s) over nodes at BFS
    /// hop distance `d`, counting only updates that arrived. `None` when
    /// no node at that distance ever received anything.
    #[must_use]
    pub fn mean_latency_at_hops(&self, d: u32) -> Option<f64> {
        let mut s = Summary::new();
        for (u, gen) in self.gen_times.iter().enumerate() {
            for (node, dist) in self.hop_distance.iter().enumerate() {
                if *dist == Some(d) {
                    if let Some(t) = self.receptions[u][node] {
                        s.record(t.duration_since(*gen).as_secs());
                    }
                }
            }
        }
        (!s.is_empty()).then(|| s.mean())
    }

    /// Mean delivery latency over all non-source nodes and updates
    /// (the Figure 17 metric).
    #[must_use]
    pub fn mean_latency(&self) -> Option<f64> {
        let mut s = Summary::new();
        for (u, gen) in self.gen_times.iter().enumerate() {
            for node in 0..self.hop_distance.len() {
                if node == self.source.index() {
                    continue;
                }
                if let Some(t) = self.receptions[u][node] {
                    s.record(t.duration_since(*gen).as_secs());
                }
            }
        }
        (!s.is_empty()).then(|| s.mean())
    }

    /// Number of nodes at BFS hop distance `d` (the figure annotations
    /// "Average Number of 2-Hop Nodes/Scenario").
    #[must_use]
    pub fn nodes_at_hops(&self, d: u32) -> usize {
        self.hop_distance.iter().filter(|&&x| x == Some(d)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn sample() -> NetRunStats {
        NetRunStats {
            source: NodeId(0),
            hop_distance: vec![Some(0), Some(1), Some(2), Some(2)],
            gen_times: vec![t(0.0), t(100.0)],
            receptions: vec![
                vec![Some(t(0.0)), Some(t(2.0)), Some(t(12.0)), None],
                vec![Some(t(100.0)), Some(t(103.0)), None, None],
            ],
            energy_joules: vec![2.0, 2.0, 1.0, 1.0],
            state_secs: vec![[100.0, 1.0, 99.0]; 4],
            data_tx: 5,
            atim_tx: 4,
            immediate_tx: 1,
            collisions: 2,
            mean_degree: 2.0,
            adaptive_trace: Vec::new(),
        }
    }

    #[test]
    fn energy_per_update() {
        let s = sample();
        // mean energy 1.5 J over 2 updates.
        assert_eq!(s.energy_per_update(), 0.75);
    }

    #[test]
    fn delivery_ratio_excludes_source() {
        let s = sample();
        // node1: 2/2, node2: 1/2, node3: 0/2 -> mean = (1 + 0.5 + 0)/3.
        assert!((s.mean_delivery_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn latency_at_hops() {
        let s = sample();
        // d=1: node1 latencies 2.0 and 3.0.
        assert!((s.mean_latency_at_hops(1).unwrap() - 2.5).abs() < 1e-9);
        // d=2: only node2 update0: 12.0.
        assert!((s.mean_latency_at_hops(2).unwrap() - 12.0).abs() < 1e-9);
        assert_eq!(s.mean_latency_at_hops(7), None);
        assert_eq!(s.nodes_at_hops(2), 2);
    }

    #[test]
    fn overall_latency() {
        let s = sample();
        // 2.0, 12.0, 3.0 -> mean 17/3.
        assert!((s.mean_latency().unwrap() - 17.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_is_neutral() {
        let s = NetRunStats {
            source: NodeId(0),
            hop_distance: vec![Some(0)],
            gen_times: vec![],
            receptions: vec![],
            energy_joules: vec![0.0],
            state_secs: vec![[0.0, 0.0, 0.0]],
            data_tx: 0,
            atim_tx: 0,
            immediate_tx: 0,
            collisions: 0,
            mean_degree: 0.0,
            adaptive_trace: Vec::new(),
        };
        assert_eq!(s.updates_generated(), 0);
        assert_eq!(s.mean_delivery_ratio(), 0.0);
        assert_eq!(s.mean_latency(), None);
    }
}
