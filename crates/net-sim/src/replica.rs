//! Lockstep replica batching: one merged event loop advances `R`
//! independent Monte Carlo replicas of a single scenario.
//!
//! # Why batch replicas
//!
//! Every figure point is a mean over `R` runs. With the deployment
//! registry those runs already share one `Arc<Topology>`; serial
//! execution still re-walks everything else `R` times — `R` separate
//! event queues, `R` BFS hop-distance passes, `R` independent boundary
//! sweeps over the *same* beacon instants, with each run's working set
//! streamed through cache on its own. [`NetSim::run_replicas`] executes
//! a batch of seeds over one shared scenario in **lockstep** instead:
//!
//! * **Per-replica lanes.** All per-node runtime state (`MacState`,
//!   `EnergyMeter`, RNG substreams, wake flags, settle cursors) lives in
//!   one interleaved array indexed `[node][lane]`, and the collision
//!   channel is a [`LanedChannel`] whose 16-byte per-node air records
//!   are laned the same way — shared-event sweeps visit one node's
//!   lanes back to back, so the interleaving keeps them on adjacent
//!   cache lines.
//! * **Shared deterministic events.** Frame starts, ATIM-window ends,
//!   and source update generation happen at config-determined instants
//!   identical across replicas, so the batch schedules each *once* (on
//!   a small shared heap) and the handler sweeps all lanes — the
//!   boundary timestamp tables (`frame_secs`/`window_secs`) are
//!   computed once per frame for the whole batch, and the hop-distance
//!   BFS runs once per batch instead of once per replica. Over a long
//!   horizon this deletes ~`(R-1)/R` of the boundary-walk work.
//! * **Per-lane event heaps, phased drain.** Backoff-timed events
//!   (ATIM/data attempts, transmission ends) depend on per-replica
//!   randomness and run exactly the serial handler against their own
//!   lane — each lane owns a private heap of them. Lanes share no
//!   mutable state, so their relative order is unobservable: between
//!   two shared events the drain runs each lane's burst to completion
//!   before the next lane's, keeping one replica's working set hot in
//!   cache instead of interleaving all `R` replicas event by event (an
//!   earlier single-merged-heap drain lost ~25% to exactly that), and
//!   keeping every heap no deeper than the serial queue's.
//! * **Per-replica active sets.** The PR-3 active-set machinery gains a
//!   lane mask ([`ReplicaSet`]): boundary handlers sweep the node-level
//!   union once in ascending node order and visit each member's lanes
//!   by mask bit.
//!
//! # Bit-identity
//!
//! `run_replicas(seeds, d)[l]` is **bitwise equal** to
//! `run_on(seeds[l], d)` — a strict contract with no golden refresh,
//! pinned by `tests/replica_equivalence.rs` and the repo-level figure
//! fingerprints. It holds by construction:
//!
//! * Replica state is fully disjoint (own MAC/meter/RNG lanes, own
//!   channel lane); only the read-only topology and the deterministic
//!   event *times* are shared.
//! * The serial queue breaks timestamp ties by insertion order (FIFO).
//!   Here one insertion counter spans the shared heap and every lane
//!   heap, and the drain orders {lane `l`} ∪ {shared} by `(time, seq)`
//!   — exactly the serial order restricted to lane `l`'s events.
//!   Within every shared handler, each lane's insertions happen in the
//!   same relative order as in that lane's serial run (union members in
//!   ascending node order — the serial sweep order — with the batch's
//!   next shared event scheduled *after* all per-lane insertions,
//!   matching the serial handler's tail). By induction, each lane pops
//!   its events in exactly the serial order, so every RNG draw, meter
//!   transition, and stat lands identically.
//! * The serial drain stops at the first event past `duration`, i.e. it
//!   processes precisely the events with `time <= duration`, in order;
//!   the phased drain processes the same set.
//!
//! Adaptive mode keeps per-node controllers whose dense per-beacon
//! walks dominate; [`NetSim::run_replicas`] falls back to the serial
//! loop there rather than laning a path batching cannot help.

use std::collections::BinaryHeap;
use std::sync::Arc;

use pbbf_core::ForwardDecision;
use pbbf_des::{SimDuration, SimRng, SimTime};
use pbbf_mac::{BackoffPolicy, DataIntent, MacState, PsmTiming};
use pbbf_radio::{Delivery, EnergyMeter, Frame, FrameKind, LanedChannel, RadioState};
use pbbf_topology::NodeId;

use crate::active::ReplicaSet;
use crate::{BoundaryEngine, CachedDeployment, NetConfig, NetMode, NetRunStats, NetSim};

/// The widest lockstep batch: one `u64` lane mask per node.
/// [`NetSim::run_replicas`] chunks longer seed lists transparently.
pub(crate) const MAX_LANES: usize = 64;

impl NetSim {
    /// Executes one run per seed over a single shared scenario, in
    /// lockstep batches of up to 64 replicas.
    ///
    /// Each element of the result is **bitwise equal** to the serial
    /// path: `run_replicas(seeds, d)[l] == run_on(seeds[l], d)` for
    /// every lane `l`, every mode, and both boundary engines — batching
    /// changes wall-clock, never results. See the module docs for how
    /// the merged event loop preserves per-replica event order and RNG
    /// streams.
    ///
    /// [`NetMode::Adaptive`] runs the serial loop per seed (its dense
    /// per-beacon controller walk leaves nothing for the merged loop to
    /// share).
    #[must_use]
    pub fn run_replicas(&self, seeds: &[u64], deployment: &CachedDeployment) -> Vec<NetRunStats> {
        if matches!(self.mode(), NetMode::Adaptive(_)) {
            return seeds.iter().map(|&s| self.run_on(s, deployment)).collect();
        }
        let mut out = Vec::with_capacity(seeds.len());
        for chunk in seeds.chunks(MAX_LANES) {
            let mut runner = ReplicaRunner::new(self.config(), self.mode(), chunk, deployment);
            runner.prime();
            runner.drain();
            out.append(&mut runner.finish_stats());
        }
        out
    }
}

/// Shared batch-wide events: config-determined times identical across
/// lanes, so the batch schedules each exactly once and the handler
/// sweeps every lane.
#[derive(Debug)]
enum SEv {
    FrameStart,
    WindowEnd,
    GenUpdate,
}

/// Per-lane events: backoff-timed, so their instants depend on the
/// lane's own randomness. The lane is implicit — each lane owns a
/// private heap of these — and the payload carries only the node.
#[derive(Debug)]
enum LEv {
    Atim(u32),
    Data(u32, DataIntent),
    TxEnd(u32),
}

/// A heap entry ordered by `(time, seq)` — the serial `EventQueue`'s
/// FIFO tie-break. One `seq` counter spans the shared heap and every
/// lane heap, so restricting the global `(time, seq)` order to
/// {lane `l`} ∪ {shared} replays exactly the order a single merged
/// queue would hand lane `l`.
#[derive(Debug)]
struct Keyed<E> {
    at: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Keyed<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<E> Eq for Keyed<E> {}
impl<E> PartialOrd for Keyed<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Keyed<E> {
    /// Reversed, so `BinaryHeap` (a max-heap) pops the earliest entry.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// One `(node, lane)` runtime cell — the laned mirror of the serial
/// runner's `NodeRt`, minus the adaptive controller (adaptive mode never
/// reaches the batched path). Cells are interleaved `[node][lane]`.
#[derive(Debug)]
struct LaneRt {
    mac: MacState,
    meter: EnergyMeter,
    awake: bool,
    awake_since: SimTime,
    rng: SimRng,
    atim_scheduled: bool,
    normal_scheduled: bool,
    immediate_scheduled: bool,
    /// Lazy-replay cursor, same numbering as the serial runner: frame
    /// `f`'s start is boundary `2f`, its window end `2f + 1`.
    applied: u32,
}

/// The merged-loop runner. Every handler body is the serial runner's,
/// applied per lane; keep the two in sync (the equivalence tests pin
/// them together bit-for-bit).
struct ReplicaRunner {
    psm: bool,
    /// `psm && !adaptive` — always `psm` here (adaptive falls back
    /// before construction).
    lazy: bool,
    dense_boundaries: bool,
    /// Whether globally quiescent frames are jumped wholesale
    /// ([`BoundaryEngine::FrameSkip`]) — here "globally" means every
    /// lane at once: one lane mid-flood keeps the whole batch stepping
    /// frame by frame, preserving each lane's serial event order.
    frame_skip: bool,
    /// The scheduled time of the next shared `GenUpdate`, mirrored so
    /// the frame-skip jump knows where the next traffic arrival lands.
    next_gen: Option<SimTime>,
    aw_secs: f64,
    data_secs: f64,
    k: usize,
    timing: PsmTiming,
    backoff: BackoffPolicy,
    data_air: SimDuration,
    atim_air: SimDuration,
    update_period: SimDuration,
    duration: SimTime,
    channel: LanedChannel,
    lanes: usize,
    /// `(node, lane)` cells at `node * lanes + lane`.
    nodes: Vec<LaneRt>,
    /// One insertion counter across `shared` and every lane heap: FIFO
    /// tie-breaking must match the serial queue's per lane.
    seq: u64,
    /// Batch-wide events — at most a handful live at once.
    shared: BinaryHeap<Keyed<SEv>>,
    /// Per-lane event heaps; each is at most as deep as the serial
    /// queue's (boundary events live in `shared` instead).
    lane_q: Vec<BinaryHeap<Keyed<LEv>>>,
    source: NodeId,
    /// Boundary events fired so far — shared: boundaries are batch-wide
    /// events. Per-lane `applied` cursors settle against it.
    fired: u32,
    frame_set: ReplicaSet,
    window_set: ReplicaSet,
    sweep: Vec<u32>,
    /// Boundary instants in seconds, computed once per frame for the
    /// whole batch (the serial runner pays this per replica) — filled
    /// only under the dense engine; the skipping engines convert on
    /// demand (see the serial runner's `frame_secs` docs).
    frame_secs: Vec<f64>,
    window_secs: Vec<f64>,
    /// Update generation times — identical across lanes by construction;
    /// cloned into each lane's stats at the end.
    gen_times: Vec<SimTime>,
    /// First-reception times per lane: `receptions[lane][update][node]`.
    receptions: Vec<Vec<Vec<Option<SimTime>>>>,
    deliveries: Vec<Delivery>,
    data_tx: Vec<u64>,
    atim_tx: Vec<u64>,
    immediate_tx: Vec<u64>,
    collisions: Vec<u64>,
}

impl ReplicaRunner {
    fn new(cfg: &NetConfig, mode: NetMode, seeds: &[u64], deployment: &CachedDeployment) -> Self {
        assert!(
            !seeds.is_empty() && seeds.len() <= MAX_LANES,
            "a lockstep batch holds 1..={MAX_LANES} replicas"
        );
        let params = match mode {
            NetMode::AlwaysOn => pbbf_core::PbbfParams::ALWAYS_ON,
            NetMode::SleepScheduled(p) => p,
            NetMode::Adaptive(_) => unreachable!("adaptive mode uses the serial fallback"),
        };
        let lanes = seeds.len();
        let roots: Vec<SimRng> = seeds.iter().map(|&s| SimRng::new(s)).collect();
        // Interleaved [node][lane]: node i's cells for every replica sit
        // contiguously, matching the laned channel's air layout.
        let mut nodes = Vec::with_capacity(cfg.nodes * lanes);
        for i in 0..cfg.nodes {
            for root in &roots {
                nodes.push(LaneRt {
                    mac: MacState::new(params, root.substream(1000 + i as u64)),
                    meter: EnergyMeter::new(cfg.power),
                    awake: true,
                    awake_since: SimTime::ZERO,
                    rng: root.substream(2000 + i as u64),
                    atim_scheduled: false,
                    normal_scheduled: false,
                    immediate_scheduled: false,
                    applied: 0,
                });
            }
        }
        let phy = cfg.phy;
        let expected_updates = cfg.expected_updates() as usize;
        let expected_degree = cfg.delta.ceil() as usize + 1;
        let psm = !matches!(mode, NetMode::AlwaysOn);
        let timing = PsmTiming::new(
            SimDuration::from_secs(cfg.beacon_interval_secs),
            SimDuration::from_secs(cfg.atim_window_secs),
        );
        // Resolved identically to the serial runner (`Runner::new`) —
        // the probe is a pure function of the config, so every lane and
        // the serial reference pick the same engine.
        let engine = cfg.boundary_engine.resolve(cfg);
        Self {
            psm,
            lazy: psm,
            dense_boundaries: engine == BoundaryEngine::Dense,
            frame_skip: engine == BoundaryEngine::FrameSkip,
            next_gen: None,
            aw_secs: timing.atim_window().as_secs(),
            data_secs: (timing.beacon_interval() - timing.atim_window()).as_secs(),
            k: cfg.k,
            timing,
            backoff: BackoffPolicy::mica2(),
            data_air: phy.airtime(phy.data_bytes),
            atim_air: phy.airtime(phy.atim_bytes),
            update_period: SimDuration::from_secs(1.0 / cfg.lambda),
            duration: SimTime::from_secs(cfg.duration_secs),
            channel: LanedChannel::new(Arc::clone(&deployment.topology), lanes),
            lanes,
            nodes,
            seq: 0,
            shared: BinaryHeap::new(),
            lane_q: (0..lanes).map(|_| BinaryHeap::new()).collect(),
            source: deployment.source,
            fired: 0,
            frame_set: ReplicaSet::new(cfg.nodes),
            window_set: ReplicaSet::new(cfg.nodes),
            sweep: Vec::new(),
            frame_secs: Vec::new(),
            window_secs: Vec::new(),
            gen_times: Vec::with_capacity(expected_updates),
            receptions: (0..lanes)
                .map(|_| Vec::with_capacity(expected_updates))
                .collect(),
            deliveries: Vec::with_capacity(expected_degree),
            data_tx: vec![0; lanes],
            atim_tx: vec![0; lanes],
            immediate_tx: vec![0; lanes],
            collisions: vec![0; lanes],
        }
    }

    #[inline]
    fn li(&self, node: usize, lane: usize) -> usize {
        node * self.lanes + lane
    }

    #[inline]
    fn sched_shared(&mut self, at: SimTime, ev: SEv) {
        let seq = self.seq;
        self.seq += 1;
        self.shared.push(Keyed { at, seq, ev });
    }

    #[inline]
    fn sched_lane(&mut self, lane: usize, at: SimTime, ev: LEv) {
        let seq = self.seq;
        self.seq += 1;
        self.lane_q[lane].push(Keyed { at, seq, ev });
    }

    fn prime(&mut self) {
        if self.psm {
            self.sched_shared(SimTime::ZERO, SEv::FrameStart);
        }
        let first_update = SimTime::ZERO + self.timing.atim_window() / 2;
        if first_update <= self.duration {
            self.next_gen = Some(first_update);
            self.sched_shared(first_update, SEv::GenUpdate);
        }
    }

    /// The phased drain. A merged queue would pop the batch's events in
    /// global `(time, seq)` order — but lanes share no mutable state, so
    /// only each lane's order *relative to the shared events* is
    /// observable. The drain exploits that freedom: between consecutive
    /// shared events it runs each lane's burst to completion before the
    /// next lane's, which keeps one replica's working set (its lane
    /// cells, its channel lane, its heap) hot in cache instead of
    /// interleaving all `R` replicas event by event.
    fn drain(&mut self) {
        loop {
            let bound = self.shared.peek().map(|k| (k.at, k.seq));
            for lane in 0..self.lanes {
                self.drain_lane(lane, bound);
            }
            let Some(head) = self.shared.peek() else {
                break;
            };
            if head.at > self.duration {
                break;
            }
            let Keyed { at, ev, .. } = self.shared.pop().expect("peeked entry vanished");
            match ev {
                SEv::FrameStart => self.on_frame_start(at),
                SEv::WindowEnd => self.on_window_end(at),
                SEv::GenUpdate => self.on_gen_update(at),
            }
        }
    }

    /// Runs lane `lane` up to (but not through) the shared-queue head.
    /// The `(time, seq)` comparison against `bound` reproduces the
    /// merged queue's FIFO tie-break exactly: a lane event scheduled
    /// *before* a shared event landing on the same instant still runs
    /// first, one scheduled after still runs second.
    fn drain_lane(&mut self, lane: usize, bound: Option<(SimTime, u64)>) {
        while let Some(head) = self.lane_q[lane].peek() {
            if head.at > self.duration {
                break;
            }
            if let Some(b) = bound {
                if (head.at, head.seq) >= b {
                    break;
                }
            }
            let Keyed { at, ev, .. } = self.lane_q[lane].pop().expect("peeked entry vanished");
            match ev {
                LEv::Atim(i) => self.on_atim_attempt(at, i as usize, lane),
                LEv::Data(i, intent) => self.on_data_attempt(at, i as usize, lane, intent),
                LEv::TxEnd(i) => self.on_tx_end(at, i as usize, lane),
            }
        }
    }

    #[inline]
    fn refresh_sets(&mut self, i: usize, lane: usize) {
        if !self.lazy {
            return;
        }
        let work = self.nodes[self.li(i, lane)].mac.pending_work();
        self.frame_set.set(i, lane, work.frame_start);
        self.window_set.set(i, lane, work.window_end);
    }

    fn apply_frame_start(&mut self, i: usize, lane: usize, frame: u32) -> bool {
        let li = self.li(i, lane);
        let node = &mut self.nodes[li];
        node.applied = 2 * frame + 1;
        if !node.awake {
            let t = self.timing.frame_time(u64::from(frame));
            node.meter.set_state(t, RadioState::Idle);
            node.awake = true;
            node.awake_since = t;
        }
        node.mac.begin_frame()
    }

    fn apply_window_end(&mut self, i: usize, lane: usize, frame: u32) {
        let li = self.li(i, lane);
        let stay = self.nodes[li].mac.sleep_decision();
        self.nodes[li].applied = 2 * frame + 2;
        if !stay && self.nodes[li].awake && !self.channel.is_transmitting(lane, NodeId(i as u32)) {
            let t = self.timing.frame_time(u64::from(frame)) + self.timing.atim_window();
            self.nodes[li].meter.set_state(t, RadioState::Sleep);
            self.nodes[li].awake = false;
        }
    }

    #[inline]
    fn settle(&mut self, i: usize, lane: usize) {
        if self.nodes[self.li(i, lane)].applied < self.fired {
            self.settle_replay(i, lane);
        }
    }

    fn settle_replay(&mut self, i: usize, lane: usize) {
        debug_assert!(self.lazy, "only the lazy path leaves nodes unsettled");
        debug_assert!(
            !self.channel.is_transmitting(lane, NodeId(i as u32)),
            "untouched node {i} cannot be mid-transmission"
        );
        if self.dense_boundaries {
            self.settle_dense(i, lane, self.fired);
        } else {
            self.settle_geometric(i, lane);
        }
    }

    fn settle_dense(&mut self, i: usize, lane: usize, target: u32) {
        let beacon_nanos = self.timing.beacon_interval().as_nanos();
        let atim_nanos = self.timing.atim_window().as_nanos();
        // Tables are filled only under the dense engine; the skipping
        // engines replay at most one boundary per edge here and convert
        // on demand (bit-identical — see the serial `settle_dense`).
        let dense = self.dense_boundaries;
        let li = self.li(i, lane);
        let node = &mut self.nodes[li];
        while node.applied < target {
            let boundary = node.applied;
            node.applied = boundary + 1;
            let frame = boundary >> 1;
            if boundary & 1 == 0 {
                if !node.awake {
                    let secs = if dense {
                        self.frame_secs[frame as usize]
                    } else {
                        SimTime::from_nanos(u64::from(frame) * beacon_nanos).as_secs()
                    };
                    node.meter.set_state_secs(secs, RadioState::Idle);
                    node.awake = true;
                    node.awake_since = SimTime::from_nanos(u64::from(frame) * beacon_nanos);
                }
                let wants = node.mac.begin_frame();
                debug_assert!(
                    !wants,
                    "node {i} with announce work must be in the frame-start active set"
                );
                let _ = wants;
            } else if !node.mac.sleep_decision() && node.awake {
                let secs = if dense {
                    self.window_secs[frame as usize]
                } else {
                    SimTime::from_nanos(u64::from(frame) * beacon_nanos + atim_nanos).as_secs()
                };
                node.meter.set_state_secs(secs, RadioState::Sleep);
                node.awake = false;
            }
        }
    }

    fn settle_geometric(&mut self, i: usize, lane: usize) {
        let fired = self.fired;
        let li = self.li(i, lane);
        if self.nodes[li].applied & 1 == 1 {
            self.settle_dense(i, lane, (self.nodes[li].applied + 1).min(fired));
        }
        let pairs = (fired - self.nodes[li].applied) / 2;
        if pairs > 0 {
            self.settle_pairs_batched(i, lane, pairs);
        }
        if self.nodes[li].applied < fired {
            self.settle_dense(i, lane, fired);
        }
    }

    fn settle_pairs_batched(&mut self, i: usize, lane: usize, pairs: u32) {
        let li = self.li(i, lane);
        let g0 = self.nodes[li].applied / 2;
        // Only the skipping engines batch; their tables stay empty, so
        // the two touched boundaries convert on demand (bit-identical
        // to the dense engine's table entries).
        let g0_secs = self.timing.frame_time(u64::from(g0)).as_secs();
        let node = &mut self.nodes[li];
        debug_assert_eq!(node.applied & 1, 0, "batch must start at a frame start");
        node.meter.set_state_secs(g0_secs, RadioState::Idle);
        if !node.awake {
            node.awake = true;
            node.awake_since = self.timing.frame_time(u64::from(g0));
        }
        let summary = node.mac.skip_boundaries(pairs);
        let stays_inside = summary.stays_before_last(pairs);
        let sleeps_inside = pairs - 1 - stays_inside;
        node.meter
            .accrue_batch(RadioState::Idle, u64::from(pairs), self.aw_secs);
        node.meter
            .accrue_batch(RadioState::Idle, u64::from(stays_inside), self.data_secs);
        node.meter
            .accrue_batch(RadioState::Sleep, u64::from(sleeps_inside), self.data_secs);
        let last = g0 + pairs - 1;
        let ends_awake = summary.ends_awake(pairs);
        let last_window_secs =
            (self.timing.frame_time(u64::from(last)) + self.timing.atim_window()).as_secs();
        node.meter.jump_to_secs(
            last_window_secs,
            if ends_awake {
                RadioState::Idle
            } else {
                RadioState::Sleep
            },
        );
        node.awake = ends_awake;
        if ends_awake {
            if let Some(j) = summary.last_sleep {
                node.awake_since = self.timing.frame_time(u64::from(g0 + j + 1));
            }
        }
        node.applied = 2 * (g0 + pairs);
    }

    /// The shared frame-start boundary: one event for the whole batch.
    /// Per-lane insertion order matches the serial handler — each lane's
    /// ATIM attempts enter in ascending node order, and the batch's
    /// `WindowEnd`/next `FrameStart` are scheduled after all of them
    /// (the serial handler's tail position for every lane).
    /// The replica [`BoundaryEngine::FrameSkip`] jump — the serial
    /// `Runner::try_skip_frames` lifted to the batch. The network must
    /// be quiescent in *every* lane (no boundary active-set member, no
    /// pending lane event — an O(lanes) check against live counters);
    /// the skipped shared boundaries were then no-ops for all lanes at
    /// once, so the whole batch fast-forwards together and each lane
    /// stays bitwise equal to its serial frame-skip (and geometric) run.
    fn try_skip_frames(&mut self, now: SimTime) -> bool {
        let quiescent = (0..self.lanes).all(|lane| {
            self.frame_set.lane_is_empty(lane)
                && self.window_set.lane_is_empty(lane)
                && self.lane_q[lane].is_empty()
        });
        if !quiescent {
            return false;
        }
        let f = self.fired / 2;
        debug_assert_eq!(now, self.timing.frame_time(u64::from(f)));
        let beacon_nanos = self.timing.beacon_interval().as_nanos();
        let last_frame = (self.duration.as_nanos() / beacon_nanos) as u32;
        let target = match self.next_gen {
            Some(t) => ((t.as_nanos() / beacon_nanos) as u32).min(last_frame),
            None => last_frame,
        };
        if target <= f {
            return false;
        }
        // O(1): just the cursor advance and the rescheduled frame start
        // — the boundary-seconds tables are a dense-engine cache, and
        // later settles convert skipped boundaries on demand (see the
        // serial `try_skip_frames`).
        self.fired = 2 * target;
        self.sched_shared(self.timing.frame_time(u64::from(target)), SEv::FrameStart);
        true
    }

    fn on_frame_start(&mut self, now: SimTime) {
        debug_assert!(self.lazy, "boundary events exist only on the PSM path");
        if self.frame_skip && self.try_skip_frames(now) {
            return;
        }
        let frame = self.fired / 2;
        if self.dense_boundaries {
            // Skipping engines convert on demand instead — empty tables
            // are what let `try_skip_frames` jump in O(1).
            debug_assert_eq!(self.frame_secs.len(), frame as usize);
            self.frame_secs.push(now.as_secs());
            self.window_secs
                .push((now + self.timing.atim_window()).as_secs());
        }
        let mut sweep = std::mem::take(&mut self.sweep);
        self.frame_set.sweep(&mut sweep);
        for &i in &sweep {
            let i = i as usize;
            let mut mask = self.frame_set.mask(i);
            while mask != 0 {
                let lane = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                self.settle(i, lane);
                let wants = self.apply_frame_start(i, lane, frame);
                debug_assert!(wants, "frame-set member {i} had nothing to announce");
                let li = self.li(i, lane);
                if wants && !self.nodes[li].atim_scheduled {
                    self.nodes[li].atim_scheduled = true;
                    let at = self.backoff.next_atim_attempt(now, &mut self.nodes[li].rng);
                    self.sched_lane(lane, at, LEv::Atim(i as u32));
                }
                self.window_set.set(i, lane, true);
            }
        }
        self.sweep = sweep;
        self.fired = 2 * frame + 1;
        self.sched_shared(now + self.timing.atim_window(), SEv::WindowEnd);
        let next = now + self.timing.beacon_interval();
        if next <= self.duration {
            self.sched_shared(next, SEv::FrameStart);
        }
    }

    fn on_window_end(&mut self, now: SimTime) {
        debug_assert!(self.lazy, "boundary events exist only on the PSM path");
        let frame = self.fired / 2;
        let mut sweep = std::mem::take(&mut self.sweep);
        self.window_set.sweep(&mut sweep);
        for &i in &sweep {
            let i = i as usize;
            let mut mask = self.window_set.mask(i);
            while mask != 0 {
                let lane = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                self.settle(i, lane);
                self.apply_window_end(i, lane, frame);
                self.schedule_window_attempts(now, i, lane);
            }
        }
        self.sweep = sweep;
        self.fired = 2 * frame + 2;
    }

    #[inline]
    fn schedule_window_attempts(&mut self, now: SimTime, i: usize, lane: usize) {
        let li = self.li(i, lane);
        let node = &mut self.nodes[li];
        if node.mac.has_pending_normal() && !node.normal_scheduled {
            node.normal_scheduled = true;
            let at = self.backoff.next_data_attempt(now, &mut node.rng);
            self.sched_lane(lane, at, LEv::Data(i as u32, DataIntent::Normal));
        }
        let node = &mut self.nodes[li];
        if node.mac.has_pending_immediate() && !node.immediate_scheduled {
            node.immediate_scheduled = true;
            let at = self.backoff.next_data_attempt(now, &mut node.rng);
            self.sched_lane(lane, at, LEv::Data(i as u32, DataIntent::Immediate));
        }
    }

    /// The shared generation event: update times are config-determined
    /// and identical across lanes, so one event sweeps every lane's
    /// source MAC (each with its own forwarding coin).
    fn on_gen_update(&mut self, now: SimTime) {
        let i = self.source.index();
        let id = self.gen_times.len() as u64;
        self.gen_times.push(now);
        for lane in 0..self.lanes {
            self.settle(i, lane);
            let n = self.lanes;
            let mut row = vec![None; self.nodes.len() / n];
            row[i] = Some(now);
            self.receptions[lane].push(row);
            let li = self.li(i, lane);
            let decision = self.nodes[li].mac.source_update(id);
            if self.psm {
                match decision {
                    ForwardDecision::EnqueueForNextActiveWindow => {
                        if self.timing.in_atim_window(now) {
                            self.nodes[li].mac.announce_now();
                            if !self.nodes[li].atim_scheduled {
                                self.nodes[li].atim_scheduled = true;
                                let at =
                                    self.backoff.next_atim_attempt(now, &mut self.nodes[li].rng);
                                self.sched_lane(lane, at, LEv::Atim(i as u32));
                            }
                        }
                    }
                    ForwardDecision::SendImmediately => {
                        self.schedule_immediate_attempt(now, i, lane);
                    }
                }
            } else {
                self.schedule_immediate_attempt(now, i, lane);
            }
            self.refresh_sets(i, lane);
        }
        let next = now + self.update_period;
        if next <= self.duration {
            self.next_gen = Some(next);
            self.sched_shared(next, SEv::GenUpdate);
        } else {
            self.next_gen = None;
        }
    }

    fn schedule_immediate_attempt(&mut self, now: SimTime, i: usize, lane: usize) {
        let li = self.li(i, lane);
        if self.nodes[li].immediate_scheduled || !self.nodes[li].mac.has_pending_immediate() {
            return;
        }
        self.nodes[li].immediate_scheduled = true;
        let from = if self.psm {
            self.timing.earliest_data_time(now)
        } else {
            now
        };
        let at = self
            .backoff
            .next_data_attempt(from, &mut self.nodes[li].rng);
        self.sched_lane(lane, at, LEv::Data(i as u32, DataIntent::Immediate));
    }

    fn on_atim_attempt(&mut self, now: SimTime, i: usize, lane: usize) {
        let id = NodeId(i as u32);
        let li = self.li(i, lane);
        if !self.nodes[li].mac.has_pending_normal() {
            self.nodes[li].atim_scheduled = false;
            return;
        }
        let window_end = self.timing.window_end(now);
        if !self.timing.in_atim_window(now) || now + self.atim_air > window_end {
            self.nodes[li].atim_scheduled = false;
            return;
        }
        if self.channel.is_transmitting(lane, id) || self.channel.carrier_busy(lane, id) {
            let at = self.backoff.next_atim_attempt(now, &mut self.nodes[li].rng);
            if at + self.atim_air <= window_end {
                self.sched_lane(lane, at, LEv::Atim(i as u32));
            } else {
                self.nodes[li].atim_scheduled = false;
            }
            return;
        }
        self.nodes[li].atim_scheduled = false;
        debug_assert!(
            !self.lazy || self.nodes[li].applied >= self.fired,
            "ATIM transmit on unsettled node {id}"
        );
        let contents = self.nodes[li].mac.packet_contents(self.k);
        let end = self
            .channel
            .begin_tx(lane, now, Frame::atim(id, contents), self.atim_air);
        self.nodes[li].meter.set_state(now, RadioState::Transmit);
        self.sched_lane(lane, end, LEv::TxEnd(i as u32));
    }

    fn on_data_attempt(&mut self, now: SimTime, i: usize, lane: usize, intent: DataIntent) {
        let id = NodeId(i as u32);
        let li = self.li(i, lane);
        let pending = match intent {
            DataIntent::Normal => self.nodes[li].mac.has_pending_normal(),
            DataIntent::Immediate => self.nodes[li].mac.has_pending_immediate(),
        };
        if !pending {
            self.clear_guard(li, intent);
            return;
        }
        debug_assert!(self.nodes[li].awake, "pending data must keep {id} awake");
        if self.psm {
            let blocked_by_window = self.timing.in_atim_window(now);
            let overruns = now + self.data_air > self.timing.next_frame_start(now);
            if blocked_by_window || overruns {
                let from = if blocked_by_window {
                    self.timing.earliest_data_time(now)
                } else {
                    self.timing
                        .earliest_data_time(self.timing.next_frame_start(now))
                };
                let at = self
                    .backoff
                    .next_data_attempt(from, &mut self.nodes[li].rng);
                self.sched_lane(lane, at, LEv::Data(i as u32, intent));
                return;
            }
        }
        if self.channel.is_transmitting(lane, id) || self.channel.carrier_busy(lane, id) {
            let at = self.backoff.next_data_attempt(now, &mut self.nodes[li].rng);
            self.sched_lane(lane, at, LEv::Data(i as u32, intent));
            return;
        }
        self.clear_guard(li, intent);
        debug_assert!(
            !self.lazy || self.nodes[li].applied >= self.fired,
            "transmit on unsettled node {id}"
        );
        let contents = self.nodes[li].mac.packet_contents(self.k);
        let frame = Frame::data(id, contents, intent == DataIntent::Immediate);
        let end = self.channel.begin_tx(lane, now, frame, self.data_air);
        self.nodes[li].meter.set_state(now, RadioState::Transmit);
        self.sched_lane(lane, end, LEv::TxEnd(i as u32));
    }

    fn clear_guard(&mut self, li: usize, intent: DataIntent) {
        match intent {
            DataIntent::Normal => self.nodes[li].normal_scheduled = false,
            DataIntent::Immediate => self.nodes[li].immediate_scheduled = false,
        }
    }

    fn on_tx_end(&mut self, now: SimTime, i: usize, lane: usize) {
        let mut deliveries = std::mem::take(&mut self.deliveries);
        let frame = self
            .channel
            .end_tx_into(lane, now, NodeId(i as u32), &mut deliveries);
        let li = self.li(i, lane);
        self.nodes[li].meter.set_state(now, RadioState::Idle);
        match frame.kind {
            FrameKind::Beacon => {}
            FrameKind::Atim { .. } => {
                self.atim_tx[lane] += 1;
                for d in &deliveries {
                    let r = d.receiver.index();
                    self.settle(r, lane);
                    let rl = self.li(r, lane);
                    if !self.nodes[rl].awake || self.nodes[rl].awake_since > d.started {
                        continue;
                    }
                    if !d.clean {
                        self.collisions[lane] += 1;
                        continue;
                    }
                    self.nodes[rl].mac.receive_atim();
                }
            }
            FrameKind::Data { updates, immediate } => {
                self.data_tx[lane] += 1;
                if immediate {
                    self.immediate_tx[lane] += 1;
                    self.nodes[li].mac.mark_immediate_sent();
                } else {
                    self.nodes[li].mac.mark_normal_sent();
                }
                self.refresh_sets(i, lane);
                for d in &deliveries {
                    let r = d.receiver.index();
                    self.settle(r, lane);
                    let rl = self.li(r, lane);
                    if !self.nodes[rl].awake || self.nodes[rl].awake_since > d.started {
                        continue;
                    }
                    if !d.clean {
                        self.collisions[lane] += 1;
                        continue;
                    }
                    let fresh = self.nodes[rl].mac.receive_data(&updates);
                    let had_fresh = !fresh.is_empty();
                    for id in fresh {
                        let row = &mut self.receptions[lane][id as usize];
                        if row[r].is_none() {
                            row[r] = Some(now);
                        }
                    }
                    if self.nodes[rl].mac.has_pending_immediate() {
                        self.schedule_immediate_attempt(now, r, lane);
                    }
                    if had_fresh {
                        self.refresh_sets(r, lane);
                    }
                }
            }
        }
        self.deliveries = deliveries;
    }

    fn finish_stats(&mut self) -> Vec<NetRunStats> {
        let n = self.nodes.len() / self.lanes;
        if self.lazy {
            for i in 0..n {
                for lane in 0..self.lanes {
                    self.settle(i, lane);
                }
            }
        }
        let topo = self.channel.topology();
        // Scenario-determined, seed-independent: one BFS for the whole
        // batch (the serial path pays it per replica).
        let hop_distance = topo.hop_distances(self.source);
        let mean_degree = topo.mean_degree();
        (0..self.lanes)
            .map(|lane| {
                let energy_joules = (0..n)
                    .map(|i| {
                        self.nodes[i * self.lanes + lane]
                            .meter
                            .joules_at(self.duration)
                    })
                    .collect();
                let state_secs = (0..n)
                    .map(|i| {
                        self.nodes[i * self.lanes + lane]
                            .meter
                            .durations_at(self.duration)
                    })
                    .collect();
                NetRunStats {
                    source: self.source,
                    hop_distance: hop_distance.clone(),
                    gen_times: self.gen_times.clone(),
                    receptions: std::mem::take(&mut self.receptions[lane]),
                    energy_joules,
                    state_secs,
                    data_tx: self.data_tx[lane],
                    atim_tx: self.atim_tx[lane],
                    immediate_tx: self.immediate_tx[lane],
                    collisions: self.collisions[lane],
                    mean_degree,
                    adaptive_trace: Vec::new(),
                }
            })
            .collect()
    }
}
