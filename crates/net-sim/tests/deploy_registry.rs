//! Contracts of the deployment registry and the `Arc`-shared scenario
//! path.
//!
//! Two families of guarantees are pinned here:
//!
//! * **Registry transparency** — a deployment served by a
//!   [`DeploymentCache`] (including the process-wide
//!   [`DeploymentCache::global`] registry, including when several threads
//!   race on the first touch of a key) is *bitwise* identical to a fresh
//!   [`NetSim::draw_deployment`] for the same `(seed, geometry)`, and all
//!   callers of one key share one allocation.
//! * **Shared-topology equivalence** — [`NetSim::run_on`] with the
//!   `Arc`-shared topology reproduces [`NetSim::run`] bit for bit (the
//!   pre-`Arc` per-run-clone semantics), sequentially and when many
//!   `(mode, run)` jobs execute on the same shared scenario across
//!   threads at once.

use std::sync::{Arc, Barrier};

use pbbf_core::PbbfParams;
use pbbf_net_sim::{CachedDeployment, DeploymentCache, NetConfig, NetMode, NetSim};
use proptest::prelude::*;

/// Bitwise comparison of two drawn scenarios: exact adjacency via
/// `PartialEq`, plus positions compared by bit pattern (so an `==` on a
/// recomputed-but-differently-rounded float cannot slip through).
fn assert_bitwise_identical(a: &CachedDeployment, b: &CachedDeployment) {
    assert_eq!(a, b, "topology/source must compare equal");
    assert_eq!(a.source(), b.source());
    let (ta, tb) = (a.topology(), b.topology());
    assert_eq!(ta.len(), tb.len());
    for n in ta.nodes() {
        let (pa, pb) = (ta.position(n), tb.position(n));
        assert_eq!(pa.x.to_bits(), pb.x.to_bits(), "x bits of {n}");
        assert_eq!(pa.y.to_bits(), pb.y.to_bits(), "y bits of {n}");
        assert_eq!(ta.neighbors(n), tb.neighbors(n));
    }
}

proptest! {
    /// Registry-cached vs freshly-drawn deployments are bitwise-identical
    /// scenarios for randomized `(seed, geometry)` keys, and repeat
    /// lookups share the first draw's allocation.
    #[test]
    fn cached_deployment_is_bitwise_fresh(
        nodes in 10usize..40,
        delta_x10 in 80u32..=140,
        seed in 0u64..1_000_000,
    ) {
        let mut cfg = NetConfig::table2();
        cfg.nodes = nodes;
        cfg.delta = f64::from(delta_x10) / 10.0;
        let cache = DeploymentCache::new();
        let cached = cache.get_or_draw(&cfg, seed);
        let fresh = NetSim::draw_deployment(&cfg, seed);
        assert_bitwise_identical(&cached, &fresh);
        let again = cache.get_or_draw(&cfg, seed);
        prop_assert!(Arc::ptr_eq(&cached, &again), "hit returns the same allocation");
        // The process-wide registry obeys the same contract for the same
        // randomized keys.
        let global = DeploymentCache::global().get_or_draw(&cfg, seed);
        assert_bitwise_identical(&global, &fresh);
    }
}

proptest! {
    /// LRU eviction is invisible to values: whatever the interleaving of
    /// keys against a tiny capacity, every lookup — hit, first draw, or
    /// re-draw of an evicted entry — serves the same bits a fresh
    /// uncached draw would, and occupancy never exceeds the bound.
    #[test]
    fn eviction_never_changes_drawn_values(
        capacity in 1usize..4,
        lookups in prop::collection::vec((0u64..6, 10usize..14), 8..20),
    ) {
        let cache = DeploymentCache::with_capacity(capacity);
        for &(seed, nodes) in &lookups {
            let mut cfg = NetConfig::table2();
            cfg.nodes = nodes;
            let served = cache.get_or_draw(&cfg, seed);
            assert_bitwise_identical(&served, &NetSim::draw_deployment(&cfg, seed));
            prop_assert!(cache.len() <= capacity, "occupancy over bound");
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.capacity, capacity);
        prop_assert_eq!(stats.hits + stats.misses, lookups.len() as u64);
        // Every insert beyond the bound evicted exactly one entry.
        prop_assert_eq!(stats.evictions, stats.misses.saturating_sub(capacity as u64));
    }
}

/// Concurrent first-touch: several threads race `get_or_draw` on the same
/// fresh keys; every caller must observe the fresh-draw value and end up
/// sharing one entry per key.
#[test]
fn concurrent_first_touch_is_consistent() {
    const THREADS: usize = 8;
    const SEEDS: u64 = 6;
    let mut cfg = NetConfig::table2();
    cfg.nodes = 30;
    let cache = DeploymentCache::new();
    let barrier = Barrier::new(THREADS);
    let results: Vec<Vec<Arc<CachedDeployment>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let (cache, barrier, cfg) = (&cache, &barrier, &cfg);
                s.spawn(move || {
                    barrier.wait();
                    (0..SEEDS)
                        .map(|seed| cache.get_or_draw(cfg, seed))
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    for seed in 0..SEEDS {
        let fresh = NetSim::draw_deployment(&cfg, seed);
        let canonical = &results[0][seed as usize];
        for per_thread in &results {
            let got = &per_thread[seed as usize];
            assert_bitwise_identical(got, &fresh);
            assert!(
                Arc::ptr_eq(got, canonical),
                "seed {seed}: every racer shares the winning entry"
            );
        }
    }
    assert_eq!(cache.len(), SEEDS as usize, "one entry per key");
    assert_eq!(
        cache.hits() + cache.misses(),
        THREADS as u64 * SEEDS,
        "every lookup is either a hit or a (possibly discarded) draw"
    );
    assert!(cache.misses() >= SEEDS, "each key was drawn at least once");
}

/// The global registry is one process-wide instance, and `clear` only
/// drops cached entries — it cannot change any subsequently served value.
#[test]
fn global_registry_shares_and_survives_clear() {
    let mut cfg = NetConfig::table2();
    // A geometry no other test in this binary uses, so concurrent tests
    // cannot interfere with the ptr_eq assertions.
    cfg.nodes = 23;
    cfg.delta = 9.5;
    let reg = DeploymentCache::global();
    let a = reg.get_or_draw(&cfg, 77);
    let b = DeploymentCache::global().get_or_draw(&cfg, 77);
    assert!(
        Arc::ptr_eq(&a, &b),
        "global() always names the same registry"
    );
    reg.clear();
    let c = reg.get_or_draw(&cfg, 77);
    assert_bitwise_identical(&c, &a);
    // `a` survived the clear; the redraw is a fresh allocation.
    assert!(!Arc::ptr_eq(&a, &c));
}

fn modes() -> [NetMode; 4] {
    [
        NetMode::AlwaysOn,
        NetMode::SleepScheduled(PbbfParams::PSM),
        NetMode::SleepScheduled(PbbfParams::new(0.25, 0.05).expect("valid")),
        NetMode::SleepScheduled(PbbfParams::new(0.5, 0.5).expect("valid")),
    ]
}

proptest! {
    /// `run_on` over the `Arc`-shared topology reproduces `run` bit for
    /// bit — the pre-refactor per-run-clone semantics — through both a
    /// direct draw and the process-wide registry.
    #[test]
    fn run_on_shared_equals_run(
        seed in 0u64..1_000_000,
        mode_sel in 0u8..4,
    ) {
        let mut cfg = NetConfig::table2();
        cfg.duration_secs = 120.0;
        let sim = NetSim::new(cfg, modes()[mode_sel as usize]);
        let reference = sim.run(seed);
        let drawn = NetSim::draw_deployment(&cfg, seed);
        prop_assert_eq!(&sim.run_on(seed, &drawn), &reference);
        let cached = DeploymentCache::global().get_or_draw(&cfg, seed);
        prop_assert_eq!(&sim.run_on(seed, &cached), &reference);
    }
}

/// Every `(mode, run)` job of a sweep point runs on one shared scenario
/// allocation across threads at once, and the concurrency changes
/// nothing: results equal the sequential ones, and no run leaks a
/// reference to the shared topology.
#[test]
fn concurrent_modes_share_one_scenario() {
    let mut cfg = NetConfig::table2();
    cfg.duration_secs = 150.0;
    let deployment = DeploymentCache::global().get_or_draw(&cfg, 4242);
    let refs_before = Arc::strong_count(deployment.topology_arc());
    let sequential: Vec<_> = modes()
        .iter()
        .map(|&m| NetSim::new(cfg, m).run_on(9, &deployment))
        .collect();
    let concurrent: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = modes()
            .iter()
            .map(|&m| {
                let deployment = &deployment;
                s.spawn(move || NetSim::new(cfg, m).run_on(9, deployment))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("run panicked"))
            .collect()
    });
    assert_eq!(sequential, concurrent);
    assert_eq!(
        Arc::strong_count(deployment.topology_arc()),
        refs_before,
        "runs borrow the scenario; none keeps a reference"
    );
}
