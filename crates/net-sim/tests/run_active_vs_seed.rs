//! Pins the boundary engines of the active-set event loop.
//!
//! * [`BoundaryEngine::Dense`] replays every skipped boundary exactly and
//!   must stay **bit-identical to the original per-node-walk loop** it
//!   replaced two PRs ago: `EXPECTED_DENSE` was captured from that loop
//!   (commit 630516c) and has never been regenerated since.
//! * [`BoundaryEngine::Geometric`] settles idle-node
//!   boundary runs in closed form — a relaxed RNG-stream-layout contract
//!   under which every value for a fixed seed moved **once**, at the PR
//!   that introduced it. `EXPECTED_GEOMETRIC` pins the new layout; the
//!   statistical-equivalence suite (`tests/boundary_equivalence.rs` at
//!   the workspace root) pins the two engines together in distribution.
//!   Modes whose sleep coin is deterministic (NO PSM, PSM, `q = 1`,
//!   adaptive) consume no sleep randomness on either engine, so their
//!   rows agree across both tables up to the association order of the
//!   batched energy additions (almost all are bitwise equal).
//!
//! Every `(seed, mode)` cell hashes the [`NetRunStats`] of one run —
//! reception times, energy joules bit-for-bit, transmission and
//! collision counters, adaptive traces (everything the original loop
//! produced; see [`fingerprint`] for the one later-added exclusion).
//! Every cell is additionally
//! executed through [`NetSim::run_on`] on a registry-cached,
//! `Arc`-shared scenario and must hash identically.
//!
//! Regenerate (only when an *intentional* behavior change is made) with:
//!
//! ```text
//! PBBF_PRINT_FINGERPRINTS=1 cargo test -p pbbf-net-sim --test run_active_vs_seed -- --nocapture
//! ```

use pbbf_core::adaptive::AdaptiveConfig;
use pbbf_core::PbbfParams;
use pbbf_net_sim::{BoundaryEngine, DeploymentCache, NetConfig, NetMode, NetRunStats, NetSim};

/// FNV-1a over the stats, f64s by bit pattern.
///
/// Hashes every field the original per-node-walk loop produced.
/// `state_secs` (added with the boundary engines) is deliberately *not*
/// hashed: including it would force regenerating `EXPECTED_DENSE` and
/// sever its provenance to the deleted loop. It is pinned indirectly —
/// `energy_joules`, hashed bit-for-bit, is the power-weighted dot
/// product of the same `StateClock` accumulators (the three weights
/// differ by orders of magnitude, so any misattributed residency moves
/// the joules) — and distributionally by `tests/boundary_equivalence.rs`.
fn fingerprint(s: &NetRunStats) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(u64::from(s.source.0));
    for d in &s.hop_distance {
        eat(u64::from(d.map_or(u32::MAX, |x| x)));
    }
    for t in &s.gen_times {
        eat(t.as_nanos());
    }
    for row in &s.receptions {
        for t in row {
            eat(t.map_or(u64::MAX, |x| x.as_nanos()));
        }
    }
    for e in &s.energy_joules {
        eat(e.to_bits());
    }
    eat(s.data_tx);
    eat(s.atim_tx);
    eat(s.immediate_tx);
    eat(s.collisions);
    eat(s.mean_degree.to_bits());
    for &(p, q) in &s.adaptive_trace {
        eat(p.to_bits());
        eat(q.to_bits());
    }
    h
}

fn modes() -> Vec<(&'static str, NetMode)> {
    vec![
        ("no-psm", NetMode::AlwaysOn),
        ("psm", NetMode::SleepScheduled(PbbfParams::PSM)),
        (
            "pbbf-lo",
            NetMode::SleepScheduled(PbbfParams::new(0.25, 0.05).unwrap()),
        ),
        (
            "pbbf-mid",
            NetMode::SleepScheduled(PbbfParams::new(0.5, 0.5).unwrap()),
        ),
        (
            "pbbf-hi-q",
            NetMode::SleepScheduled(PbbfParams::new(0.1, 1.0).unwrap()),
        ),
        (
            "adaptive",
            NetMode::Adaptive(AdaptiveConfig::default_for(
                PbbfParams::new(0.1, 0.3).unwrap(),
            )),
        ),
    ]
}

/// One grid cell: the `run` fingerprint, asserted identical to the same
/// run executed on a registry-cached `Arc`-shared scenario (the
/// shared-topology path must be indistinguishable from the fresh-draw,
/// per-run-clone path it replaced).
fn cell(cfg: NetConfig, mode: NetMode, seed: u64, label: &str) -> (String, u64) {
    let sim = NetSim::new(cfg, mode);
    let fp = fingerprint(&sim.run(seed));
    let shared = DeploymentCache::global().get_or_draw(&cfg, seed);
    let fp_shared = fingerprint(&sim.run_on(seed, &shared));
    assert_eq!(
        fp, fp_shared,
        "{label}: Arc-shared run_on diverged from run for seed {seed}"
    );
    (label.to_string(), fp)
}

fn grid(engine: BoundaryEngine) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut cfg = NetConfig::table2();
    cfg.duration_secs = 300.0;
    cfg.boundary_engine = engine;
    for (label, mode) in modes() {
        for seed in [1u64, 7, 42] {
            out.push(cell(cfg, mode, seed, &format!("{label}/{seed}")));
        }
    }
    // A denser, busier scenario so contention paths are pinned too.
    let mut dense = NetConfig::table2();
    dense.duration_secs = 200.0;
    dense.delta = 16.0;
    dense.lambda = 0.1;
    dense.boundary_engine = engine;
    for (label, mode) in modes() {
        out.push(cell(dense, mode, 9, &format!("dense/{label}/9")));
    }
    // A larger sparse low-duty-cycle scenario (the lazy-settling fast
    // path's home turf: most nodes sleep most beacons).
    let mut sparse = NetConfig::table2();
    sparse.nodes = 300;
    sparse.duration_secs = 400.0;
    sparse.boundary_engine = engine;
    for seed in [3u64, 11] {
        let mode = NetMode::SleepScheduled(PbbfParams::new(0.25, 0.05).unwrap());
        out.push(cell(sparse, mode, seed, &format!("sparse/{seed}")));
    }
    out
}

/// Captured from the pre-active-set per-node-walk loop (commit 630516c).
/// The dense engine must reproduce these forever.
const EXPECTED_DENSE: &[(&str, u64)] = &[
    ("no-psm/1", 0x115127465b0942e2),
    ("no-psm/7", 0xab39b06c009eeb55),
    ("no-psm/42", 0x6e905325f5634876),
    ("psm/1", 0xf8df0767c80edf19),
    ("psm/7", 0x27baf7244f97c2cb),
    ("psm/42", 0xfdab74a2db8f7400),
    ("pbbf-lo/1", 0x41ad998a03fa07c0),
    ("pbbf-lo/7", 0x226c041fd8b20f6f),
    ("pbbf-lo/42", 0xd876fba83074acea),
    ("pbbf-mid/1", 0x30e4e17b9509e953),
    ("pbbf-mid/7", 0x076ff0df4c72fd90),
    ("pbbf-mid/42", 0x307f7373de5fc5c9),
    ("pbbf-hi-q/1", 0xe17967e18a929dc7),
    ("pbbf-hi-q/7", 0x22a9dc987c1db31a),
    ("pbbf-hi-q/42", 0x7d766ed3d2a23f16),
    ("adaptive/1", 0x4a63f95a6872e059),
    ("adaptive/7", 0x0e037063ce0d512a),
    ("adaptive/42", 0x4ec1a6acccd6d6ab),
    ("dense/no-psm/9", 0x2970b74c581f139d),
    ("dense/psm/9", 0x4d564f4f2db423cd),
    ("dense/pbbf-lo/9", 0x87e3567ba7a66295),
    ("dense/pbbf-mid/9", 0xec69b834468d3a3f),
    ("dense/pbbf-hi-q/9", 0x8de0e23589e39ef1),
    ("dense/adaptive/9", 0x17dadff62a850f65),
    ("sparse/3", 0x05f2d30d5caf2a27),
    ("sparse/11", 0x6c15ac46ddfaefdc),
];

/// Captured at the PR that introduced the geometric-skip engine — the
/// one-time stream-layout move. Deterministic-coin rows (no-psm, psm,
/// hi-q, adaptive) match `EXPECTED_DENSE` except where noted.
const EXPECTED_GEOMETRIC: &[(&str, u64)] = &[
    ("no-psm/1", 0x115127465b0942e2),
    ("no-psm/7", 0xab39b06c009eeb55),
    ("no-psm/42", 0x6e905325f5634876),
    ("psm/1", 0xf8df0767c80edf19),
    ("psm/7", 0x27baf7244f97c2cb),
    ("psm/42", 0xfdab74a2db8f7400),
    ("pbbf-lo/1", 0x6c6099fbda554c26),
    ("pbbf-lo/7", 0xa78886d487b8e384),
    ("pbbf-lo/42", 0x0ba90dda68562203),
    ("pbbf-mid/1", 0xcc9853a8226bce95),
    ("pbbf-mid/7", 0xea59e247f206c94c),
    ("pbbf-mid/42", 0x0ce0a20fb3cc01cf),
    ("pbbf-hi-q/1", 0xe17967e18a929dc7),
    // q = 1 consumes no sleep randomness, but this cell's batched energy
    // credit associates float additions differently around a transmit
    // instant — a last-bit move, part of the relaxed contract.
    ("pbbf-hi-q/7", 0xd14279909a98a8d1),
    ("pbbf-hi-q/42", 0x7d766ed3d2a23f16),
    ("adaptive/1", 0x4a63f95a6872e059),
    ("adaptive/7", 0x0e037063ce0d512a),
    ("adaptive/42", 0x4ec1a6acccd6d6ab),
    ("dense/no-psm/9", 0x2970b74c581f139d),
    ("dense/psm/9", 0x4d564f4f2db423cd),
    ("dense/pbbf-lo/9", 0x635a7f0d9a5f1f89),
    ("dense/pbbf-mid/9", 0xec69b834468d3a3f),
    ("dense/pbbf-hi-q/9", 0x8de0e23589e39ef1),
    ("dense/adaptive/9", 0x17dadff62a850f65),
    ("sparse/3", 0xaa2a0fcf461e6947),
    ("sparse/11", 0x2f4d5ba8890caff2),
];

/// The frame-skip goldens are *defined as* the geometric table: the
/// engine's contract is bitwise identity to [`BoundaryEngine::Geometric`]
/// at every `q` (skipped frames are provably no-ops — see the runner's
/// module docs), so a new table would be byte-for-byte the same and
/// would only obscure the contract. A frame-skip cell diverging from
/// this table is a bug in the quiescence check or the jump, never a new
/// baseline.
const EXPECTED_FRAMESKIP: &[(&str, u64)] = EXPECTED_GEOMETRIC;

fn check(engine: BoundaryEngine, expected: &[(&str, u64)], what: &str) {
    let got = grid(engine);
    if std::env::var("PBBF_PRINT_FINGERPRINTS").is_ok() {
        println!("const {what}: &[(&str, u64)] = &[");
        for (label, fp) in &got {
            println!("    (\"{label}\", 0x{fp:016x}),");
        }
        println!("];");
        return;
    }
    assert_eq!(got.len(), expected.len(), "grid shape changed");
    for ((label, fp), (elabel, efp)) in got.iter().zip(expected) {
        assert_eq!(label, elabel, "grid order changed");
        assert_eq!(
            *fp, *efp,
            "{label}: {what} stats diverged from the committed golden"
        );
    }
}

#[test]
fn dense_engine_matches_seed_goldens() {
    check(BoundaryEngine::Dense, EXPECTED_DENSE, "EXPECTED_DENSE");
}

#[test]
fn geometric_engine_matches_committed_goldens() {
    check(
        BoundaryEngine::Geometric,
        EXPECTED_GEOMETRIC,
        "EXPECTED_GEOMETRIC",
    );
}

#[test]
fn frame_skip_engine_matches_geometric_goldens() {
    check(
        BoundaryEngine::FrameSkip,
        EXPECTED_FRAMESKIP,
        "EXPECTED_FRAMESKIP",
    );
}
