//! The lockstep-batching contract: `run_replicas(seeds, d)[l]` is
//! **bitwise equal** to `run_on(seeds[l], d)` for every lane, every
//! mode, and both boundary engines. `NetRunStats::PartialEq` compares
//! every field exactly (f64 vectors bitwise), so each assertion pins the
//! complete run — receptions, per-node energy, state residencies,
//! counters. There is no golden refresh: a divergence is a bug in the
//! merged event loop, never a new baseline.
//!
//! CI runs this suite at `PBBF_THREADS=1/2/8` — batching must be immune
//! to the thread count (it is single-threaded per batch by
//! construction; the matrix guards against accidental coupling to the
//! process-wide deployment registry).

use pbbf_core::adaptive::AdaptiveConfig;
use pbbf_core::PbbfParams;
use pbbf_net_sim::{BoundaryEngine, NetConfig, NetMode, NetSim};

fn cfg(duration: f64) -> NetConfig {
    let mut c = NetConfig::table2();
    c.duration_secs = duration;
    c
}

fn pbbf(p: f64, q: f64) -> NetMode {
    NetMode::SleepScheduled(PbbfParams::new(p, q).unwrap())
}

fn assert_batch_matches_serial(sim: &NetSim, seeds: &[u64], deploy_seed: u64, label: &str) {
    let deployment = NetSim::draw_deployment(sim.config(), deploy_seed);
    let batched = sim.run_replicas(seeds, &deployment);
    assert_eq!(batched.len(), seeds.len(), "{label}: one result per seed");
    for (lane, (&seed, got)) in seeds.iter().zip(&batched).enumerate() {
        let want = sim.run_on(seed, &deployment);
        assert_eq!(*got, want, "{label}: lane {lane} (seed {seed}) diverged");
    }
}

#[test]
fn modes_and_endpoints_match_serial_bitwise() {
    // Every protocol regime the batched path implements, including the
    // draw-free q endpoints and pure PSM. Seeds deliberately non-contiguous.
    let seeds = [3u64, 41, 1000];
    let modes = [
        NetMode::AlwaysOn,
        NetMode::SleepScheduled(PbbfParams::PSM),
        pbbf(0.25, 0.05),
        pbbf(0.5, 0.5),
        pbbf(0.25, 1.0),
        pbbf(1.0, 0.0),
    ];
    for mode in modes {
        let sim = NetSim::new(cfg(300.0), mode);
        assert_batch_matches_serial(&sim, &seeds, 7, &format!("{mode:?}"));
    }
}

#[test]
fn all_boundary_engines_match_serial_bitwise() {
    // The merged loop reuses the serial settle machinery per lane; pin
    // the exact-replay, geometric-skip, and frame-skip paths against it.
    for engine in [
        BoundaryEngine::Dense,
        BoundaryEngine::Geometric,
        BoundaryEngine::FrameSkip,
    ] {
        let mut c = cfg(300.0);
        c.boundary_engine = engine;
        let sim = NetSim::new(c, pbbf(0.25, 0.5));
        assert_batch_matches_serial(&sim, &[1, 2, 3, 4], 11, &format!("{engine:?}"));
    }
}

#[test]
fn frame_skip_with_mixed_lane_activity_matches_serial_bitwise() {
    // The replica jump requires *every* lane quiescent. A sparse update
    // schedule with per-lane forwarding coins makes lanes drain their
    // floods at different frames — so some shared frame starts see a
    // mix of quiet and busy lanes (no jump), others see all-quiet (deep
    // jump). Each lane must still equal its serial frame-skip run, and
    // frame skip must leave geometric results untouched.
    let mut c = cfg(800.0);
    c.lambda = 0.004; // period 250 s = 25 frames: long quiescent gaps
    c.boundary_engine = BoundaryEngine::FrameSkip;
    let seeds = [9u64, 23, 51, 77, 104];
    let sim = NetSim::new(c, pbbf(0.25, 0.5));
    assert_batch_matches_serial(&sim, &seeds, 13, "mixed-lane frame skip");
    let mut g = c;
    g.boundary_engine = BoundaryEngine::Geometric;
    let deployment = NetSim::draw_deployment(&c, 13);
    let skip = sim.run_replicas(&seeds, &deployment);
    let geo = NetSim::new(g, pbbf(0.25, 0.5)).run_replicas(&seeds, &deployment);
    assert_eq!(skip, geo, "frame skip must be bitwise geometric per lane");
}

#[test]
fn randomized_configs_match_serial_bitwise() {
    // Whole-run equivalence over a spread of scenario shapes: density,
    // update rate, node count, duration, and deployment seed all vary.
    struct Case {
        nodes: usize,
        delta: f64,
        lambda: f64,
        duration: f64,
        mode: NetMode,
        seeds: [u64; 2],
        deploy_seed: u64,
    }
    let cases = [
        Case {
            nodes: 30,
            delta: 12.0,
            lambda: 0.02,
            duration: 200.0,
            mode: pbbf(0.75, 0.25),
            seeds: [5, 6],
            deploy_seed: 1,
        },
        Case {
            nodes: 80,
            delta: 8.0,
            lambda: 0.005,
            duration: 400.0,
            mode: pbbf(0.1, 0.9),
            seeds: [17, 99],
            deploy_seed: 2,
        },
        Case {
            nodes: 50,
            delta: 18.0, // dense: real contention and collisions
            lambda: 0.01,
            duration: 300.0,
            mode: NetMode::AlwaysOn,
            seeds: [8, 21],
            deploy_seed: 3,
        },
    ];
    for (ci, case) in cases.iter().enumerate() {
        let mut c = cfg(case.duration);
        c.nodes = case.nodes;
        c.delta = case.delta;
        c.lambda = case.lambda;
        let sim = NetSim::new(c, case.mode);
        assert_batch_matches_serial(&sim, &case.seeds, case.deploy_seed, &format!("case {ci}"));
    }
}

#[test]
fn wide_batches_chunk_transparently() {
    // More seeds than one 64-lane batch holds: chunking must be
    // invisible in the results. Tiny scenario keeps 70 replicas cheap.
    let mut c = cfg(60.0);
    c.nodes = 20;
    c.lambda = 0.05;
    let sim = NetSim::new(c, pbbf(0.5, 0.5));
    let seeds: Vec<u64> = (0..70).map(|i| 1000 + i * 13).collect();
    let deployment = NetSim::draw_deployment(sim.config(), 4);
    let batched = sim.run_replicas(&seeds, &deployment);
    assert_eq!(batched.len(), seeds.len());
    for (&seed, got) in seeds.iter().zip(&batched) {
        assert_eq!(*got, sim.run_on(seed, &deployment), "seed {seed}");
    }
}

#[test]
fn adaptive_mode_falls_back_to_serial() {
    let initial = PbbfParams::new(0.1, 0.3).unwrap();
    let sim = NetSim::new(
        cfg(200.0),
        NetMode::Adaptive(AdaptiveConfig::default_for(initial)),
    );
    let deployment = NetSim::draw_deployment(sim.config(), 9);
    let seeds = [2u64, 4];
    let batched = sim.run_replicas(&seeds, &deployment);
    for (&seed, got) in seeds.iter().zip(&batched) {
        assert_eq!(*got, sim.run_on(seed, &deployment), "seed {seed}");
        assert!(!got.adaptive_trace.is_empty(), "adaptive trace preserved");
    }
}

#[test]
fn empty_and_single_seed_batches() {
    let sim = NetSim::new(cfg(100.0), pbbf(0.25, 0.05));
    let deployment = NetSim::draw_deployment(sim.config(), 5);
    assert!(sim.run_replicas(&[], &deployment).is_empty());
    let one = sim.run_replicas(&[42], &deployment);
    assert_eq!(one.len(), 1);
    assert_eq!(one[0], sim.run_on(42, &deployment));
}
