//! Aligned plain-text tables for paper-style parameter listings.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A simple column-aligned text table.
///
/// Used to print Table 1 and Table 2 of the paper, and the
/// paper-vs-measured comparisons in `EXPERIMENTS.md`.
///
/// # Examples
///
/// ```
/// use pbbf_metrics::Table;
///
/// let mut t = Table::new(["Parameter", "Value"]);
/// t.row(["N", "5625 (75 x 75)"]);
/// t.row(["P_TX", "81 mW"]);
/// let text = t.render();
/// assert!(text.contains("P_TX"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The cell at `(row, col)`, if present.
    #[must_use]
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row)?.get(col).map(String::as_str)
    }

    /// Renders the table with a header underline and aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        for (h, w) in self.header.iter().zip(&widths) {
            let _ = write!(out, "{h:<w$}  ", w = *w);
        }
        out.push('\n');
        for w in &widths {
            let _ = write!(out, "{}  ", "-".repeat(*w));
        }
        out.push('\n');
        for row in &self.rows {
            for (c, w) in row.iter().zip(&widths) {
                let _ = write!(out, "{c:<w$}  ", w = *w);
            }
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(["A", "LongHeader"]);
        t.row(["wide-cell-here", "x"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // Underline matches header row length.
        assert_eq!(lines[0].len(), lines[1].len());
        assert!(lines[2].starts_with("wide-cell-here"));
    }

    #[test]
    fn cell_access() {
        let mut t = Table::new(["k", "v"]);
        t.row(["a", "1"]);
        t.row(["b", "2"]);
        assert_eq!(t.cell(1, 1), Some("2"));
        assert_eq!(t.cell(2, 0), None);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(["Parameter", "Value"]);
        t.row(["lambda", "0.01 packets/s"]);
        t.row(["odd,cell", "q\"uote"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "Parameter,Value");
        assert_eq!(lines[1], "lambda,0.01 packets/s");
        assert_eq!(lines[2], "\"odd,cell\",\"q\"\"uote\"");
    }
}
