//! Streaming scalar summaries (Welford's online algorithm).

use serde::{Deserialize, Serialize};

/// A streaming summary of a scalar sample: count, mean, variance, extrema.
///
/// Uses Welford's online algorithm so that values can be recorded one at a
/// time with O(1) memory and good numerical stability. Two summaries can be
/// [merged](Summary::merge) (Chan et al. parallel variant), which the
/// experiment drivers use to combine per-run statistics.
///
/// # Examples
///
/// ```
/// use pbbf_metrics::Summary;
///
/// let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// assert_eq!(s.min(), Some(2.0));
/// assert_eq!(s.max(), Some(9.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    /// Sum of squared deviations from the current mean (Welford's `M2`).
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Records one observation.
    ///
    /// Non-finite values are recorded into the count and extrema but will
    /// poison the mean; simulators in this workspace only produce finite
    /// observations, and debug builds assert this.
    pub fn record(&mut self, value: f64) {
        debug_assert!(value.is_finite(), "non-finite observation: {value}");
        self.count += 1;
        self.sum += value;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Records `n` identical observations.
    pub fn record_n(&mut self, value: f64, n: u64) {
        for _ in 0..n {
            self.record(value);
        }
    }

    /// Merges another summary into this one.
    ///
    /// The result is identical (up to floating-point rounding) to having
    /// recorded all observations of both summaries into one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observations have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; `0.0` when empty (a convenient neutral value for
    /// figure series where an empty cell plots as zero, matching the paper's
    /// treatment of "no nodes received the update").
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`n − 1` denominator); `0.0` for fewer than
    /// two observations.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (`n` denominator); `0.0` when empty.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn sample_stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_stddev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation, if any.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn empty_summary_is_neutral() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.standard_error(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = Summary::new();
        s.record(42.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
    }

    #[test]
    fn known_mean_and_variance() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!(close(s.mean(), 5.0));
        assert!(close(s.population_variance(), 4.0));
        assert!(close(s.sample_variance(), 32.0 / 7.0));
        assert!(close(s.sum(), 40.0));
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Summary::new();
        a.record_n(3.5, 5);
        let mut b = Summary::new();
        for _ in 0..5 {
            b.record(3.5);
        }
        assert_eq!(a.count(), b.count());
        assert!(close(a.mean(), b.mean()));
    }

    #[test]
    fn merge_matches_sequential() {
        let xs = [1.0, 2.5, -3.0, 7.0, 0.25];
        let ys = [10.0, -2.0, 4.5];
        let mut merged: Summary = xs.into_iter().collect();
        let other: Summary = ys.into_iter().collect();
        merged.merge(&other);
        let all: Summary = xs.into_iter().chain(ys).collect();
        assert_eq!(merged.count(), all.count());
        assert!(close(merged.mean(), all.mean()));
        assert!(close(merged.sample_variance(), all.sample_variance()));
        assert_eq!(merged.min(), all.min());
        assert_eq!(merged.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn extend_accumulates() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0]);
        s.extend([3.0]);
        assert_eq!(s.count(), 3);
        assert!(close(s.mean(), 2.0));
    }

    #[test]
    fn serde_round_trip() {
        let s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        let json = serde_json::to_string(&s).unwrap();
        let back: Summary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
