//! Fixed-width binned histograms with quantile estimation.

use serde::{Deserialize, Serialize};

/// A histogram over a fixed range with uniform bin widths.
///
/// Values below the range are clamped into the first bin, values above into
/// the last bin; the clamped counts are tracked separately so experiments
/// can detect mis-sized ranges. Used by the simulators for latency and
/// hop-count distributions.
///
/// # Examples
///
/// ```
/// use pbbf_metrics::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// for x in [0.5, 1.5, 1.6, 9.9] {
///     h.record(x);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bin_count(1), 2);
/// assert!((h.quantile(0.5) - 1.5).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram covering `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, if the range is empty, or if either bound is
    /// non-finite.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "empty histogram range [{lo}, {hi})");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        debug_assert!(value.is_finite(), "non-finite observation: {value}");
        self.count += 1;
        let idx = if value < self.lo {
            self.underflow += 1;
            0
        } else if value >= self.hi {
            self.overflow += 1;
            self.bins.len() - 1
        } else {
            let frac = (value - self.lo) / (self.hi - self.lo);
            ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1)
        };
        self.bins[idx] += 1;
    }

    /// Total number of observations (including clamped ones).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Count in bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn bin_count(&self, idx: usize) -> u64 {
        self.bins[idx]
    }

    /// Number of bins.
    #[must_use]
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Observations recorded below the range (clamped into bin 0).
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations recorded at or above the upper bound (clamped into the
    /// last bin).
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Inclusive lower bound of bin `idx`.
    #[must_use]
    pub fn bin_lo(&self, idx: usize) -> f64 {
        self.lo + (self.hi - self.lo) * idx as f64 / self.bins.len() as f64
    }

    /// Exclusive upper bound of bin `idx`.
    #[must_use]
    pub fn bin_hi(&self, idx: usize) -> f64 {
        self.bin_lo(idx + 1)
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// within the containing bin. Returns the range midpoint when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return (self.lo + self.hi) / 2.0;
        }
        let target = q * self.count as f64;
        let mut cum = 0.0;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = cum + c as f64;
            if next >= target && c > 0 {
                let within = ((target - cum) / c as f64).clamp(0.0, 1.0);
                return self.bin_lo(i) + within * (self.bin_hi(i) - self.bin_lo(i));
            }
            cum = next;
        }
        self.hi
    }

    /// Iterates over `(bin_lo, bin_hi, count)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        (0..self.bins.len()).map(|i| (self.bin_lo(i), self.bin_hi(i), self.bins[i]))
    }

    /// Merges another histogram with identical geometry into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms do not have identical bounds and bin
    /// counts.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram lower bounds differ");
        assert_eq!(self.hi, other.hi, "histogram upper bounds differ");
        assert_eq!(
            self.bins.len(),
            other.bins.len(),
            "histogram bin counts differ"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0);
        h.record(0.999);
        h.record(1.0);
        h.record(9.999);
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(9), 1);
        assert_eq!(h.count(), 4);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(2.0);
        h.record(1.0); // at the exclusive upper bound -> overflow
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(3), 2);
    }

    #[test]
    fn bin_bounds_partition_range() {
        let h = Histogram::new(2.0, 12.0, 5);
        assert_eq!(h.bin_lo(0), 2.0);
        assert_eq!(h.bin_hi(4), 12.0);
        for i in 0..4 {
            assert_eq!(h.bin_hi(i), h.bin_lo(i + 1));
        }
    }

    #[test]
    fn median_of_uniform_data() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let med = h.quantile(0.5);
        assert!((med - 50.0).abs() < 2.0, "median {med}");
        assert!(h.quantile(0.0) <= h.quantile(1.0));
    }

    #[test]
    fn quantile_empty_returns_midpoint() {
        let h = Histogram::new(0.0, 10.0, 10);
        assert_eq!(h.quantile(0.5), 5.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_out_of_range_panics() {
        let h = Histogram::new(0.0, 1.0, 1);
        let _ = h.quantile(1.5);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let mut b = Histogram::new(0.0, 10.0, 10);
        a.record(1.0);
        b.record(1.5);
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bin_count(1), 2);
        assert_eq!(a.bin_count(9), 1);
    }

    #[test]
    #[should_panic(expected = "bin counts differ")]
    fn merge_mismatched_geometry_panics() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let b = Histogram::new(0.0, 10.0, 5);
        a.merge(&b);
    }

    #[test]
    fn iter_covers_all_bins() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.record(0.5);
        h.record(3.5);
        let v: Vec<_> = h.iter().collect();
        assert_eq!(v.len(), 4);
        assert_eq!(v[0], (0.0, 1.0, 1));
        assert_eq!(v[3], (3.0, 4.0, 1));
    }
}
