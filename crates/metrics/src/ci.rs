//! Student-t confidence intervals over run means.
//!
//! The paper averages every data point over ten independent simulation runs
//! (Section 5.1). The experiment drivers in this workspace report a 95%
//! confidence interval alongside each mean so that reproduction noise is
//! visible in the regenerated tables.

use serde::{Deserialize, Serialize};

use crate::Summary;

/// Two-sided Student-t quantile `t_{alpha/2, df}` for the usual confidence
/// levels, via a small table plus the normal approximation for large `df`.
///
/// Supported confidence levels are 0.90, 0.95 and 0.99; other levels fall
/// back to the normal quantile of the nearest supported level. This is
/// deliberately a table: the workspace needs exactly these three levels and
/// an incomplete-beta implementation would be unwarranted surface area.
///
/// # Panics
///
/// Panics if `df == 0`.
#[must_use]
pub fn students_t_quantile(confidence: f64, df: u64) -> f64 {
    assert!(df > 0, "t quantile requires at least one degree of freedom");
    // Rows: df 1..=30, then selected large df handled below.
    // Columns: 90% (t_{0.05}), 95% (t_{0.025}), 99% (t_{0.005}).
    const TABLE: [[f64; 3]; 30] = [
        [6.314, 12.706, 63.657],
        [2.920, 4.303, 9.925],
        [2.353, 3.182, 5.841],
        [2.132, 2.776, 4.604],
        [2.015, 2.571, 4.032],
        [1.943, 2.447, 3.707],
        [1.895, 2.365, 3.499],
        [1.860, 2.306, 3.355],
        [1.833, 2.262, 3.250],
        [1.812, 2.228, 3.169],
        [1.796, 2.201, 3.106],
        [1.782, 2.179, 3.055],
        [1.771, 2.160, 3.012],
        [1.761, 2.145, 2.977],
        [1.753, 2.131, 2.947],
        [1.746, 2.120, 2.921],
        [1.740, 2.110, 2.898],
        [1.734, 2.101, 2.878],
        [1.729, 2.093, 2.861],
        [1.725, 2.086, 2.845],
        [1.721, 2.080, 2.831],
        [1.717, 2.074, 2.819],
        [1.714, 2.069, 2.807],
        [1.711, 2.064, 2.797],
        [1.708, 2.060, 2.787],
        [1.706, 2.056, 2.779],
        [1.703, 2.052, 2.771],
        [1.701, 2.048, 2.763],
        [1.699, 2.045, 2.756],
        [1.697, 2.042, 2.750],
    ];
    const NORMAL: [f64; 3] = [1.645, 1.960, 2.576];

    let col = if confidence >= 0.985 {
        2
    } else if confidence >= 0.925 {
        1
    } else {
        0
    };
    if df <= 30 {
        TABLE[(df - 1) as usize][col]
    } else if df <= 120 {
        // Linear interpolation between df=30 and the normal asymptote is
        // accurate to ~1% here, far below simulation noise.
        let t30 = TABLE[29][col];
        let z = NORMAL[col];
        let frac = (df - 30) as f64 / 90.0;
        t30 + (z - t30) * frac
    } else {
        NORMAL[col]
    }
}

/// A mean together with a symmetric confidence half-width.
///
/// # Examples
///
/// ```
/// use pbbf_metrics::{ConfidenceInterval, Summary};
///
/// let runs: Summary = [10.0, 11.0, 9.0, 10.5, 9.5].into_iter().collect();
/// let ci = ConfidenceInterval::from_summary(&runs, 0.95);
/// assert!((ci.mean - 10.0).abs() < 1e-9);
/// assert!(ci.half_width > 0.0);
/// assert!(ci.contains(10.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Half-width of the two-sided interval at the requested confidence.
    pub half_width: f64,
    /// Confidence level the interval was computed at, e.g. `0.95`.
    pub confidence: f64,
    /// Number of observations behind the estimate.
    pub count: u64,
}

impl ConfidenceInterval {
    /// Computes the interval for the mean of the observations in `summary`.
    ///
    /// With fewer than two observations the half-width is zero (there is no
    /// variance estimate), mirroring how the paper plots single-run points.
    #[must_use]
    pub fn from_summary(summary: &Summary, confidence: f64) -> Self {
        let half_width = if summary.count() < 2 {
            0.0
        } else {
            students_t_quantile(confidence, summary.count() - 1) * summary.standard_error()
        };
        Self {
            mean: summary.mean(),
            half_width,
            confidence,
            count: summary.count(),
        }
    }

    /// Lower endpoint of the interval.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper endpoint of the interval.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `value` lies inside the interval (inclusive).
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo() && value <= self.hi()
    }
}

impl core::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.half_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_quantile_small_df_matches_table() {
        assert_eq!(students_t_quantile(0.95, 1), 12.706);
        assert_eq!(students_t_quantile(0.95, 9), 2.262);
        assert_eq!(students_t_quantile(0.90, 9), 1.833);
        assert_eq!(students_t_quantile(0.99, 9), 3.250);
    }

    #[test]
    fn t_quantile_large_df_approaches_normal() {
        assert_eq!(students_t_quantile(0.95, 10_000), 1.960);
        assert_eq!(students_t_quantile(0.90, 10_000), 1.645);
        assert_eq!(students_t_quantile(0.99, 10_000), 2.576);
    }

    #[test]
    fn t_quantile_monotone_in_confidence() {
        for df in [1, 5, 10, 30, 100] {
            let t90 = students_t_quantile(0.90, df);
            let t95 = students_t_quantile(0.95, df);
            let t99 = students_t_quantile(0.99, df);
            assert!(t90 < t95 && t95 < t99, "df={df}");
        }
    }

    #[test]
    #[should_panic(expected = "degree of freedom")]
    fn t_quantile_zero_df_panics() {
        let _ = students_t_quantile(0.95, 0);
    }

    #[test]
    fn interval_from_ten_runs() {
        // Ten runs as in the paper's methodology.
        let s: Summary = (0..10).map(|i| 5.0 + 0.1 * i as f64).collect();
        let ci = ConfidenceInterval::from_summary(&s, 0.95);
        assert_eq!(ci.count, 10);
        assert!((ci.mean - 5.45).abs() < 1e-12);
        // half-width = t_{.025,9} * sd/sqrt(10)
        let expected = 2.262 * s.sample_stddev() / 10_f64.sqrt();
        assert!((ci.half_width - expected).abs() < 1e-12);
        assert!(ci.contains(ci.mean));
        assert!(ci.lo() < ci.hi());
    }

    #[test]
    fn interval_single_run_has_zero_width() {
        let mut s = Summary::new();
        s.record(3.0);
        let ci = ConfidenceInterval::from_summary(&s, 0.95);
        assert_eq!(ci.half_width, 0.0);
        assert_eq!(ci.lo(), ci.hi());
    }

    #[test]
    fn display_formats() {
        let s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        let ci = ConfidenceInterval::from_summary(&s, 0.95);
        let text = ci.to_string();
        assert!(text.contains('±'), "{text}");
    }
}
