//! Labelled `(x, y)` data series and multi-series figures.
//!
//! Every figure in the paper is a family of curves over a shared x-axis
//! (`q`, `Δ`, grid size, or latency). [`Series`] holds one labelled curve,
//! [`Figure`] a set of curves plus axis labels, with CSV and fixed-width
//! text rendering so the experiment drivers can print exactly the rows the
//! paper plots.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One `(x, y)` observation, optionally with a confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Abscissa (e.g. the `q` parameter).
    pub x: f64,
    /// Ordinate (e.g. joules per update).
    pub y: f64,
    /// Symmetric error half-width around `y` (0 when not estimated).
    pub err: f64,
}

impl Point {
    /// Creates a point with no error estimate.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y, err: 0.0 }
    }

    /// Creates a point with a symmetric error half-width.
    #[must_use]
    pub fn with_err(x: f64, y: f64, err: f64) -> Self {
        Self { x, y, err }
    }
}

/// A labelled curve: what the paper legend calls e.g. `PBBF-0.5` or `PSM`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points in x order.
    pub points: Vec<Point>,
}

impl Series {
    /// Creates an empty series with the given legend label.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point without an error estimate.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push(Point::new(x, y));
    }

    /// Appends a point with a symmetric error half-width.
    pub fn push_with_err(&mut self, x: f64, y: f64, err: f64) {
        self.points.push(Point::with_err(x, y, err));
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `y` value at the given `x`, if a point with that exact abscissa
    /// exists (within `1e-9` tolerance).
    #[must_use]
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.x - x).abs() < 1e-9)
            .map(|p| p.y)
    }

    /// Linear interpolation of `y` at `x`; clamps outside the x-range.
    /// Returns `None` when the series is empty.
    #[must_use]
    pub fn interpolate(&self, x: f64) -> Option<f64> {
        let pts = &self.points;
        let first = pts.first()?;
        if pts.len() == 1 || x <= first.x {
            return Some(first.y);
        }
        let last = pts.last().expect("non-empty");
        if x >= last.x {
            return Some(last.y);
        }
        for w in pts.windows(2) {
            let (a, b) = (w[0], w[1]);
            if x >= a.x && x <= b.x {
                let t = if b.x > a.x {
                    (x - a.x) / (b.x - a.x)
                } else {
                    0.0
                };
                return Some(a.y + t * (b.y - a.y));
            }
        }
        Some(last.y)
    }

    /// Whether the `y` values are non-decreasing in `x` within `tol`.
    #[must_use]
    pub fn is_non_decreasing(&self, tol: f64) -> bool {
        self.points.windows(2).all(|w| w[1].y >= w[0].y - tol)
    }

    /// Whether the `y` values are non-increasing in `x` within `tol`.
    #[must_use]
    pub fn is_non_increasing(&self, tol: f64) -> bool {
        self.points.windows(2).all(|w| w[1].y <= w[0].y + tol)
    }
}

/// A figure: several series over a common pair of axes.
///
/// # Examples
///
/// ```
/// use pbbf_metrics::{Figure, Series};
///
/// let mut s = Series::new("PSM");
/// s.push(0.0, 0.3);
/// s.push(1.0, 0.3);
/// let fig = Figure::new("Figure 8", "q", "Joules/update", vec![s]);
/// let csv = fig.to_csv();
/// assert!(csv.starts_with("q,"));
/// assert!(fig.render_text().contains("PSM"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Figure title, e.g. `"Figure 13: Average energy consumption"`.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates a figure from its parts.
    #[must_use]
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        series: Vec<Series>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series,
        }
    }

    /// Looks up a series by legend label.
    #[must_use]
    pub fn series_named(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// The sorted union of all x values across series (within `1e-9` dedup).
    #[must_use]
    pub fn x_values(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.x))
            .collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        xs
    }

    /// Renders the figure as CSV: one column per series, one row per x.
    ///
    /// Cells where a series has no point at that x are left empty.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", csv_escape(&self.x_label));
        for s in &self.series {
            let _ = write!(out, ",{}", csv_escape(&s.label));
        }
        out.push('\n');
        for x in self.x_values() {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, ",{y}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the figure as an aligned plain-text table, one row per x
    /// value — "the same rows the paper plots".
    #[must_use]
    pub fn render_text(&self) -> String {
        let xs = self.x_values();
        let mut cols: Vec<Vec<String>> = Vec::new();
        let mut head = vec![self.x_label.clone()];
        head.extend(self.series.iter().map(|s| s.label.clone()));

        let mut first = vec![];
        for x in &xs {
            first.push(format!("{x:.4}"));
        }
        cols.push(first);
        for s in &self.series {
            let mut col = Vec::new();
            for x in &xs {
                col.push(match s.y_at(*x) {
                    Some(y) => format!("{y:.4}"),
                    None => "-".to_string(),
                });
            }
            cols.push(col);
        }

        let widths: Vec<usize> = head
            .iter()
            .enumerate()
            .map(|(i, h)| {
                cols[i]
                    .iter()
                    .map(String::len)
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();

        let mut out = String::new();
        let _ = writeln!(out, "# {} (y = {})", self.title, self.y_label);
        for (h, w) in head.iter().zip(&widths) {
            let _ = write!(out, "{h:>w$}  ", w = *w);
        }
        out.push('\n');
        for r in 0..xs.len() {
            for (c, w) in cols.iter().zip(&widths) {
                let _ = write!(out, "{:>w$}  ", c[r], w = *w);
            }
            out.push('\n');
        }
        out
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fig() -> Figure {
        let mut a = Series::new("PSM");
        a.push(0.0, 10.0);
        a.push(0.5, 10.0);
        a.push(1.0, 10.0);
        let mut b = Series::new("PBBF-0.5");
        b.push(0.0, 20.0);
        b.push(1.0, 4.0);
        Figure::new("Fig", "q", "latency (s)", vec![a, b])
    }

    #[test]
    fn x_values_union_sorted_dedup() {
        let fig = sample_fig();
        assert_eq!(fig.x_values(), vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn csv_has_header_and_gaps() {
        let fig = sample_fig();
        let csv = fig.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "q,PSM,PBBF-0.5");
        assert_eq!(lines[1], "0,10,20");
        // PBBF-0.5 has no point at x = 0.5 -> empty cell.
        assert_eq!(lines[2], "0.5,10,");
        assert_eq!(lines[3], "1,10,4");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("a\"b"), "\"a\"\"b\"");
        assert_eq!(csv_escape("plain"), "plain");
    }

    #[test]
    fn render_text_contains_all_labels() {
        let fig = sample_fig();
        let text = fig.render_text();
        assert!(text.contains("PSM"));
        assert!(text.contains("PBBF-0.5"));
        assert!(text.contains("latency (s)"));
        // Missing cell renders as '-'.
        assert!(text.contains('-'));
    }

    #[test]
    fn y_at_exact_match_only() {
        let fig = sample_fig();
        let s = fig.series_named("PBBF-0.5").unwrap();
        assert_eq!(s.y_at(0.0), Some(20.0));
        assert_eq!(s.y_at(0.5), None);
    }

    #[test]
    fn interpolation_midpoint_and_clamping() {
        let fig = sample_fig();
        let s = fig.series_named("PBBF-0.5").unwrap();
        assert_eq!(s.interpolate(0.5), Some(12.0));
        assert_eq!(s.interpolate(-1.0), Some(20.0));
        assert_eq!(s.interpolate(2.0), Some(4.0));
        assert_eq!(Series::new("empty").interpolate(0.5), None);
    }

    #[test]
    fn monotonicity_checks() {
        let fig = sample_fig();
        assert!(fig.series_named("PSM").unwrap().is_non_decreasing(0.0));
        assert!(fig.series_named("PSM").unwrap().is_non_increasing(0.0));
        assert!(fig.series_named("PBBF-0.5").unwrap().is_non_increasing(0.0));
        assert!(!fig.series_named("PBBF-0.5").unwrap().is_non_decreasing(0.0));
    }

    #[test]
    fn serde_round_trip() {
        let fig = sample_fig();
        let json = serde_json::to_string(&fig).unwrap();
        let back: Figure = serde_json::from_str(&json).unwrap();
        assert_eq!(fig, back);
    }
}
