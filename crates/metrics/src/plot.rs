//! Terminal (ASCII) rendering of figures.
//!
//! The experiment drivers print exact rows; for eyeballing shapes —
//! threshold staircases, cross-overs, linear energy growth — a rough
//! terminal plot is far quicker to read. One character cell per grid
//! point, one glyph per series.

use crate::Figure;

/// Glyphs assigned to series in order.
const GLYPHS: [char; 10] = ['*', 'o', '+', 'x', '#', '@', '%', '&', '=', '~'];

impl Figure {
    /// Renders the figure as an ASCII plot of the given character size.
    ///
    /// Each series draws with its own glyph (see the legend below the
    /// plot); later series overdraw earlier ones on collisions. Returns a
    /// note instead of a plot when the figure has no finite points.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is smaller than 8 (no usable canvas).
    #[must_use]
    pub fn render_ascii_plot(&self, width: usize, height: usize) -> String {
        assert!(
            width >= 8 && height >= 8,
            "canvas too small: {width}x{height}"
        );
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| (p.x, p.y)))
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if pts.is_empty() {
            return format!("# {} — no data to plot\n", self.title);
        }
        let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for (x, y) in &pts {
            x_lo = x_lo.min(*x);
            x_hi = x_hi.max(*x);
            y_lo = y_lo.min(*y);
            y_hi = y_hi.max(*y);
        }
        if (x_hi - x_lo).abs() < f64::EPSILON {
            x_hi = x_lo + 1.0;
        }
        if (y_hi - y_lo).abs() < f64::EPSILON {
            y_hi = y_lo + 1.0;
        }

        let mut canvas = vec![vec![' '; width]; height];
        for (si, series) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for p in &series.points {
                if !p.x.is_finite() || !p.y.is_finite() {
                    continue;
                }
                let cx = (((p.x - x_lo) / (x_hi - x_lo)) * (width - 1) as f64).round() as usize;
                let cy = (((p.y - y_lo) / (y_hi - y_lo)) * (height - 1) as f64).round() as usize;
                canvas[height - 1 - cy][cx] = glyph;
            }
        }

        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        out.push_str(&format!("{y_hi:>10.3} ┤"));
        out.push_str(&canvas[0].iter().collect::<String>());
        out.push('\n');
        for row in &canvas[1..height - 1] {
            out.push_str("           │");
            out.push_str(&row.iter().collect::<String>());
            out.push('\n');
        }
        out.push_str(&format!("{y_lo:>10.3} ┤"));
        out.push_str(&canvas[height - 1].iter().collect::<String>());
        out.push('\n');
        out.push_str(&format!(
            "           └{}\n            {x_lo:<10.3}{:>w$.3}\n",
            "─".repeat(width),
            x_hi,
            w = width.saturating_sub(10)
        ));
        for (si, s) in self.series.iter().enumerate() {
            out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.label));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{Figure, Series};

    fn fig() -> Figure {
        let mut a = Series::new("rising");
        let mut b = Series::new("flat");
        for i in 0..=10 {
            let x = i as f64 / 10.0;
            a.push(x, x * x);
            b.push(x, 0.5);
        }
        Figure::new("Shapes", "x", "y", vec![a, b])
    }

    #[test]
    fn plot_contains_title_legend_and_glyphs() {
        let text = fig().render_ascii_plot(40, 12);
        assert!(text.contains("# Shapes"));
        assert!(text.contains("* rising"));
        assert!(text.contains("o flat"));
        assert!(text.contains('*'));
        assert!(text.contains('o'));
    }

    #[test]
    fn plot_axis_labels_show_ranges() {
        let text = fig().render_ascii_plot(40, 12);
        assert!(text.contains("1.000"), "y max");
        assert!(text.contains("0.000"), "y/x min");
    }

    #[test]
    fn empty_figure_reports_no_data() {
        let f = Figure::new("Empty", "x", "y", vec![Series::new("nothing")]);
        let text = f.render_ascii_plot(40, 12);
        assert!(text.contains("no data"));
    }

    #[test]
    fn degenerate_single_point_plots() {
        let mut s = Series::new("dot");
        s.push(2.0, 3.0);
        let f = Figure::new("Dot", "x", "y", vec![s]);
        let text = f.render_ascii_plot(20, 10);
        assert!(text.contains('*'));
    }

    #[test]
    #[should_panic(expected = "canvas too small")]
    fn tiny_canvas_panics() {
        let _ = fig().render_ascii_plot(4, 4);
    }
}
