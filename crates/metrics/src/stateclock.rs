//! Time-weighted state accounting.
//!
//! The radio energy model of the paper charges a node `P_TX`, `P_I` or
//! `P_S` watts depending on which state its radio is in (transmit,
//! receive/idle, sleep — Table 1). [`StateClock`] tracks how long an entity
//! spent in each of a small set of states so that total energy is simply
//! `Σ state_duration × state_power`.

use serde::{Deserialize, Serialize};

/// Accumulates the total time spent in each of `N` states.
///
/// The clock starts in state `0` at time `0.0`. Transitions are reported
/// with [`StateClock::transition`]; time must be non-decreasing. Call
/// [`StateClock::finish`] (or [`StateClock::durations_at`]) to account for
/// the trailing interval.
///
/// # Examples
///
/// ```
/// use pbbf_metrics::StateClock;
///
/// // Two states: 0 = awake, 1 = asleep.
/// let mut clock = StateClock::<2>::new();
/// clock.transition(1.0, 1); // awake during [0, 1), then sleeps
/// clock.transition(4.0, 0); // asleep during [1, 4), then wakes
/// let d = clock.durations_at(5.0);
/// assert_eq!(d, [2.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateClock<const N: usize> {
    durations: [f64; N],
    state: usize,
    since: f64,
}

// The serde derive does not support const generics; implement the traits
// by hand, serializing the duration array as a plain JSON array.
impl<const N: usize> Serialize for StateClock<N> {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(serde::Json::Obj(vec![
            (
                "durations".to_string(),
                serde::to_value(self.durations.as_slice()),
            ),
            ("state".to_string(), serde::to_value(&self.state)),
            ("since".to_string(), serde::to_value(&self.since)),
        ]))
    }
}

impl<'de, const N: usize> Deserialize<'de> for StateClock<N> {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error as _;
        let mut obj = serde::ObjAccess::new(deserializer.take_value()?, "StateClock")
            .map_err(D::Error::custom)?;
        let durations: Vec<f64> = obj.field("durations").map_err(D::Error::custom)?;
        let durations: [f64; N] = durations.try_into().map_err(|v: Vec<f64>| {
            D::Error::custom(format!("expected {N} states, got {}", v.len()))
        })?;
        Ok(Self {
            durations,
            state: obj.field("state").map_err(D::Error::custom)?,
            since: obj.field("since").map_err(D::Error::custom)?,
        })
    }
}

impl<const N: usize> StateClock<N> {
    /// Creates a clock in state `0` at time `0.0`.
    ///
    /// # Panics
    ///
    /// Panics if `N == 0`.
    #[must_use]
    pub fn new() -> Self {
        assert!(N > 0, "StateClock needs at least one state");
        Self {
            durations: [0.0; N],
            state: 0,
            since: 0.0,
        }
    }

    /// Creates a clock starting in `state` at time `start`.
    ///
    /// # Panics
    ///
    /// Panics if `state >= N`.
    #[must_use]
    pub fn starting_in(state: usize, start: f64) -> Self {
        assert!(state < N, "state {state} out of range (N = {N})");
        Self {
            durations: [0.0; N],
            state,
            since: start,
        }
    }

    /// Current state index.
    #[must_use]
    pub fn state(&self) -> usize {
        self.state
    }

    /// Records that the entity switched to `next` at time `now`.
    ///
    /// Transitions to the current state are permitted and simply extend it.
    ///
    /// # Panics
    ///
    /// Panics if `next >= N` or if `now` precedes the previous transition.
    #[inline]
    pub fn transition(&mut self, now: f64, next: usize) {
        assert!(next < N, "state {next} out of range (N = {N})");
        assert!(
            now >= self.since,
            "time went backwards: {now} < {}",
            self.since
        );
        self.durations[self.state] += now - self.since;
        self.state = next;
        self.since = now;
    }

    /// Credits `k` detached intervals of `per_boundary_secs` each to
    /// `state`, without moving the clock or changing the current state.
    ///
    /// This is the closed-form half of batched settling: a caller that
    /// knows an entity alternated through a long, regular stretch (say
    /// `k` beacon boundaries of an idle radio) adds each state's total
    /// residency in O(1) instead of replaying `2k` transitions, then
    /// relocates the clock once with [`StateClock::jump_to`]. The caller
    /// is responsible for the credited intervals summing to the span the
    /// jump skips — [`StateClock::durations_at`] keeps no record of
    /// *where* time was spent, only how much.
    ///
    /// # Panics
    ///
    /// Panics if `state >= N` or `per_boundary_secs` is negative.
    #[inline]
    pub fn accrue_batch(&mut self, state: usize, k: u64, per_boundary_secs: f64) {
        assert!(state < N, "state {state} out of range (N = {N})");
        assert!(
            per_boundary_secs >= 0.0,
            "negative boundary length {per_boundary_secs}"
        );
        self.durations[state] += k as f64 * per_boundary_secs;
    }

    /// Moves the clock to `now` in `state` **without** charging the
    /// elapsed interval to any state — the elapsed time must already
    /// have been credited via [`StateClock::accrue_batch`]. The
    /// batched-settling counterpart of [`StateClock::transition`].
    ///
    /// # Panics
    ///
    /// Panics if `state >= N` or `now` precedes the previous transition.
    #[inline]
    pub fn jump_to(&mut self, now: f64, state: usize) {
        assert!(state < N, "state {state} out of range (N = {N})");
        assert!(
            now >= self.since,
            "time went backwards: {now} < {}",
            self.since
        );
        self.state = state;
        self.since = now;
    }

    /// Closes the books at time `now` and returns per-state durations.
    ///
    /// The clock remains usable; the trailing interval is accounted and the
    /// "since" marker moves to `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous transition.
    pub fn finish(&mut self, now: f64) -> [f64; N] {
        let state = self.state;
        self.transition(now, state);
        self.durations
    }

    /// Returns per-state durations as of `now` without mutating the clock.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous transition.
    #[must_use]
    pub fn durations_at(&self, now: f64) -> [f64; N] {
        assert!(
            now >= self.since,
            "time went backwards: {now} < {}",
            self.since
        );
        let mut d = self.durations;
        d[self.state] += now - self.since;
        d
    }

    /// Total energy in joules as of `now`, given per-state power in watts.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous transition.
    #[must_use]
    pub fn energy_at(&self, now: f64, power_watts: [f64; N]) -> f64 {
        self.durations_at(now)
            .iter()
            .zip(power_watts.iter())
            .map(|(d, p)| d * p)
            .sum()
    }
}

impl<const N: usize> Default for StateClock<N> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_durations() {
        let mut c = StateClock::<3>::new();
        c.transition(2.0, 1);
        c.transition(5.0, 2);
        c.transition(6.0, 0);
        let d = c.durations_at(10.0);
        assert_eq!(d, [2.0 + 4.0, 3.0, 1.0]);
    }

    #[test]
    fn durations_sum_to_elapsed_time() {
        let mut c = StateClock::<2>::new();
        c.transition(1.5, 1);
        c.transition(7.25, 0);
        let d = c.durations_at(9.0);
        assert!((d.iter().sum::<f64>() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn self_transition_extends_state() {
        let mut c = StateClock::<2>::new();
        c.transition(3.0, 0);
        c.transition(5.0, 1);
        let d = c.durations_at(5.0);
        assert_eq!(d, [5.0, 0.0]);
    }

    #[test]
    fn starting_in_offsets_origin() {
        let mut c = StateClock::<2>::starting_in(1, 10.0);
        c.transition(12.0, 0);
        let d = c.durations_at(15.0);
        assert_eq!(d, [3.0, 2.0]);
    }

    #[test]
    fn energy_weighted_by_power() {
        // Mica2-like: idle 30 mW, sleep 3 uW.
        let mut c = StateClock::<2>::new();
        c.transition(1.0, 1); // 1 s idle
        let e = c.energy_at(10.0, [0.030, 0.000_003]); // then 9 s sleep
        let expected = 1.0 * 0.030 + 9.0 * 0.000_003;
        assert!((e - expected).abs() < 1e-12);
    }

    #[test]
    fn finish_then_continue() {
        let mut c = StateClock::<2>::new();
        c.transition(4.0, 1);
        let d = c.finish(6.0);
        assert_eq!(d, [4.0, 2.0]);
        // Clock continues in state 1 from t=6.
        let d2 = c.durations_at(8.0);
        assert_eq!(d2, [4.0, 4.0]);
    }

    #[test]
    fn batched_accrual_matches_dense_transitions() {
        // Dense: an entity alternating 1 s in state 0 / 9 s in state 1
        // for 50 periods, transition by transition. Batched: the same
        // stretch as two accruals and one jump.
        let mut dense = StateClock::<2>::new();
        for f in 0..50 {
            let start = f64::from(f) * 10.0;
            dense.transition(start, 0);
            dense.transition(start + 1.0, 1);
        }
        let mut batched = StateClock::<2>::new();
        batched.accrue_batch(0, 50, 1.0);
        batched.accrue_batch(1, 49, 9.0);
        batched.jump_to(491.0, 1);
        let at = 500.0;
        let d_dense = dense.durations_at(at);
        let d_batched = batched.durations_at(at);
        for (a, b) in d_dense.iter().zip(&d_batched) {
            assert!((a - b).abs() < 1e-9, "dense {d_dense:?} vs {d_batched:?}");
        }
    }

    #[test]
    fn jump_does_not_charge_the_gap() {
        let mut c = StateClock::<2>::new();
        c.transition(2.0, 1);
        // Jump over [2, 10] without charging it anywhere.
        c.jump_to(10.0, 0);
        let d = c.durations_at(12.0);
        assert_eq!(d, [2.0 + 2.0, 0.0]);
        // Sum is NOT elapsed time: the skipped gap was never credited.
        assert!((d.iter().sum::<f64>() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn accrue_batch_zero_boundaries_is_noop() {
        let mut c = StateClock::<3>::new();
        c.accrue_batch(2, 0, 123.0);
        c.accrue_batch(1, 5, 0.0);
        assert_eq!(c.durations_at(0.0), [0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn accrue_batch_bad_state_panics() {
        let mut c = StateClock::<2>::new();
        c.accrue_batch(2, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "negative boundary length")]
    fn accrue_batch_negative_secs_panics() {
        let mut c = StateClock::<2>::new();
        c.accrue_batch(0, 1, -1.0);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn jump_backwards_panics() {
        let mut c = StateClock::<2>::new();
        c.transition(5.0, 1);
        c.jump_to(4.0, 0);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn backwards_time_panics() {
        let mut c = StateClock::<2>::new();
        c.transition(5.0, 1);
        c.transition(4.0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_state_panics() {
        let mut c = StateClock::<2>::new();
        c.transition(1.0, 2);
    }

    #[test]
    fn serde_round_trip() {
        let mut c = StateClock::<3>::new();
        c.transition(1.0, 2);
        let json = serde_json::to_string(&c).unwrap();
        let back: StateClock<3> = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
