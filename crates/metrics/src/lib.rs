//! Statistics and reporting substrate for the PBBF reproduction.
//!
//! The simulators in this workspace (the idealized Section-4 simulator and
//! the realistic Section-5 discrete-event simulator) produce large numbers
//! of per-node, per-update observations. This crate provides the small,
//! dependency-free numerical toolkit used to aggregate those observations
//! into the rows of the paper's tables and the series of its figures:
//!
//! * [`Summary`] — streaming (Welford) mean/variance/min/max accumulator.
//! * [`ConfidenceInterval`] — Student-t confidence intervals over run means.
//! * [`Histogram`] — fixed-width binned distribution with quantiles.
//! * [`StateClock`] — time-weighted accounting of how long an entity spent
//!   in each of a set of states (used for radio energy accounting).
//! * [`Series`], [`Figure`] — labelled `(x, y)` data with CSV and ASCII
//!   rendering so every experiment can print the same rows the paper plots.
//! * [`Table`] — aligned plain-text tables for paper-style parameter lists.
//!
//! All types are plain data with no interior mutability and implement
//! `serde` traits so experiment results can be archived as JSON.
//!
//! # Examples
//!
//! ```
//! use pbbf_metrics::Summary;
//!
//! let mut s = Summary::new();
//! for x in [1.0, 2.0, 3.0, 4.0] {
//!     s.record(x);
//! }
//! assert_eq!(s.mean(), 2.5);
//! assert_eq!(s.count(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ci;
mod histogram;
mod plot;
mod series;
mod stateclock;
mod summary;
mod table;

pub use ci::{students_t_quantile, ConfidenceInterval};
pub use histogram::Histogram;
pub use series::{Figure, Point, Series};
pub use stateclock::StateClock;
pub use summary::Summary;
pub use table::Table;
