//! Node placement and connectivity substrate.
//!
//! The paper evaluates PBBF on two kinds of deployments:
//!
//! * **Grid lattices** (Section 4): an `n × n` square lattice where each
//!   node is connected to its four axis neighbors and the broadcast source
//!   sits as near to the center as possible — built by [`Grid`].
//! * **Uniform-random deployments** (Section 5): `N` nodes placed uniformly
//!   at random in a square region sized so that the node density
//!   `Δ = πR²N/A` (Eq. 13) takes a requested value, with unit-disk
//!   connectivity of range `R` — built by [`RandomDeployment`].
//!
//! Both produce a [`Topology`]: immutable positions plus an adjacency
//! structure with BFS hop distances, which the simulators and the
//! percolation analysis share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod grid;
mod point;
mod random;

pub use graph::{NodeId, Topology};
pub use grid::Grid;
pub use point::Point2;
pub use random::{
    area_for_density, density, unit_disk_edges, unit_disk_edges_brute, RandomDeployment,
};
