//! Uniform-random deployments with unit-disk connectivity (Section 5).
//!
//! The paper deploys `N = 50` nodes uniformly at random in a square region
//! whose area is chosen so that the node density `Δ = πR²N / A` (Eq. 13)
//! equals a target value; `Δ` approximates the expected number of one-hop
//! neighbors. Two radios are connected exactly when their distance is at
//! most the radio range `R` (unit-disk model, matching the ns-2 two-ray
//! ground setup at these scales).

use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::{NodeId, Point2, Topology};

/// Computes the node density `Δ = πR²N / A` of Eq. 13.
///
/// # Panics
///
/// Panics if any argument is non-positive or non-finite.
#[must_use]
pub fn density(range: f64, nodes: usize, area: f64) -> f64 {
    assert!(range > 0.0 && range.is_finite(), "bad range {range}");
    assert!(nodes > 0, "no nodes");
    assert!(area > 0.0 && area.is_finite(), "bad area {area}");
    std::f64::consts::PI * range * range * nodes as f64 / area
}

/// Inverts Eq. 13: the deployment area that yields density `delta` for
/// `nodes` radios of the given `range`.
///
/// # Panics
///
/// Panics if any argument is non-positive or non-finite.
#[must_use]
pub fn area_for_density(range: f64, nodes: usize, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta.is_finite(), "bad density {delta}");
    assert!(range > 0.0 && range.is_finite(), "bad range {range}");
    assert!(nodes > 0, "no nodes");
    std::f64::consts::PI * range * range * nodes as f64 / delta
}

/// A uniform-random deployment in a square region.
///
/// # Examples
///
/// ```
/// use pbbf_des::SimRng;
/// use pbbf_topology::RandomDeployment;
///
/// let mut rng = SimRng::new(1);
/// let d = RandomDeployment::with_density(50, 30.0, 10.0, &mut rng);
/// assert_eq!(d.topology().len(), 50);
/// // Mean degree approximates Δ = 10 (up to boundary effects).
/// assert!(d.topology().mean_degree() > 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomDeployment {
    side: f64,
    range: f64,
    topology: Topology,
}

impl RandomDeployment {
    /// Deploys `nodes` radios of the given `range` uniformly in a square
    /// region sized for the target density `delta` (Eq. 13).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or non-finite.
    #[must_use]
    pub fn with_density(nodes: usize, range: f64, delta: f64, rng: &mut impl RngCore) -> Self {
        let area = area_for_density(range, nodes, delta);
        Self::in_square(nodes, range, area.sqrt(), rng)
    }

    /// Deploys `nodes` radios of the given `range` uniformly in a
    /// `side × side` square.
    ///
    /// Edge construction uses a spatial-hash grid ([`unit_disk_edges`]),
    /// making deployment O(n) at fixed density instead of the O(n²)
    /// all-pairs scan — the difference between the paper's `N = 50` and
    /// the 10k–100k-node deployments this engine targets.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or non-finite.
    #[must_use]
    pub fn in_square(nodes: usize, range: f64, side: f64, rng: &mut impl RngCore) -> Self {
        assert!(nodes > 0, "no nodes");
        assert!(side > 0.0 && side.is_finite(), "bad side {side}");
        let positions: Vec<Point2> = (0..nodes)
            .map(|_| Point2::new(unit_f64(rng) * side, unit_f64(rng) * side))
            .collect();
        Self::from_positions(positions, range, side)
    }

    /// Builds a deployment from explicit positions (unit-disk edges of the
    /// given `range`, computed via the spatial-hash grid).
    ///
    /// # Panics
    ///
    /// Panics if there are no positions, or `range`/`side` are
    /// non-positive or non-finite.
    #[must_use]
    pub fn from_positions(positions: Vec<Point2>, range: f64, side: f64) -> Self {
        assert!(!positions.is_empty(), "no nodes");
        assert!(range > 0.0 && range.is_finite(), "bad range {range}");
        assert!(side > 0.0 && side.is_finite(), "bad side {side}");
        let edges = unit_disk_edges(&positions, range);
        Self {
            side,
            range,
            topology: Topology::from_edges(positions, &edges),
        }
    }

    /// Keeps redeploying (with fresh randomness from `rng`) until the
    /// unit-disk graph is connected, up to `max_attempts`.
    ///
    /// The paper's scenarios require every node to be reachable from the
    /// source for the reliability metric to be meaningful; ns-2 scenario
    /// generation conventionally rejects disconnected deployments.
    ///
    /// Returns `None` if no connected deployment was found.
    #[must_use]
    pub fn connected_with_density(
        nodes: usize,
        range: f64,
        delta: f64,
        max_attempts: u32,
        rng: &mut impl RngCore,
    ) -> Option<Self> {
        for _ in 0..max_attempts {
            let d = Self::with_density(nodes, range, delta, rng);
            if d.topology.is_connected() {
                return Some(d);
            }
        }
        None
    }

    /// Side length of the deployment square (m).
    #[must_use]
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Radio range (m).
    #[must_use]
    pub fn range(&self) -> f64 {
        self.range
    }

    /// The nominal density Δ of this deployment per Eq. 13.
    #[must_use]
    pub fn nominal_density(&self) -> f64 {
        density(self.range, self.topology.len(), self.side * self.side)
    }

    /// The underlying topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Consumes the deployment, returning the topology.
    #[must_use]
    pub fn into_topology(self) -> Topology {
        self.topology
    }
}

/// Uniform `[0, 1)` from 53 random bits of any `RngCore`.
fn unit_f64(rng: &mut impl RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// All unit-disk edges among `positions` (pairs at distance ≤ `range`),
/// each reported once with the smaller id first.
///
/// The order is deterministic for given inputs but unspecified (it follows
/// the internal cell traversal, not node ids) — [`Topology::from_edges`]
/// normalizes per-node adjacency regardless, so builders need no sort
/// here; sort both sides when comparing against
/// [`unit_disk_edges_brute`]'s lexicographic output.
///
/// Uses a spatial-hash grid: positions are bucketed into square cells of
/// side ≥ `range` (counting sort, no per-node allocation), and each cell is
/// checked only against its forward half-stencil, so every candidate pair
/// is examined exactly once. At fixed density Δ this is O(n + E) versus the
/// all-pairs O(n²) of [`unit_disk_edges_brute`].
///
/// # Panics
///
/// Panics if `range` is non-positive, non-finite, or any coordinate is
/// non-finite.
#[must_use]
pub fn unit_disk_edges(positions: &[Point2], range: f64) -> Vec<(NodeId, NodeId)> {
    assert!(range > 0.0 && range.is_finite(), "bad range {range}");
    let n = positions.len();
    if n < 2 {
        return Vec::new();
    }
    let (min_x, min_y, max_x, max_y) = bounding_box(positions);

    // Cell side: at least `range` (so the 3×3 stencil covers the disk),
    // and large enough that the grid holds at most ~4n cells even when the
    // domain dwarfs the radio range.
    let extent = (max_x - min_x).max(max_y - min_y).max(range);
    let max_cells_per_axis = ((4.0 * n as f64).sqrt().floor() as usize).max(1);
    let cell = range.max(extent / max_cells_per_axis as f64);
    let cols = grid_axis_cells(max_x - min_x, cell);
    let rows = grid_axis_cells(max_y - min_y, cell);

    let cell_of = |p: Point2| -> usize {
        let gx = (((p.x - min_x) / cell) as usize).min(cols - 1);
        let gy = (((p.y - min_y) / cell) as usize).min(rows - 1);
        gy * cols + gx
    };

    // Counting sort of node indices into cells (CSR layout).
    let mut starts = vec![0u32; rows * cols + 1];
    for &p in positions {
        starts[cell_of(p) + 1] += 1;
    }
    for i in 1..starts.len() {
        starts[i] += starts[i - 1];
    }
    // Node ids and their positions laid out in bucket order: candidate
    // scans below walk both arrays sequentially instead of gathering
    // positions through a random-index indirection.
    let mut bucketed = vec![0u32; n];
    let mut bucket_pts = vec![Point2::new(0.0, 0.0); n];
    let mut cursor = starts.clone();
    for (i, &p) in positions.iter().enumerate() {
        let c = cell_of(p);
        let slot = cursor[c] as usize;
        bucketed[slot] = i as u32;
        bucket_pts[slot] = p;
        cursor[c] += 1;
    }

    // Forward half-stencil: within-cell pairs once (k < l by bucket
    // position), plus the four neighbor cells E, SW, S, SE — every
    // unordered cell pair is visited from exactly one side. Because cells
    // are row-major, "rest of own cell + E" is one contiguous run and
    // "SW + S + SE" another, so each node does two linear scans over the
    // bucket-ordered position array instead of five short loops. Edges are
    // packed as `min << 32 | max` u64 keys.
    let range_sq = range * range;
    let key = |a: u32, b: u32| (u64::from(a.min(b)) << 32) | u64::from(a.max(b));
    let mut edges: Vec<u64> = Vec::with_capacity(n * 4);
    for gy in 0..rows {
        for gx in 0..cols {
            let c0 = gy * cols + gx;
            let (s0, e0) = (starts[c0] as usize, starts[c0 + 1] as usize);
            // Own cell's tail plus the east neighbor (when it exists).
            let east_end = starts[c0 + usize::from(gx + 1 < cols) + 1] as usize;
            // The contiguous SW..SE span of the row below (when it exists).
            let (below_start, below_end) = if gy + 1 < rows {
                let row = (gy + 1) * cols;
                (
                    starts[row + gx.saturating_sub(1)] as usize,
                    starts[row + (gx + 1).min(cols - 1) + 1] as usize,
                )
            } else {
                (0, 0)
            };
            for k in s0..e0 {
                let (a, pa) = (bucketed[k], bucket_pts[k]);
                let east = bucket_pts[k + 1..east_end]
                    .iter()
                    .zip(&bucketed[k + 1..east_end]);
                let below = bucket_pts[below_start..below_end]
                    .iter()
                    .zip(&bucketed[below_start..below_end]);
                for (pb, &b) in east.chain(below) {
                    let (dx, dy) = (pa.x - pb.x, pa.y - pb.y);
                    if dx * dx + dy * dy <= range_sq {
                        edges.push(key(a, b));
                    }
                }
            }
        }
    }

    edges
        .into_iter()
        .map(|e| (NodeId((e >> 32) as u32), NodeId(e as u32)))
        .collect()
}

/// Reference all-pairs implementation of [`unit_disk_edges`]: O(n²), kept
/// for property tests and as the bench baseline the spatial hash is
/// measured against.
///
/// # Panics
///
/// Panics if `range` is non-positive or non-finite.
#[must_use]
pub fn unit_disk_edges_brute(positions: &[Point2], range: f64) -> Vec<(NodeId, NodeId)> {
    assert!(range > 0.0 && range.is_finite(), "bad range {range}");
    let range_sq = range * range;
    let mut edges = Vec::new();
    for i in 0..positions.len() {
        for j in (i + 1)..positions.len() {
            if positions[i].distance_squared(positions[j]) <= range_sq {
                edges.push((NodeId(i as u32), NodeId(j as u32)));
            }
        }
    }
    edges
}

fn bounding_box(positions: &[Point2]) -> (f64, f64, f64, f64) {
    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in positions {
        assert!(p.x.is_finite() && p.y.is_finite(), "non-finite position");
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    (min_x, min_y, max_x, max_y)
}

fn grid_axis_cells(extent: f64, cell: f64) -> usize {
    ((extent / cell).floor() as usize + 1).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbbf_des::SimRng;

    #[test]
    fn density_and_area_are_inverse() {
        let a = area_for_density(30.0, 50, 10.0);
        let d = density(30.0, 50, a);
        assert!((d - 10.0).abs() < 1e-12);
    }

    #[test]
    fn table2_scenario_area() {
        // N = 50, Δ = 10: A = πR²·50/10 = 5πR².
        let a = area_for_density(30.0, 50, 10.0);
        assert!((a - 5.0 * std::f64::consts::PI * 900.0).abs() < 1e-9);
    }

    #[test]
    fn deployment_positions_inside_square() {
        let mut rng = SimRng::new(2);
        let d = RandomDeployment::in_square(100, 10.0, 50.0, &mut rng);
        for n in d.topology().nodes() {
            let p = d.topology().position(n);
            assert!((0.0..50.0).contains(&p.x) && (0.0..50.0).contains(&p.y));
        }
    }

    #[test]
    fn edges_respect_range() {
        let mut rng = SimRng::new(3);
        let d = RandomDeployment::in_square(60, 12.0, 60.0, &mut rng);
        let topo = d.topology();
        for (a, b) in topo.edges() {
            assert!(topo.position(a).distance(topo.position(b)) <= 12.0);
        }
        // And non-edges exceed range.
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a < b && !topo.are_neighbors(a, b) {
                    assert!(topo.position(a).distance(topo.position(b)) > 12.0);
                }
            }
        }
    }

    #[test]
    fn mean_degree_tracks_density() {
        // Average over several seeds: boundary effects bias low, but the
        // mean degree should be within ~35% of Δ.
        let mut total = 0.0;
        let runs = 20;
        for seed in 0..runs {
            let mut rng = SimRng::new(seed);
            let d = RandomDeployment::with_density(200, 25.0, 12.0, &mut rng);
            total += d.topology().mean_degree();
        }
        let mean = total / runs as f64;
        assert!((mean - 12.0).abs() < 4.0, "mean degree {mean} vs Δ=12");
    }

    #[test]
    fn connected_deployment_is_connected() {
        let mut rng = SimRng::new(4);
        let d = RandomDeployment::connected_with_density(50, 30.0, 10.0, 100, &mut rng)
            .expect("Δ=10 deployments connect easily");
        assert!(d.topology().is_connected());
        assert!((d.nominal_density() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn deployment_is_deterministic_per_seed() {
        let d1 = RandomDeployment::with_density(50, 30.0, 10.0, &mut SimRng::new(9));
        let d2 = RandomDeployment::with_density(50, 30.0, 10.0, &mut SimRng::new(9));
        assert_eq!(d1, d2);
        let d3 = RandomDeployment::with_density(50, 30.0, 10.0, &mut SimRng::new(10));
        assert_ne!(d1, d3);
    }

    #[test]
    #[should_panic(expected = "bad density")]
    fn zero_density_panics() {
        let _ = area_for_density(30.0, 50, 0.0);
    }

    /// Grid output order is unspecified; normalize before comparing with
    /// the lexicographic brute-force reference.
    fn sorted_grid_edges(positions: &[Point2], range: f64) -> Vec<(NodeId, NodeId)> {
        let mut edges = unit_disk_edges(positions, range);
        edges.sort_unstable();
        edges
    }

    fn random_positions(n: usize, side: f64, rng: &mut SimRng) -> Vec<Point2> {
        (0..n)
            .map(|_| Point2::new(rng.uniform01() * side, rng.uniform01() * side))
            .collect()
    }

    #[test]
    fn spatial_hash_matches_brute_force_across_seeds_and_scales() {
        for (seed, n, range, side) in [
            (1u64, 2usize, 5.0, 100.0),
            (2, 50, 30.0, 120.0),
            (3, 200, 10.0, 50.0),
            (4, 400, 3.0, 200.0),
            (5, 333, 75.0, 80.0),
            (6, 100, 0.5, 1000.0), // sparse: cell-count cap engages
        ] {
            let mut rng = SimRng::new(seed);
            let positions = random_positions(n, side, &mut rng);
            assert_eq!(
                sorted_grid_edges(&positions, range),
                unit_disk_edges_brute(&positions, range),
                "seed {seed}, n {n}, range {range}, side {side}"
            );
        }
    }

    #[test]
    fn spatial_hash_degenerate_all_nodes_in_one_cell() {
        // Every pairwise distance is within range: complete graph.
        let mut rng = SimRng::new(7);
        let positions = random_positions(40, 1.0, &mut rng);
        let edges = sorted_grid_edges(&positions, 10.0);
        assert_eq!(edges.len(), 40 * 39 / 2);
        assert_eq!(edges, unit_disk_edges_brute(&positions, 10.0));
    }

    #[test]
    fn spatial_hash_nodes_on_cell_boundaries() {
        // Nodes at exact multiples of the range sit on cell borders; edges
        // at exactly distance == range must be included.
        let r = 10.0;
        let mut positions = Vec::new();
        for gx in 0..5 {
            for gy in 0..5 {
                positions.push(Point2::new(f64::from(gx) * r, f64::from(gy) * r));
            }
        }
        let edges = sorted_grid_edges(&positions, r);
        assert_eq!(edges, unit_disk_edges_brute(&positions, r));
        // Axis-aligned lattice neighbors are exactly `r` apart: 2·5·4 edges.
        assert_eq!(edges.len(), 40);
    }

    #[test]
    fn spatial_hash_coincident_points() {
        let positions = vec![Point2::new(3.0, 3.0); 8];
        let edges = sorted_grid_edges(&positions, 1.0);
        assert_eq!(edges.len(), 8 * 7 / 2);
        assert_eq!(edges, unit_disk_edges_brute(&positions, 1.0));
    }

    #[test]
    fn from_positions_matches_in_square_topology() {
        let mut rng = SimRng::new(8);
        let d1 = RandomDeployment::in_square(120, 12.0, 70.0, &mut rng);
        let positions: Vec<Point2> = d1
            .topology()
            .nodes()
            .map(|n| d1.topology().position(n))
            .collect();
        let d2 = RandomDeployment::from_positions(positions, 12.0, 70.0);
        assert_eq!(d1, d2);
    }
}
