//! Uniform-random deployments with unit-disk connectivity (Section 5).
//!
//! The paper deploys `N = 50` nodes uniformly at random in a square region
//! whose area is chosen so that the node density `Δ = πR²N / A` (Eq. 13)
//! equals a target value; `Δ` approximates the expected number of one-hop
//! neighbors. Two radios are connected exactly when their distance is at
//! most the radio range `R` (unit-disk model, matching the ns-2 two-ray
//! ground setup at these scales).

use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::{NodeId, Point2, Topology};

/// Computes the node density `Δ = πR²N / A` of Eq. 13.
///
/// # Panics
///
/// Panics if any argument is non-positive or non-finite.
#[must_use]
pub fn density(range: f64, nodes: usize, area: f64) -> f64 {
    assert!(range > 0.0 && range.is_finite(), "bad range {range}");
    assert!(nodes > 0, "no nodes");
    assert!(area > 0.0 && area.is_finite(), "bad area {area}");
    std::f64::consts::PI * range * range * nodes as f64 / area
}

/// Inverts Eq. 13: the deployment area that yields density `delta` for
/// `nodes` radios of the given `range`.
///
/// # Panics
///
/// Panics if any argument is non-positive or non-finite.
#[must_use]
pub fn area_for_density(range: f64, nodes: usize, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta.is_finite(), "bad density {delta}");
    assert!(range > 0.0 && range.is_finite(), "bad range {range}");
    assert!(nodes > 0, "no nodes");
    std::f64::consts::PI * range * range * nodes as f64 / delta
}

/// A uniform-random deployment in a square region.
///
/// # Examples
///
/// ```
/// use pbbf_des::SimRng;
/// use pbbf_topology::RandomDeployment;
///
/// let mut rng = SimRng::new(1);
/// let d = RandomDeployment::with_density(50, 30.0, 10.0, &mut rng);
/// assert_eq!(d.topology().len(), 50);
/// // Mean degree approximates Δ = 10 (up to boundary effects).
/// assert!(d.topology().mean_degree() > 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomDeployment {
    side: f64,
    range: f64,
    topology: Topology,
}

impl RandomDeployment {
    /// Deploys `nodes` radios of the given `range` uniformly in a square
    /// region sized for the target density `delta` (Eq. 13).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or non-finite.
    #[must_use]
    pub fn with_density(nodes: usize, range: f64, delta: f64, rng: &mut impl RngCore) -> Self {
        let area = area_for_density(range, nodes, delta);
        Self::in_square(nodes, range, area.sqrt(), rng)
    }

    /// Deploys `nodes` radios of the given `range` uniformly in a
    /// `side × side` square.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or non-finite.
    #[must_use]
    pub fn in_square(nodes: usize, range: f64, side: f64, rng: &mut impl RngCore) -> Self {
        assert!(nodes > 0, "no nodes");
        assert!(range > 0.0 && range.is_finite(), "bad range {range}");
        assert!(side > 0.0 && side.is_finite(), "bad side {side}");
        let positions: Vec<Point2> = (0..nodes)
            .map(|_| Point2::new(unit_f64(rng) * side, unit_f64(rng) * side))
            .collect();
        let range_sq = range * range;
        let mut edges = Vec::new();
        for i in 0..nodes {
            for j in (i + 1)..nodes {
                if positions[i].distance_squared(positions[j]) <= range_sq {
                    edges.push((NodeId(i as u32), NodeId(j as u32)));
                }
            }
        }
        Self {
            side,
            range,
            topology: Topology::from_edges(positions, &edges),
        }
    }

    /// Keeps redeploying (with fresh randomness from `rng`) until the
    /// unit-disk graph is connected, up to `max_attempts`.
    ///
    /// The paper's scenarios require every node to be reachable from the
    /// source for the reliability metric to be meaningful; ns-2 scenario
    /// generation conventionally rejects disconnected deployments.
    ///
    /// Returns `None` if no connected deployment was found.
    #[must_use]
    pub fn connected_with_density(
        nodes: usize,
        range: f64,
        delta: f64,
        max_attempts: u32,
        rng: &mut impl RngCore,
    ) -> Option<Self> {
        for _ in 0..max_attempts {
            let d = Self::with_density(nodes, range, delta, rng);
            if d.topology.is_connected() {
                return Some(d);
            }
        }
        None
    }

    /// Side length of the deployment square (m).
    #[must_use]
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Radio range (m).
    #[must_use]
    pub fn range(&self) -> f64 {
        self.range
    }

    /// The nominal density Δ of this deployment per Eq. 13.
    #[must_use]
    pub fn nominal_density(&self) -> f64 {
        density(self.range, self.topology.len(), self.side * self.side)
    }

    /// The underlying topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Consumes the deployment, returning the topology.
    #[must_use]
    pub fn into_topology(self) -> Topology {
        self.topology
    }
}

/// Uniform `[0, 1)` from 53 random bits of any `RngCore`.
fn unit_f64(rng: &mut impl RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbbf_des::SimRng;

    #[test]
    fn density_and_area_are_inverse() {
        let a = area_for_density(30.0, 50, 10.0);
        let d = density(30.0, 50, a);
        assert!((d - 10.0).abs() < 1e-12);
    }

    #[test]
    fn table2_scenario_area() {
        // N = 50, Δ = 10: A = πR²·50/10 = 5πR².
        let a = area_for_density(30.0, 50, 10.0);
        assert!((a - 5.0 * std::f64::consts::PI * 900.0).abs() < 1e-9);
    }

    #[test]
    fn deployment_positions_inside_square() {
        let mut rng = SimRng::new(2);
        let d = RandomDeployment::in_square(100, 10.0, 50.0, &mut rng);
        for n in d.topology().nodes() {
            let p = d.topology().position(n);
            assert!((0.0..50.0).contains(&p.x) && (0.0..50.0).contains(&p.y));
        }
    }

    #[test]
    fn edges_respect_range() {
        let mut rng = SimRng::new(3);
        let d = RandomDeployment::in_square(60, 12.0, 60.0, &mut rng);
        let topo = d.topology();
        for (a, b) in topo.edges() {
            assert!(topo.position(a).distance(topo.position(b)) <= 12.0);
        }
        // And non-edges exceed range.
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a < b && !topo.are_neighbors(a, b) {
                    assert!(topo.position(a).distance(topo.position(b)) > 12.0);
                }
            }
        }
    }

    #[test]
    fn mean_degree_tracks_density() {
        // Average over several seeds: boundary effects bias low, but the
        // mean degree should be within ~35% of Δ.
        let mut total = 0.0;
        let runs = 20;
        for seed in 0..runs {
            let mut rng = SimRng::new(seed);
            let d = RandomDeployment::with_density(200, 25.0, 12.0, &mut rng);
            total += d.topology().mean_degree();
        }
        let mean = total / runs as f64;
        assert!((mean - 12.0).abs() < 4.0, "mean degree {mean} vs Δ=12");
    }

    #[test]
    fn connected_deployment_is_connected() {
        let mut rng = SimRng::new(4);
        let d = RandomDeployment::connected_with_density(50, 30.0, 10.0, 100, &mut rng)
            .expect("Δ=10 deployments connect easily");
        assert!(d.topology().is_connected());
        assert!((d.nominal_density() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn deployment_is_deterministic_per_seed() {
        let d1 = RandomDeployment::with_density(50, 30.0, 10.0, &mut SimRng::new(9));
        let d2 = RandomDeployment::with_density(50, 30.0, 10.0, &mut SimRng::new(9));
        assert_eq!(d1, d2);
        let d3 = RandomDeployment::with_density(50, 30.0, 10.0, &mut SimRng::new(10));
        assert_ne!(d1, d3);
    }

    #[test]
    #[should_panic(expected = "bad density")]
    fn zero_density_panics() {
        let _ = area_for_density(30.0, 50, 0.0);
    }
}
