//! The topology graph: positions, adjacency, hop distances.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::Point2;

/// Identifies a node within one [`Topology`].
///
/// A thin index newtype: node ids are dense `0..n` and only meaningful
/// relative to the topology that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usize index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An immutable deployment: node positions plus symmetric adjacency.
///
/// Built by [`Grid`](crate::Grid) or
/// [`RandomDeployment`](crate::RandomDeployment); consumed by the
/// simulators (neighbor iteration) and by the percolation analysis (edge
/// enumeration).
///
/// Adjacency is stored in CSR (compressed sparse row) form — one flat,
/// sorted neighbor array indexed by per-node offsets — so iterating a
/// node's neighbors is a contiguous slice scan with no pointer chasing,
/// and the whole structure is two allocations regardless of node count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    positions: Vec<Point2>,
    /// CSR row offsets: node `i`'s neighbors live at
    /// `neighbors[offsets[i] .. offsets[i + 1]]`; length `n + 1`.
    offsets: Vec<u32>,
    /// All neighbor lists concatenated, sorted within each node's segment;
    /// symmetric: `b ∈ neighbors(a) ⇔ a ∈ neighbors(b)`.
    neighbors: Vec<NodeId>,
}

impl Topology {
    /// Builds a topology from positions and an undirected edge list.
    ///
    /// Self-loops and duplicate edges are rejected rather than silently
    /// dropped — they always indicate a builder bug.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node out of range, is a self-loop, or
    /// is listed twice (in either orientation).
    #[must_use]
    pub fn from_edges(positions: Vec<Point2>, edges: &[(NodeId, NodeId)]) -> Self {
        let n = positions.len();
        assert!(n < u32::MAX as usize, "too many nodes for u32 ids");
        // Two-pass CSR build: count degrees, prefix-sum into offsets, fill.
        let mut offsets = vec![0u32; n + 1];
        for &(a, b) in edges {
            assert!(
                a.index() < n && b.index() < n,
                "edge ({a}, {b}) out of range"
            );
            assert_ne!(a, b, "self-loop at {a}");
            offsets[a.index() + 1] += 1;
            offsets[b.index() + 1] += 1;
        }
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        let mut neighbors = vec![NodeId(0); offsets[n] as usize];
        let mut cursor = offsets.clone();
        for &(a, b) in edges {
            neighbors[cursor[a.index()] as usize] = b;
            cursor[a.index()] += 1;
            neighbors[cursor[b.index()] as usize] = a;
            cursor[b.index()] += 1;
        }
        for i in 0..n {
            let segment = &mut neighbors[offsets[i] as usize..offsets[i + 1] as usize];
            segment.sort_unstable();
            assert!(
                segment.windows(2).all(|w| w[0] != w[1]),
                "duplicate edge at node {i}"
            );
        }
        Self {
            positions,
            offsets,
            neighbors,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the topology has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Iterates over all node ids in order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.positions.len() as u32).map(NodeId)
    }

    /// The position of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn position(&self, node: NodeId) -> Point2 {
        self.positions[node.index()]
    }

    /// The sorted neighbors of `node` (a contiguous CSR slice).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        let lo = self.offsets[node.index()] as usize;
        let hi = self.offsets[node.index() + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// The degree of `node`.
    #[must_use]
    pub fn degree(&self, node: NodeId) -> usize {
        self.neighbors(node).len()
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// All undirected edges, each reported once with `a < b`.
    #[must_use]
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for a in self.nodes() {
            for &b in self.neighbors(a) {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// Whether `a` and `b` share an edge.
    #[must_use]
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// BFS hop distance from `source` to every node.
    ///
    /// Returns `None` for unreachable nodes. Used for the paper's
    /// "`d`-hop node" groupings (Figs 9, 10, 14, 15).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    #[must_use]
    pub fn hop_distances(&self, source: NodeId) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.len()];
        let mut queue = VecDeque::new();
        dist[source.index()] = Some(0);
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()].expect("queued node has distance");
            for &v in self.neighbors(u) {
                if dist[v.index()].is_none() {
                    dist[v.index()] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// The ids of all nodes exactly `hops` hops from `source`.
    #[must_use]
    pub fn nodes_at_hops(&self, source: NodeId, hops: u32) -> Vec<NodeId> {
        self.hop_distances(source)
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == Some(hops))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Whether every node is reachable from node 0 (vacuously true when
    /// empty).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        self.hop_distances(NodeId(0)).iter().all(Option::is_some)
    }

    /// Mean node degree — the empirical counterpart of the paper's density
    /// parameter Δ (expected number of one-hop neighbors, Section 5.3).
    #[must_use]
    pub fn mean_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        2.0 * self.edge_count() as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 - 1 - 2    (a path plus an isolated node 3)
    fn path3_plus_isolated() -> Topology {
        let pos = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(9.0, 9.0),
        ];
        Topology::from_edges(pos, &[(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))])
    }

    #[test]
    fn adjacency_is_symmetric_and_sorted() {
        let t = path3_plus_isolated();
        assert_eq!(t.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
        assert!(t.are_neighbors(NodeId(0), NodeId(1)));
        assert!(t.are_neighbors(NodeId(1), NodeId(0)));
        assert!(!t.are_neighbors(NodeId(0), NodeId(2)));
        assert_eq!(t.degree(NodeId(3)), 0);
    }

    #[test]
    fn edge_count_and_edges() {
        let t = path3_plus_isolated();
        assert_eq!(t.edge_count(), 2);
        assert_eq!(
            t.edges(),
            vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]
        );
    }

    #[test]
    fn hop_distances_bfs() {
        let t = path3_plus_isolated();
        let d = t.hop_distances(NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), None]);
    }

    #[test]
    fn nodes_at_hops() {
        let t = path3_plus_isolated();
        assert_eq!(t.nodes_at_hops(NodeId(0), 2), vec![NodeId(2)]);
        assert!(t.nodes_at_hops(NodeId(0), 7).is_empty());
    }

    #[test]
    fn connectivity() {
        let t = path3_plus_isolated();
        assert!(!t.is_connected());
        let pos = vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)];
        let t2 = Topology::from_edges(pos, &[(NodeId(0), NodeId(1))]);
        assert!(t2.is_connected());
    }

    #[test]
    fn mean_degree() {
        let t = path3_plus_isolated();
        assert_eq!(t.mean_degree(), 2.0 * 2.0 / 4.0);
    }

    #[test]
    fn empty_topology() {
        let t = Topology::from_edges(vec![], &[]);
        assert!(t.is_empty());
        assert!(t.is_connected());
        assert_eq!(t.mean_degree(), 0.0);
    }

    #[test]
    fn csr_layout_is_compact_and_ordered() {
        let t = path3_plus_isolated();
        // Neighbor slices tile the flat array: total length = 2·edges, and
        // concatenating per-node slices reproduces it exactly.
        let concat: Vec<NodeId> = t.nodes().flat_map(|n| t.neighbors(n).to_vec()).collect();
        assert_eq!(concat.len(), 2 * t.edge_count());
        for n in t.nodes() {
            assert!(t.neighbors(n).windows(2).all(|w| w[0] < w[1]), "sorted {n}");
        }
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let pos = vec![Point2::new(0.0, 0.0)];
        let _ = Topology::from_edges(pos, &[(NodeId(0), NodeId(0))]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_panics() {
        let pos = vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)];
        let _ = Topology::from_edges(pos, &[(NodeId(0), NodeId(1)), (NodeId(1), NodeId(0))]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let pos = vec![Point2::new(0.0, 0.0)];
        let _ = Topology::from_edges(pos, &[(NodeId(0), NodeId(5))]);
    }
}
