//! Square-lattice grid deployments (Section 4 of the paper).

use serde::{Deserialize, Serialize};

use crate::{NodeId, Point2, Topology};

/// An `rows × cols` square lattice with 4-neighbor connectivity and no
/// wrap-around, as used throughout the paper's analysis (75×75 for the
/// idealized simulations, 10×10…40×40 for the percolation study).
///
/// # Examples
///
/// ```
/// use pbbf_topology::Grid;
///
/// let g = Grid::square(75);
/// assert_eq!(g.topology().len(), 5625);
/// let c = g.center();
/// assert_eq!(g.row_col(c), (37, 37));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    rows: u32,
    cols: u32,
    spacing: f64,
    topology: Topology,
}

impl Grid {
    /// Creates an `n × n` grid with unit spacing.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn square(n: u32) -> Self {
        Self::new(n, n, 1.0)
    }

    /// Creates a `rows × cols` grid with the given inter-node spacing in
    /// meters.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or spacing is not positive.
    #[must_use]
    pub fn new(rows: u32, cols: u32, spacing: f64) -> Self {
        assert!(rows > 0 && cols > 0, "empty grid {rows}x{cols}");
        assert!(
            spacing > 0.0 && spacing.is_finite(),
            "bad spacing {spacing}"
        );
        let mut positions = Vec::with_capacity((rows * cols) as usize);
        for r in 0..rows {
            for c in 0..cols {
                positions.push(Point2::new(c as f64 * spacing, r as f64 * spacing));
            }
        }
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let id = NodeId(r * cols + c);
                if c + 1 < cols {
                    edges.push((id, NodeId(r * cols + c + 1)));
                }
                if r + 1 < rows {
                    edges.push((id, NodeId((r + 1) * cols + c)));
                }
            }
        }
        Self {
            rows,
            cols,
            spacing,
            topology: Topology::from_edges(positions, &edges),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// The underlying topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Consumes the grid, returning the topology.
    #[must_use]
    pub fn into_topology(self) -> Topology {
        self.topology
    }

    /// The node at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn node_at(&self, row: u32, col: u32) -> NodeId {
        assert!(
            row < self.rows && col < self.cols,
            "({row}, {col}) outside grid"
        );
        NodeId(row * self.cols + col)
    }

    /// The `(row, col)` of a node.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn row_col(&self, node: NodeId) -> (u32, u32) {
        assert!(
            (node.0 as u64) < self.rows as u64 * self.cols as u64,
            "{node} outside grid"
        );
        (node.0 / self.cols, node.0 % self.cols)
    }

    /// The node nearest the grid center — the paper places the broadcast
    /// source "as near to the center of the grid as possible".
    #[must_use]
    pub fn center(&self) -> NodeId {
        self.node_at(self.rows / 2, self.cols / 2)
    }

    /// Manhattan (shortest-path) distance between two grid nodes, which on
    /// a 4-neighbor lattice equals the BFS hop distance.
    #[must_use]
    pub fn manhattan(&self, a: NodeId, b: NodeId) -> u32 {
        let (ra, ca) = self.row_col(a);
        let (rb, cb) = self.row_col(b);
        ra.abs_diff(rb) + ca.abs_diff(cb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_grid_has_n2_nodes() {
        let g = Grid::square(5);
        assert_eq!(g.topology().len(), 25);
        assert_eq!(g.rows(), 5);
        assert_eq!(g.cols(), 5);
    }

    #[test]
    fn edge_count_of_lattice() {
        // n x n lattice has 2n(n-1) edges.
        let g = Grid::square(4);
        assert_eq!(g.topology().edge_count(), 2 * 4 * 3);
    }

    #[test]
    fn corner_and_interior_degrees() {
        let g = Grid::square(3);
        assert_eq!(g.topology().degree(g.node_at(0, 0)), 2);
        assert_eq!(g.topology().degree(g.node_at(0, 1)), 3);
        assert_eq!(g.topology().degree(g.node_at(1, 1)), 4);
    }

    #[test]
    fn no_wraparound() {
        let g = Grid::square(3);
        let topo = g.topology();
        assert!(!topo.are_neighbors(g.node_at(0, 0), g.node_at(0, 2)));
        assert!(!topo.are_neighbors(g.node_at(0, 0), g.node_at(2, 0)));
    }

    #[test]
    fn node_at_row_col_round_trip() {
        let g = Grid::new(4, 7, 2.0);
        for r in 0..4 {
            for c in 0..7 {
                assert_eq!(g.row_col(g.node_at(r, c)), (r, c));
            }
        }
    }

    #[test]
    fn positions_use_spacing() {
        let g = Grid::new(2, 2, 10.0);
        let p = g.topology().position(g.node_at(1, 1));
        assert_eq!((p.x, p.y), (10.0, 10.0));
    }

    #[test]
    fn center_of_odd_grid_is_exact_center() {
        let g = Grid::square(75);
        assert_eq!(g.row_col(g.center()), (37, 37));
    }

    #[test]
    fn manhattan_equals_bfs_distance() {
        let g = Grid::square(6);
        let src = g.center();
        let bfs = g.topology().hop_distances(src);
        for node in g.topology().nodes() {
            assert_eq!(bfs[node.index()], Some(g.manhattan(src, node)), "{node}");
        }
    }

    #[test]
    fn grid_is_connected() {
        assert!(Grid::square(10).topology().is_connected());
        assert!(Grid::new(1, 9, 1.0).topology().is_connected());
    }

    #[test]
    fn single_node_grid() {
        let g = Grid::square(1);
        assert_eq!(g.topology().len(), 1);
        assert_eq!(g.topology().edge_count(), 0);
        assert_eq!(g.center(), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn zero_grid_panics() {
        let _ = Grid::square(0);
    }
}
