//! Planar points.

use serde::{Deserialize, Serialize};

/// A point in the deployment plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Horizontal coordinate (m).
    pub x: f64,
    /// Vertical coordinate (m).
    pub y: f64,
}

impl Point2 {
    /// Creates a point.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    #[must_use]
    pub fn distance(self, other: Point2) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root for range tests).
    #[must_use]
    pub fn distance_squared(self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_345() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_squared(b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point2::new(-1.5, 2.0);
        let b = Point2::new(4.0, -3.25);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn zero_distance_to_self() {
        let p = Point2::new(7.0, 7.0);
        assert_eq!(p.distance(p), 0.0);
    }
}
