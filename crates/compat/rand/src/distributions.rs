//! The distribution surface of the `rand`/`rand_distr` split that this
//! workspace uses: the [`Distribution`] trait, [`Geometric`], and
//! [`Exponential`].
//!
//! A geometric variate is the batched form of a run of identical
//! Bernoulli coins — `Geometric(p)` is the number of failures before the
//! first success — so a simulator that would otherwise flip one
//! `chance(p)` per time step can draw the index of the next success
//! directly and skip the run in O(1). That is exactly how the net
//! simulator's boundary engine settles idle nodes (see
//! `pbbf_core::PbbfEngine::sleep_run`). [`Exponential`] is the
//! continuous-time analogue: the inter-arrival gap of a Poisson(λ)
//! process, drawn in closed form so a rare-event simulator can jump
//! straight to the next arrival instead of ticking through the quiet.

use crate::RngCore;

/// Types that can be sampled from a distribution (mirrors
/// `rand::distributions::Distribution`).
pub trait Distribution<T> {
    /// Draws one value using `rng` as the entropy source.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)` using the
/// top 53 bits (the same mapping as `SimRng::uniform01`, so a
/// distribution sampled here consumes entropy identically to the
/// simulators' own uniform draws).
#[inline]
#[must_use]
pub fn unit_f64_from_bits(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The error returned by [`Geometric::new`] for a probability outside
/// `(0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidProbability;

impl std::fmt::Display for InvalidProbability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("geometric success probability must lie in (0, 1]")
    }
}

impl std::error::Error for InvalidProbability {}

/// The geometric distribution on `{0, 1, 2, ...}`: the number of
/// *failures* before the first success of a Bernoulli(`p`) coin,
/// `P(X = k) = (1 − p)^k · p`.
///
/// Every sample consumes exactly one `next_u64` from the generator,
/// regardless of the value drawn — a run of a thousand failures costs
/// the same entropy as none, which is the point of sampling runs instead
/// of coins.
///
/// Two equivalent samplers are chosen at construction time (so the
/// choice never depends on the sampled value):
///
/// * `p ≤ 1/2`: **inversion** — `⌊ln(1 − u) / ln(1 − p)⌋` with a cached
///   `ln(1 − p)`, one `ln` per draw, any run length in O(1);
/// * `p > 1/2`: an **exact inverse-CDF walk** — successive tail
///   multiplications until the CDF passes `u`. Expected iterations are
///   `1/p < 2` and the walk involves no logarithms at all, exact for the
///   short runs where the inversion's `ln`s would dominate.
///
/// # Examples
///
/// ```
/// use pbbf_rand::distributions::{Distribution, Geometric};
///
/// let g = Geometric::new(1.0).unwrap();
/// // p = 1 succeeds immediately: zero failures, always.
/// # struct Zero;
/// # impl pbbf_rand::RngCore for Zero {
/// #     fn next_u32(&mut self) -> u32 { 0 }
/// #     fn next_u64(&mut self) -> u64 { 0 }
/// #     fn fill_bytes(&mut self, dest: &mut [u8]) { dest.fill(0) }
/// # }
/// assert_eq!(g.sample(&mut Zero), 0);
/// assert!(Geometric::new(0.0).is_err());
/// assert!(Geometric::new(1.5).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
    /// Cached `ln(1 − p)` for the inversion path; `0.0` (unused) on the
    /// walk path, where `1 − p` itself drives the tail product.
    ln_one_minus_p: f64,
}

impl Geometric {
    /// The success-probability threshold above which the inverse-CDF
    /// walk replaces inversion (expected walk length `1/p < 2`).
    const WALK_THRESHOLD: f64 = 0.5;

    /// Creates the distribution for success probability `p ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProbability`] when `p` is not a finite value in
    /// `(0, 1]` (a zero success probability has no finite runs to
    /// sample).
    pub fn new(p: f64) -> Result<Self, InvalidProbability> {
        if !(p > 0.0 && p <= 1.0) {
            return Err(InvalidProbability);
        }
        let ln_one_minus_p = if p <= Self::WALK_THRESHOLD {
            let direct = (1.0 - p).ln();
            if direct == 0.0 {
                // p below one f64 ulp of 1.0: `1.0 - p` rounds to exactly
                // 1.0 and the cached log underflows to zero, which would
                // turn every sample into a 0/0 or x/0. `ln_1p` keeps the
                // full precision of −p there. (Draw streams for all
                // larger p are untouched: this branch only replaces the
                // degenerate zero.)
                (-p).ln_1p()
            } else {
                direct
            }
        } else {
            0.0
        };
        Ok(Self { p, ln_one_minus_p })
    }

    /// The success probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Distribution<u64> for Geometric {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        let u = unit_f64_from_bits(rng.next_u64());
        if self.p <= Self::WALK_THRESHOLD {
            // Inversion: smallest k with CDF(k) > u. `1 − u` is in
            // (0, 1], so the ln is finite; the f64→u64 cast saturates
            // for the astronomically long runs of tiny p.
            ((1.0 - u).ln() / self.ln_one_minus_p) as u64
        } else {
            // Inverse-CDF walk: advance the tail (1 − p)^(k + 1) until
            // the CDF 1 − tail exceeds u. For p = 1 the tail is 0 and
            // the answer is 0 immediately; u < 1 bounds the walk.
            let q = 1.0 - self.p;
            let mut k = 0u64;
            let mut tail = q;
            while 1.0 - tail <= u {
                tail *= q;
                k += 1;
            }
            k
        }
    }
}

/// The error returned by [`Exponential::new`] for a rate outside
/// `(0, ∞)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidRate;

impl std::fmt::Display for InvalidRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("exponential rate must be a finite positive value")
    }
}

impl std::error::Error for InvalidRate {}

/// The exponential distribution on `[0, ∞)` with rate `λ`: the waiting
/// time until the next event of a Poisson(`λ`) process,
/// `P(X > t) = e^(−λt)`, mean `1/λ`.
///
/// Every sample consumes exactly one `next_u64` from the generator —
/// inversion of the survival function, `−ln(1 − u) / λ` — so an
/// event-driven simulator can draw the gap to the next arrival with the
/// same entropy discipline as [`Geometric`]: one draw per jump, however
/// long the jump.
///
/// Numerical edges mirror the geometric sampler's underflow guard:
///
/// * `ln(1 − u)` is computed as `ln_1p(−u)`, which keeps full precision
///   for the small-`u` draws where `1.0 - u` would round back to `1.0`
///   (a plain `(1.0 - u).ln()` collapses every `u < 2⁻⁵³`-ish draw to
///   an exact zero gap);
/// * for subnormal-scale rates (`λ` down to `f64::MIN_POSITIVE`) the
///   quotient can exceed `f64::MAX`; samples saturate there instead of
///   returning `∞`, so downstream arithmetic stays finite.
///
/// # Examples
///
/// ```
/// use pbbf_rand::distributions::{Distribution, Exponential};
///
/// let e = Exponential::new(0.000125).unwrap();
/// # struct Zero;
/// # impl pbbf_rand::RngCore for Zero {
/// #     fn next_u32(&mut self) -> u32 { 0 }
/// #     fn next_u64(&mut self) -> u64 { 0 }
/// #     fn fill_bytes(&mut self, dest: &mut [u8]) { dest.fill(0) }
/// # }
/// // u = 0 is the zero-waiting-time corner.
/// assert_eq!(e.sample(&mut Zero), 0.0);
/// assert!(Exponential::new(0.0).is_err());
/// assert!(Exponential::new(f64::INFINITY).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates the distribution for rate `λ ∈ (0, ∞)`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRate`] when `λ` is not a finite positive value
    /// (a zero rate has no next arrival to sample).
    pub fn new(lambda: f64) -> Result<Self, InvalidRate> {
        if !(lambda > 0.0 && lambda < f64::INFINITY) {
            return Err(InvalidRate);
        }
        Ok(Self { lambda })
    }

    /// The rate `λ`.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Distribution<f64> for Exponential {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = unit_f64_from_bits(rng.next_u64());
        // ln_1p keeps precision for tiny u; min saturates the
        // subnormal-λ overflow to f64::MAX instead of ∞.
        (-(-u).ln_1p() / self.lambda).min(f64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Test-local splitmix64 (the compat crates cannot depend on
    /// `pbbf-des` without a cycle).
    struct Splitmix(u64);

    impl RngCore for Splitmix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    #[test]
    fn rejects_bad_probabilities() {
        for p in [0.0, -0.2, 1.0001, f64::NAN, f64::INFINITY] {
            assert_eq!(Geometric::new(p).unwrap_err(), InvalidProbability);
        }
        for p in [1e-12, 0.05, 0.5, 0.9999, 1.0] {
            assert!(Geometric::new(p).is_ok(), "p = {p}");
        }
    }

    #[test]
    fn pinned_draws_inversion_path() {
        // Golden draws: any change to the bit→f64 mapping, the inversion
        // formula, or the path-selection threshold shows up here.
        let g = Geometric::new(0.05).unwrap();
        let mut rng = Splitmix(42);
        let draws: Vec<u64> = (0..8).map(|_| g.sample(&mut rng)).collect();
        assert_eq!(draws, vec![26, 3, 6, 8, 0, 39, 4, 31]);

        let g = Geometric::new(0.5).unwrap();
        let mut rng = Splitmix(7);
        let draws: Vec<u64> = (0..8).map(|_| g.sample(&mut rng)).collect();
        assert_eq!(draws, vec![0, 0, 3, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn pinned_draws_walk_path() {
        let g = Geometric::new(0.75).unwrap();
        let mut rng = Splitmix(42);
        let draws: Vec<u64> = (0..8).map(|_| g.sample(&mut rng)).collect();
        assert_eq!(draws, vec![0, 0, 0, 0, 0, 1, 0, 1]);
    }

    #[test]
    fn one_draw_per_sample_on_both_paths() {
        // Identical generators must stay in lockstep however long the
        // sampled runs are — one u64 per sample is the whole point.
        for p in [0.01, 0.3, 0.5, 0.8, 1.0] {
            let g = Geometric::new(p).unwrap();
            let mut a = Splitmix(9);
            let mut b = Splitmix(9);
            for _ in 0..100 {
                let _ = g.sample(&mut a);
                let _ = b.next_u64();
            }
            assert_eq!(a.next_u64(), b.next_u64(), "p = {p}");
        }
    }

    #[test]
    fn p_one_is_always_zero() {
        let g = Geometric::new(1.0).unwrap();
        let mut rng = Splitmix(3);
        for _ in 0..1000 {
            assert_eq!(g.sample(&mut rng), 0);
        }
    }

    #[test]
    fn near_zero_p_keeps_ln_precision() {
        // p = 1e-12 still has ~4 significant digits in `1 - p`, so the
        // cached ln must be finite, negative, and within rounding of the
        // exact −p − p²/2 − …; a run-length sample then lands around
        // 1/p, not at 0 or u64::MAX.
        let g = Geometric::new(1e-12).unwrap();
        assert!(g.ln_one_minus_p < 0.0 && g.ln_one_minus_p.is_finite());
        assert!(
            (g.ln_one_minus_p / -1e-12 - 1.0).abs() < 1e-3,
            "ln(1 - p) = {} drifted from -p",
            g.ln_one_minus_p
        );
        let mut rng = Splitmix(17);
        for _ in 0..64 {
            let k = g.sample(&mut rng);
            assert!(
                (10_000_000..u64::MAX).contains(&k),
                "run {k} is not geometric-of-tiny-p sized"
            );
        }
    }

    #[test]
    fn subnormal_p_saturates_instead_of_dividing_by_zero() {
        // Below one ulp of 1.0, `1.0 - p` rounds to 1.0 exactly; without
        // the ln_1p fallback the cached log would be 0.0 and every
        // sample would be 0/0 (NaN → 0) or x/0. With it, runs saturate
        // at astronomically large values, as the distribution demands.
        for p in [1e-17, 1e-100, 1e-300, f64::MIN_POSITIVE] {
            let g = Geometric::new(p).unwrap();
            assert!(
                g.ln_one_minus_p < 0.0 && g.ln_one_minus_p.is_finite(),
                "p = {p}: cached ln {} must stay finite and negative",
                g.ln_one_minus_p
            );
            let mut rng = Splitmix(23);
            for _ in 0..64 {
                assert!(g.sample(&mut rng) > 1u64 << 50, "p = {p}");
            }
        }
    }

    #[test]
    fn mean_matches_closed_form() {
        // E[X] = (1 − p) / p on both sampler paths.
        for (p, seed) in [(0.05, 1u64), (0.3, 2), (0.5, 3), (0.7, 4), (0.9, 5)] {
            let g = Geometric::new(p).unwrap();
            let mut rng = Splitmix(seed);
            let n = 200_000;
            let mean = (0..n).map(|_| g.sample(&mut rng) as f64).sum::<f64>() / f64::from(n);
            let expected = (1.0 - p) / p;
            let tol = 4.0 * ((1.0 - p).sqrt() / p) / f64::from(n).sqrt();
            assert!(
                (mean - expected).abs() < tol.max(1e-3),
                "p = {p}: mean {mean} vs {expected}"
            );
        }
    }

    #[test]
    fn frequencies_match_pmf() {
        // Chi-square-style check of the first few cells on both paths.
        for (p, seed) in [(0.25, 11u64), (0.8, 13)] {
            let g = Geometric::new(p).unwrap();
            let mut rng = Splitmix(seed);
            let n = 100_000usize;
            let mut counts = [0u32; 6];
            for _ in 0..n {
                let k = g.sample(&mut rng) as usize;
                if k < counts.len() {
                    counts[k] += 1;
                }
            }
            for (k, &c) in counts.iter().enumerate() {
                let expect = (1.0 - p).powi(k as i32) * p;
                let freq = f64::from(c) / n as f64;
                assert!(
                    (freq - expect).abs() < 0.01,
                    "p = {p}, k = {k}: freq {freq} vs pmf {expect}"
                );
            }
        }
    }

    #[test]
    fn exponential_rejects_bad_rates() {
        for lambda in [0.0, -1.0, f64::NAN, f64::INFINITY, -f64::MIN_POSITIVE] {
            assert_eq!(Exponential::new(lambda).unwrap_err(), InvalidRate);
        }
        for lambda in [f64::MIN_POSITIVE, 1e-300, 1e-12, 0.000125, 1.0, 1e12] {
            assert!(Exponential::new(lambda).is_ok(), "lambda = {lambda}");
        }
    }

    #[test]
    fn exponential_pinned_draws() {
        // Golden draws (compared by bit pattern): any change to the
        // bit→f64 mapping or the inversion formula shows up here. The
        // rate is the long-horizon bench kernel's λ = 0.000125.
        let e = Exponential::new(0.000125).unwrap();
        let mut rng = Splitmix(42);
        let bits: Vec<u64> = (0..4).map(|_| e.sample(&mut rng).to_bits()).collect();
        let expected = [
            EXPONENTIAL_PIN_0,
            EXPONENTIAL_PIN_1,
            EXPONENTIAL_PIN_2,
            EXPONENTIAL_PIN_3,
        ];
        assert_eq!(bits, expected, "draws: {:?}", bits);
    }

    // Captured once from the implementation above (printed via
    // `exponential_pinned_draws` with stale pins); pinned forever.
    const EXPONENTIAL_PIN_0: u64 = 4667176657674208293; // ≈ 10824.9 s
    const EXPONENTIAL_PIN_1: u64 = 4653845576796731564; // ≈ 1394.0 s
    const EXPONENTIAL_PIN_2: u64 = 4657963373484227527; // ≈ 2612.5 s
    const EXPONENTIAL_PIN_3: u64 = 4659640299034435808; // ≈ 3375.1 s

    #[test]
    fn exponential_one_draw_per_sample() {
        for lambda in [1e-9, 0.000125, 1.0, 1e6] {
            let e = Exponential::new(lambda).unwrap();
            let mut a = Splitmix(9);
            let mut b = Splitmix(9);
            for _ in 0..100 {
                let _ = e.sample(&mut a);
                let _ = b.next_u64();
            }
            assert_eq!(a.next_u64(), b.next_u64(), "lambda = {lambda}");
        }
    }

    #[test]
    fn exponential_extreme_rates_stay_finite() {
        // λ down to f64::MIN_POSITIVE: gaps are astronomically long but
        // must remain finite (saturating at f64::MAX), positive, and
        // 1/λ-scaled — the ln_1p path must not collapse them to zero.
        for lambda in [1e-12, 1e-100, 1e-300, f64::MIN_POSITIVE] {
            let e = Exponential::new(lambda).unwrap();
            let mut rng = Splitmix(17);
            for _ in 0..64 {
                let x = e.sample(&mut rng);
                assert!(x.is_finite(), "lambda = {lambda}: sample {x}");
                assert!(
                    x > 1e-7 / lambda || x == f64::MAX,
                    "lambda = {lambda}: sample {x} is not exponential-of-tiny-rate sized"
                );
            }
        }
    }

    #[test]
    fn exponential_tiny_u_keeps_ln_1p_precision() {
        // A raw u64 below 2^11 maps to u = 0 exactly (zero gap is
        // correct); the smallest nonzero u must produce a gap near
        // u/λ — a plain (1.0 - u).ln() would round it to zero.
        struct Fixed(u64);
        impl RngCore for Fixed {
            fn next_u32(&mut self) -> u32 {
                (self.0 >> 32) as u32
            }
            fn next_u64(&mut self) -> u64 {
                self.0
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                dest.fill(0);
            }
        }
        let e = Exponential::new(1.0).unwrap();
        assert_eq!(e.sample(&mut Fixed(0)), 0.0);
        let tiny = e.sample(&mut Fixed(1u64 << 11)); // u = 2^-53
        let u = 1.0 / (1u64 << 53) as f64;
        assert!(
            tiny > 0.0 && (tiny / u - 1.0).abs() < 1e-9,
            "gap {tiny} should be ~u = {u} for tiny u"
        );
    }

    #[test]
    fn exponential_mean_matches_closed_form() {
        // E[X] = 1/λ; relative tolerance since the scales span 1e-4..1e1.
        for (lambda, seed) in [(0.000125, 1u64), (0.5, 2), (2.0, 3), (10.0, 4)] {
            let e = Exponential::new(lambda).unwrap();
            let mut rng = Splitmix(seed);
            let n = 200_000;
            let mean = (0..n).map(|_| e.sample(&mut rng)).sum::<f64>() / f64::from(n);
            // SD of the sample mean is (1/λ)/√n; allow 4σ.
            let tol = 4.0 / f64::from(n).sqrt();
            assert!(
                (mean * lambda - 1.0).abs() < tol,
                "lambda = {lambda}: mean {mean} vs {}",
                1.0 / lambda
            );
        }
    }

    proptest! {
        /// Distribution-shape check over randomized rates: the empirical
        /// survival function matches e^(−λt) at the median and the mean
        /// (t = ln2/λ and t = 1/λ) for any positive rate.
        #[test]
        fn exponential_survival_matches_closed_form(
            log10_lambda in -6.0f64..=6.0,
            seed in 0u64..1_000_000,
        ) {
            let lambda = 10f64.powf(log10_lambda);
            let e = Exponential::new(lambda).unwrap();
            let mut rng = Splitmix(seed);
            let n = 4096usize;
            let (mut above_median, mut above_mean) = (0usize, 0usize);
            let (median, mean) = (std::f64::consts::LN_2 / lambda, 1.0 / lambda);
            for _ in 0..n {
                let x = e.sample(&mut rng);
                prop_assert!(x.is_finite() && x >= 0.0, "sample {x}");
                if x > median {
                    above_median += 1;
                }
                if x > mean {
                    above_mean += 1;
                }
            }
            // 4σ binomial tolerance at n = 4096 is ~0.031.
            let tol = 4.0 * 0.5 / (n as f64).sqrt();
            let f_median = above_median as f64 / n as f64;
            let f_mean = above_mean as f64 / n as f64;
            prop_assert!(
                (f_median - 0.5).abs() < tol,
                "λ = {lambda}: P(X > median) = {f_median}"
            );
            prop_assert!(
                (f_mean - std::f64::consts::E.recip()).abs() < tol,
                "λ = {lambda}: P(X > 1/λ) = {f_mean}"
            );
        }
    }

    #[test]
    fn unit_f64_mapping() {
        assert_eq!(unit_f64_from_bits(0), 0.0);
        let max = unit_f64_from_bits(u64::MAX);
        assert!((0.0..1.0).contains(&max));
        assert!(max > 0.999_999_999);
        // Only the top 53 bits matter (matches SimRng::uniform01).
        assert_eq!(unit_f64_from_bits(0x7FF), 0.0);
    }
}
