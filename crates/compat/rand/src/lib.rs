//! Offline stand-in for the `rand` API surface this workspace uses:
//! the [`RngCore`] trait, its [`Error`] type, and the one distribution
//! the simulators sample beyond uniforms —
//! [`distributions::Geometric`], the batched form of a run of identical
//! Bernoulli coins. The workspace's generators (`SimRng` in `pbbf-des`)
//! implement the trait.

pub mod distributions;

use std::fmt;

/// A random-number generator core: the subset of `rand::RngCore` the
/// workspace's simulators rely on.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest`, reporting failure (never fails for deterministic
    /// generators).
    ///
    /// # Errors
    ///
    /// Implementations backed by fallible entropy sources may fail; the
    /// deterministic generators in this workspace never do.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Random-generation error (mirrors `rand::Error`'s role).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random generation failed")
    }
}

impl std::error::Error for Error {}
