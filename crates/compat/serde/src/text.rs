//! JSON text parsing and rendering for the [`Json`](crate::Json) model.

use crate::{Error, Json};

/// Renders a [`Json`] tree as JSON text.
///
/// Matches `serde_json`'s conventions where they matter for round-trips:
/// non-finite floats render as `null`, and integral floats keep a `.0` so
/// they re-parse as floats.
#[must_use]
pub fn render_json(value: &Json, pretty: bool) -> String {
    let mut out = String::new();
    write_value(&mut out, value, pretty, 0);
    out
}

fn write_value(out: &mut String, value: &Json, pretty: bool, depth: usize) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::I64(v) => out.push_str(&v.to_string()),
        Json::U64(v) => out.push_str(&v.to_string()),
        Json::F64(v) => write_f64(out, *v),
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            write_seq(
                out,
                pretty,
                depth,
                '[',
                ']',
                items.iter(),
                |out, item, d| {
                    write_value(out, item, pretty, d);
                },
            );
        }
        Json::Obj(entries) => {
            write_seq(
                out,
                pretty,
                depth,
                '{',
                '}',
                entries.iter(),
                |out, (k, v), d| {
                    write_string(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    write_value(out, v, pretty, d);
                },
            );
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    pretty: bool,
    depth: usize,
    open: char,
    close: char,
    items: I,
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if pretty {
            out.push('\n');
            out.push_str(&"  ".repeat(depth + 1));
        }
        write_item(out, item, depth + 1);
    }
    if pretty && !empty {
        out.push('\n');
        out.push_str(&"  ".repeat(depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e16 {
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Json`] tree.
///
/// # Errors
///
/// Returns an error describing the first syntax problem found.
pub fn parse_json(input: &str) -> Result<Json, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: &str) -> Error {
        Error::msg(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Json, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Json, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.parse_unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("bad UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_unicode_escape(&mut self) -> Result<char, Error> {
        let hi = self.parse_hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: expect \uXXXX low surrogate.
            if self.eat_keyword("\\u") {
                let lo = self.parse_hex4()?;
                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(code).ok_or_else(|| self.error("bad surrogate pair"));
            }
            return Err(self.error("lone surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.error("bad unicode escape"))
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("bad unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.error("bad unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Json, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("bad number"))?;
        if !fractional {
            if let Ok(v) = s.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = s.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        s.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.error("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_scalars() {
        assert_eq!(render_json(&Json::F64(1.0), false), "1.0");
        assert_eq!(render_json(&Json::F64(0.75), false), "0.75");
        assert_eq!(render_json(&Json::U64(42), false), "42");
        assert_eq!(render_json(&Json::F64(f64::NAN), false), "null");
        assert_eq!(parse_json("42").unwrap(), Json::U64(42));
        assert_eq!(parse_json("-7").unwrap(), Json::I64(-7));
        assert_eq!(parse_json("0.75").unwrap(), Json::F64(0.75));
        assert_eq!(parse_json("1e3").unwrap(), Json::F64(1000.0));
    }

    #[test]
    fn round_trips_nested_structures() {
        let v = Json::Obj(vec![
            ("label".to_string(), Json::Str("PBBF-0.5 \"q\"".to_string())),
            (
                "points".to_string(),
                Json::Arr(vec![Json::F64(0.5), Json::Null, Json::Bool(true)]),
            ),
        ]);
        for pretty in [false, true] {
            let text = render_json(&v, pretty);
            assert_eq!(parse_json(&text).unwrap(), v);
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("1 2").is_err());
        assert!(parse_json("\"\\q\"").is_err());
    }

    #[test]
    fn parses_escapes() {
        assert_eq!(
            parse_json(r#""a\n\u0041\ud83d\ude00""#).unwrap(),
            Json::Str("a\nA😀".to_string())
        );
    }
}
