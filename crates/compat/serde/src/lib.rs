//! Offline stand-in for the subset of the `serde` API this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace aliases
//! `serde = { package = "pbbf-serde", ... }`. Consumer code keeps writing
//! the familiar surface — `#[derive(Serialize, Deserialize)]`,
//! `fn serialize<S: Serializer>`, `serde::de::Error::custom` — but the
//! machinery underneath is a simple JSON value model ([`Json`]) rather than
//! serde's visitor architecture:
//!
//! * [`Serialize`] turns a value into a [`Json`] tree via [`to_value`] and
//!   hands it to whatever [`Serializer`] was supplied.
//! * [`Deserialize`] takes the [`Json`] tree out of a [`Deserializer`] and
//!   rebuilds the value via [`from_value`].
//!
//! The derive macros (re-exported from `pbbf-serde-derive`) generate
//! externally-tagged representations matching serde's defaults, so swapping
//! the real serde back in later does not change the JSON produced for the
//! types in this workspace.

mod text;

use std::fmt;

pub use pbbf_serde_derive::{Deserialize, Serialize};
pub use text::{parse_json, render_json};

/// A JSON value: the interchange model behind the [`Serialize`] and
/// [`Deserialize`] traits.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A negative integer (non-negative integers parse as [`Json::U64`]).
    I64(i64),
    /// A non-negative integer.
    U64(u64),
    /// A number with a fractional part or exponent.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A short human-readable name of the value's type, for errors.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::I64(_) | Json::U64(_) => "integer",
            Json::F64(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Serialization / deserialization error: a message, as in `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Mirror of `serde::de`: the error-construction trait custom
/// `Deserialize` impls use.
pub mod de {
    /// Construction of deserialization errors from display-able messages.
    pub trait Error: Sized {
        /// Builds an error carrying `msg`.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    impl Error for crate::Error {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            crate::Error::msg(msg.to_string())
        }
    }
}

/// A sink for one serialized value.
pub trait Serializer: Sized {
    /// What a successful serialization yields.
    type Ok;
    /// The error type.
    type Error;
    /// Consumes the serializer with the fully-built value tree.
    fn serialize_value(self, value: Json) -> Result<Self::Ok, Self::Error>;
}

/// A value that can serialize itself into any [`Serializer`].
pub trait Serialize {
    /// Serializes `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The identity serializer: yields the [`Json`] tree itself.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Json;
    type Error = Error;
    fn serialize_value(self, value: Json) -> Result<Json, Error> {
        Ok(value)
    }
}

/// Serializes any value to a [`Json`] tree (infallible in this model).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Json {
    match value.serialize(ValueSerializer) {
        Ok(v) => v,
        Err(e) => unreachable!("value serialization is infallible: {e}"),
    }
}

/// A source of one [`Json`] value.
pub trait Deserializer<'de>: Sized {
    /// The error type.
    type Error: de::Error;
    /// Consumes the deserializer, yielding the value tree.
    fn take_value(self) -> Result<Json, Self::Error>;
}

/// A value that can rebuild itself from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// The identity deserializer over an owned [`Json`] tree.
pub struct ValueDeserializer(pub Json);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;
    fn take_value(self) -> Result<Json, Error> {
        Ok(self.0)
    }
}

/// Rebuilds a `T` from a [`Json`] tree.
///
/// # Errors
///
/// Returns an error when the tree's shape does not match `T`.
pub fn from_value<T>(value: Json) -> Result<T, Error>
where
    T: for<'de> Deserialize<'de>,
{
    T::deserialize(ValueDeserializer(value))
}

/// Takes an array of exactly `len` elements out of `value`, used by
/// derived `Deserialize` impls for tuple shapes.
///
/// # Errors
///
/// Returns an error if `value` is not an array of that length.
pub fn take_arr(value: Json, len: usize, type_name: &'static str) -> Result<Vec<Json>, Error> {
    match value {
        Json::Arr(items) if items.len() == len => Ok(items),
        Json::Arr(items) => Err(Error::msg(format!(
            "{type_name}: expected {len} elements, found {}",
            items.len()
        ))),
        other => Err(Error::msg(format!(
            "{type_name}: expected array, found {}",
            other.type_name()
        ))),
    }
}

/// Field-by-field access to a [`Json::Obj`], used by derived
/// `Deserialize` impls.
pub struct ObjAccess {
    type_name: &'static str,
    entries: Vec<(String, Json)>,
}

impl ObjAccess {
    /// Starts consuming `value`, which must be an object.
    ///
    /// # Errors
    ///
    /// Returns an error if `value` is not an object.
    pub fn new(value: Json, type_name: &'static str) -> Result<Self, Error> {
        match value {
            Json::Obj(entries) => Ok(Self { type_name, entries }),
            other => Err(Error::msg(format!(
                "{type_name}: expected object, found {}",
                other.type_name()
            ))),
        }
    }

    /// Removes and deserializes the field named `key`.
    ///
    /// # Errors
    ///
    /// Returns an error if the field is missing or has the wrong shape.
    pub fn field<T>(&mut self, key: &str) -> Result<T, Error>
    where
        T: for<'de> Deserialize<'de>,
    {
        let idx = self
            .entries
            .iter()
            .position(|(k, _)| k == key)
            .ok_or_else(|| Error::msg(format!("{}: missing field `{key}`", self.type_name)))?;
        let (_, v) = self.entries.swap_remove(idx);
        from_value(v).map_err(|e| Error::msg(format!("{}.{key}: {e}", self.type_name)))
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and containers
// ---------------------------------------------------------------------------

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Json::U64(u64::from(*self)))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Json::U64(*self as u64))
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = i64::from(*self);
                let json = if v >= 0 { Json::U64(v as u64) } else { Json::I64(v) };
                serializer.serialize_value(json)
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (*self as i64).serialize(serializer)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Json::F64(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Json::F64(f64::from(*self)))
    }
}

/// A [`Json`] tree serializes as itself — the identity. This is what
/// lets a derived struct carry an *opaque* `Json` field (the sweep
/// fabric's shard payloads travel this way: the supervisor forwards a
/// job it never interprets).
impl Serialize for Json {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Json::Bool(*self))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Json::Str(self.clone()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Json::Str(self.to_string()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_value(Json::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Json::Arr(self.iter().map(|v| to_value(v)).collect()))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Json::Arr(vec![to_value(&self.0), to_value(&self.1)]))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Json::Arr(vec![
            to_value(&self.0),
            to_value(&self.1),
            to_value(&self.2),
        ]))
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for primitives and containers
// ---------------------------------------------------------------------------

fn wrong_type<T>(expected: &str, found: &Json) -> Result<T, Error> {
    Err(Error::msg(format!(
        "expected {expected}, found {}",
        found.type_name()
    )))
}

fn take_u64(value: &Json) -> Result<u64, Error> {
    match value {
        Json::U64(v) => Ok(*v),
        Json::I64(v) if *v >= 0 => Ok(*v as u64),
        other => wrong_type("unsigned integer", other),
    }
}

impl<'de> Deserialize<'de> for u64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = deserializer.take_value()?;
        take_u64(&v).map_err(de::Error::custom)
    }
}

macro_rules! de_small_unsigned {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let v = deserializer.take_value()?;
                let wide = take_u64(&v).map_err(de::Error::custom)?;
                <$t>::try_from(wide)
                    .map_err(|_| de::Error::custom(format!("{wide} overflows {}", stringify!($t))))
            }
        }
    )*};
}
de_small_unsigned!(u8, u16, u32, usize);

impl<'de> Deserialize<'de> for i64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Json::I64(v) => Ok(v),
            Json::U64(v) => {
                i64::try_from(v).map_err(|_| de::Error::custom(format!("{v} overflows i64")))
            }
            other => wrong_type("integer", &other).map_err(de::Error::custom),
        }
    }
}

macro_rules! de_small_signed {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let wide = i64::deserialize(deserializer)?;
                <$t>::try_from(wide)
                    .map_err(|_| de::Error::custom(format!("{wide} overflows {}", stringify!($t))))
            }
        }
    )*};
}
de_small_signed!(i8, i16, i32, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Json::F64(v) => Ok(v),
            Json::I64(v) => Ok(v as f64),
            Json::U64(v) => Ok(v as f64),
            other => wrong_type("number", &other).map_err(de::Error::custom),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(f64::deserialize(deserializer)? as f32)
    }
}

/// The identity deserialization: any [`Json`] tree is a `Json`.
impl<'de> Deserialize<'de> for Json {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.take_value()
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Json::Bool(v) => Ok(v),
            other => wrong_type("bool", &other).map_err(de::Error::custom),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Json::Str(v) => Ok(v),
            other => wrong_type("string", &other).map_err(de::Error::custom),
        }
    }
}

impl<'de, T> Deserialize<'de> for Option<T>
where
    T: for<'a> Deserialize<'a>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Json::Null => Ok(None),
            other => from_value(other).map(Some).map_err(de::Error::custom),
        }
    }
}

impl<'de, T> Deserialize<'de> for Vec<T>
where
    T: for<'a> Deserialize<'a>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Json::Arr(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(de::Error::custom))
                .collect(),
            other => wrong_type("array", &other).map_err(de::Error::custom),
        }
    }
}

impl<'de, A, B> Deserialize<'de> for (A, B)
where
    A: for<'a> Deserialize<'a>,
    B: for<'a> Deserialize<'a>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Json::Arr(items) if items.len() == 2 => {
                let mut it = items.into_iter();
                let a = from_value(it.next().expect("len 2")).map_err(de::Error::custom)?;
                let b = from_value(it.next().expect("len 2")).map_err(de::Error::custom)?;
                Ok((a, b))
            }
            other => wrong_type("2-element array", &other).map_err(de::Error::custom),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_values() {
        assert_eq!(to_value(&7u32), Json::U64(7));
        assert_eq!(to_value(&-3i64), Json::I64(-3));
        assert_eq!(from_value::<u32>(Json::U64(7)).unwrap(), 7);
        assert_eq!(from_value::<f64>(Json::U64(7)).unwrap(), 7.0);
        assert!(from_value::<u8>(Json::U64(300)).is_err());
        assert!(from_value::<bool>(Json::U64(1)).is_err());
    }

    #[test]
    fn json_is_its_own_identity() {
        let v = Json::Obj(vec![
            ("k".to_string(), Json::U64(3)),
            (
                "vals".to_string(),
                Json::Arr(vec![Json::Null, Json::F64(0.5)]),
            ),
        ]);
        assert_eq!(to_value(&v), v);
        assert_eq!(from_value::<Json>(v.clone()).unwrap(), v);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        let back: Vec<(f64, f64)> = from_value(to_value(&v)).unwrap();
        assert_eq!(back, v);
        let opt: Option<u64> = None;
        assert_eq!(to_value(&opt), Json::Null);
        assert_eq!(from_value::<Option<u64>>(Json::Null).unwrap(), None);
    }
}
