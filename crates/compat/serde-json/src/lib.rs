//! Offline stand-in for the `serde_json` functions this workspace uses
//! (`to_string`, `to_string_pretty`, `from_str`), delegating to the
//! `pbbf-serde` value model and its JSON text layer.

pub use serde::Error;

/// The JSON value type (alias of the shim's [`serde::Json`]).
pub type Value = serde::Json;

/// Serializes `value` as compact JSON text.
///
/// # Errors
///
/// Infallible in this model; the `Result` mirrors `serde_json`'s API.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::render_json(&serde::to_value(value), false))
}

/// Serializes `value` as pretty-printed JSON text.
///
/// # Errors
///
/// Infallible in this model; the `Result` mirrors `serde_json`'s API.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::render_json(&serde::to_value(value), true))
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T>(input: &str) -> Result<T, Error>
where
    T: for<'de> serde::Deserialize<'de>,
{
    serde::from_value(serde::parse_json(input)?)
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Sample {
        name: String,
        values: Vec<f64>,
        count: u64,
        tag: Option<String>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Unit,
        New(u64),
        Struct { x: f64, on: bool },
    }

    #[test]
    fn struct_round_trip() {
        let s = Sample {
            name: "PBBF-0.5".to_string(),
            values: vec![0.5, 1.0, -2.25],
            count: 3,
            tag: None,
        };
        let text = super::to_string(&s).unwrap();
        assert_eq!(super::from_str::<Sample>(&text).unwrap(), s);
        let pretty = super::to_string_pretty(&s).unwrap();
        assert_eq!(super::from_str::<Sample>(&pretty).unwrap(), s);
    }

    #[test]
    fn enum_round_trip_all_variant_shapes() {
        for k in [Kind::Unit, Kind::New(9), Kind::Struct { x: 0.5, on: true }] {
            let text = super::to_string(&k).unwrap();
            assert_eq!(super::from_str::<Kind>(&text).unwrap(), k);
        }
        assert_eq!(super::to_string(&Kind::Unit).unwrap(), "\"Unit\"");
        assert_eq!(super::to_string(&Kind::New(9)).unwrap(), "{\"New\":9}");
    }

    #[test]
    fn missing_field_reports_name() {
        let err = super::from_str::<Sample>("{\"name\":\"x\"}").unwrap_err();
        assert!(err.to_string().contains("missing field"), "{err}");
    }
}
