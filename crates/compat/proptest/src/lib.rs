//! Offline mini-proptest: enough of the `proptest` surface for this
//! workspace's property tests — the [`proptest!`] macro, range and
//! collection [`Strategy`]s, [`any`], and the `prop_assert*` macros.
//!
//! No shrinking: a failing case panics with the values that produced it
//! (cases are deterministic per test name, so a failure reproduces by
//! re-running the test).

use std::ops::{Range, RangeInclusive};

/// Deterministic generator behind the strategies (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw below `n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.below(span + 1) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

/// Tuples of strategies generate tuples of values (the upstream crate's
/// tuple composition, for the common `(index, kind, payload)` shapes).
macro_rules! tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        // Occasionally emit the exact endpoints: they are where the edge
        // cases live (p = 0, q = 1, ...).
        match rng.below(16) {
            0 => lo,
            1 => hi,
            _ => lo + rng.unit_f64() * (hi - lo),
        }
    }
}

/// A strategy for probabilities in the half-open interval `(0, 1]` —
/// the domain of a geometric success probability (a zero-probability
/// coin has no finite runs). Exercises the `p = 1` endpoint and
/// near-zero values deliberately: that is where samplers break.
///
/// # Examples
///
/// ```
/// use pbbf_proptest::{probability_open_closed, Strategy, TestRng};
///
/// let mut rng = TestRng::new(1);
/// for _ in 0..100 {
///     let p = probability_open_closed().generate(&mut rng);
///     assert!(p > 0.0 && p <= 1.0);
/// }
/// ```
#[must_use]
pub fn probability_open_closed() -> ProbabilityOpenClosed {
    ProbabilityOpenClosed
}

/// See [`probability_open_closed`].
pub struct ProbabilityOpenClosed;

impl Strategy for ProbabilityOpenClosed {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        match rng.below(16) {
            // The exact endpoint and the tiny-p regime are the edge
            // cases; f64::MIN_POSITIVE stresses ln/underflow paths.
            0 => 1.0,
            1 => 1e-9,
            2 => f64::MIN_POSITIVE,
            // (0, 1): reject the measure-zero 0.0 by nudging it up.
            _ => rng.unit_f64().max(f64::MIN_POSITIVE),
        }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// The full-range strategy for `T` (mirrors `proptest::prelude::any`).
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a range.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    /// Vectors of values from `element`, sized by `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec<S::Value>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The names property tests import with one `use`.
pub mod prelude {
    pub use crate::{
        any, probability_open_closed, prop_assert, prop_assert_eq, proptest, Strategy,
    };

    /// Mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over many generated cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            // Deterministic per-test seed (FNV-1a over the test name).
            let mut seed = 1469598103934665603u64;
            for b in stringify!($name).bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(1099511628211);
            }
            let mut rng = $crate::TestRng::new(seed);
            for case in 0..64u32 {
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)*
                // Render inputs before the body, which may consume them.
                let inputs =
                    [$(::std::format!("{} = {:?}", stringify!($arg), $arg)),*].join(", ");
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    Ok(())
                })();
                if let Err(message) = outcome {
                    panic!(
                        "property `{}` failed on case {case}: {message}\n  inputs: {inputs}",
                        stringify!($name),
                    );
                }
            }
        }
    )*};
}

/// Asserts inside a [`proptest!`] body, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err(::std::format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err(::std::format!(
                "assertion failed: `{}` != `{}`\n  left: {left:?}\n right: {right:?}",
                stringify!($left),
                stringify!($right),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in 0.0f64..=1.0, flag in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert_eq!(u64::from(flag) <= 1, true);
        }

        #[test]
        fn vec_strategy_sizes(xs in prop::collection::vec(0u64..5, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&v| v < 5));
        }

        #[test]
        fn probabilities_stay_in_domain(p in probability_open_closed()) {
            prop_assert!(p > 0.0 && p <= 1.0, "p = {p}");
        }
    }

    #[test]
    fn probability_strategy_hits_the_endpoint() {
        let mut rng = crate::TestRng::new(5);
        let s = crate::probability_open_closed();
        let draws: Vec<f64> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.contains(&1.0), "p = 1 must be exercised");
        assert!(draws.iter().any(|&p| p < 1e-6), "tiny p must be exercised");
        assert!(draws.iter().all(|&p| p > 0.0 && p <= 1.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = crate::TestRng::new(7);
        let mut b = crate::TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
