//! `#[derive(Serialize, Deserialize)]` for the `pbbf-serde` shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). Supports what this workspace's types
//! need, generating serde's default externally-tagged representation:
//!
//! * structs with named fields → JSON objects
//! * newtype structs → the inner value
//! * tuple structs → arrays
//! * enums with unit / newtype / struct variants → `"Variant"` or
//!   `{"Variant": ...}`
//!
//! Generic types are *not* supported — hand-write those impls (see
//! `StateClock` in `pbbf-metrics`). Field attributes such as
//! `#[serde(with = ...)]` are likewise out of scope and rejected.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `pbbf-serde`'s `Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `pbbf-serde`'s `Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("pbbf-serde-derive generated invalid Rust"),
        Err(msg) => format!("::core::compile_error!({msg:?});")
            .parse()
            .expect("compile_error is valid Rust"),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips `#[...]` attributes (including doc comments).
    fn skip_attributes(&mut self) -> Result<(), String> {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1;
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                _ => return Err("expected `[...]` after `#`".to_string()),
            }
        }
        Ok(())
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == c {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Skips a field's type: everything up to a comma at angle-bracket
    /// depth zero (groups are atomic tokens, so parens/brackets nest for
    /// free). The trailing comma, if present, is consumed.
    fn skip_type_to_comma(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(tok) = self.peek() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        self.pos += 1;
                        return;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attributes()?;
    c.skip_visibility();
    let kind = c.expect_ident()?;
    let name = c.expect_ident()?;
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "pbbf-serde derive does not support generics on `{name}`; \
                 hand-write the Serialize/Deserialize impls"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())?
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unexpected token after struct name: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Fields, String> {
    let mut c = Cursor::new(stream);
    let mut names = Vec::new();
    while !c.at_end() {
        c.skip_attributes()?;
        c.skip_visibility();
        if c.at_end() {
            break;
        }
        names.push(c.expect_ident()?);
        if !c.eat_punct(':') {
            return Err("expected `:` after field name".to_string());
        }
        c.skip_type_to_comma();
    }
    Ok(Fields::Named(names))
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    while !c.at_end() {
        count += 1;
        // A field may start with attributes / visibility; skip_type eats
        // everything to the next top-level comma either way.
        c.skip_type_to_comma();
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.skip_attributes()?;
        if c.at_end() {
            break;
        }
        let name = c.expect_ident()?;
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                c.pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream())?;
                c.pos += 1;
                f
            }
            _ => Fields::Unit,
        };
        if !c.eat_punct(',') && !c.at_end() {
            return Err(format!("expected `,` after variant `{name}`"));
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const MAP_ERR: &str = ".map_err(|e| <D::Error as ::serde::de::Error>::custom(e))?";

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, ser_struct_body(name, fields)),
        Item::Enum { name, variants } => (name, ser_enum_body(name, variants)),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 serializer.serialize_value({body})\n\
             }}\n\
         }}\n"
    )
}

fn ser_struct_body(_name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => obj_literal(
            names
                .iter()
                .map(|f| (f.clone(), format!("::serde::to_value(&self.{f})"))),
        ),
        Fields::Tuple(1) => "::serde::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => arr_literal((0..*n).map(|i| format!("::serde::to_value(&self.{i})"))),
        Fields::Unit => "::serde::Json::Null".to_string(),
    }
}

fn ser_enum_body(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.fields {
                Fields::Unit => format!(
                    "{name}::{vname} => \
                     ::serde::Json::Str(::std::string::String::from(\"{vname}\")),\n"
                ),
                Fields::Tuple(1) => format!(
                    "{name}::{vname}(__f0) => {},\n",
                    tagged(vname, "::serde::to_value(__f0)")
                ),
                Fields::Tuple(n) => {
                    let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                    let arr =
                        arr_literal(binders.iter().map(|b| format!("::serde::to_value({b})")));
                    format!(
                        "{name}::{vname}({}) => {},\n",
                        binders.join(", "),
                        tagged(vname, &arr)
                    )
                }
                Fields::Named(field_names) => {
                    let obj = obj_literal(
                        field_names
                            .iter()
                            .map(|f| (f.clone(), format!("::serde::to_value({f})"))),
                    );
                    format!(
                        "{name}::{vname} {{ {} }} => {},\n",
                        field_names.join(", "),
                        tagged(vname, &obj)
                    )
                }
            }
        })
        .collect();
    format!("match self {{\n{arms}}}")
}

fn tagged(variant: &str, inner: &str) -> String {
    format!(
        "::serde::Json::Obj(::std::vec![(::std::string::String::from(\"{variant}\"), {inner})])"
    )
}

fn obj_literal(fields: impl Iterator<Item = (String, String)>) -> String {
    let entries: String = fields
        .map(|(k, v)| format!("(::std::string::String::from(\"{k}\"), {v}),\n"))
        .collect();
    format!("::serde::Json::Obj(::std::vec![\n{entries}])")
}

fn arr_literal(items: impl Iterator<Item = String>) -> String {
    let entries: String = items.map(|v| format!("{v},\n")).collect();
    format!("::serde::Json::Arr(::std::vec![\n{entries}])")
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, de_struct_body(name, fields)),
        Item::Enum { name, variants } => (name, de_enum_body(name, variants)),
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\n\
                 -> ::core::result::Result<Self, D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn de_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            let assignments: String = names
                .iter()
                .map(|f| format!("{f}: __obj.field(\"{f}\"){MAP_ERR},\n"))
                .collect();
            format!(
                "let mut __obj = ::serde::ObjAccess::new(deserializer.take_value()?, \
                 \"{name}\"){MAP_ERR};\n\
                 ::core::result::Result::Ok({name} {{\n{assignments}}})"
            )
        }
        Fields::Tuple(1) => format!(
            "::core::result::Result::Ok({name}(\
             ::serde::from_value(deserializer.take_value()?){MAP_ERR}))"
        ),
        Fields::Tuple(n) => format!(
            "let __items = ::serde::take_arr(deserializer.take_value()?, {n}, \
             \"{name}\"){MAP_ERR};\n\
             let mut __it = __items.into_iter();\n\
             ::core::result::Result::Ok({name}({}))",
            (0..*n)
                .map(|_| format!(
                    "::serde::from_value(__it.next().expect(\"length checked\")){MAP_ERR}"
                ))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Fields::Unit => format!("::core::result::Result::Ok({name})"),
    }
}

fn de_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| {
            format!(
                "\"{0}\" => ::core::result::Result::Ok({name}::{0}),\n",
                v.name
            )
        })
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter(|v| !matches!(v.fields, Fields::Unit))
        .map(|v| {
            let vname = &v.name;
            match &v.fields {
                Fields::Tuple(1) => format!(
                    "\"{vname}\" => ::core::result::Result::Ok(\
                     {name}::{vname}(::serde::from_value(__inner)?)),\n"
                ),
                Fields::Tuple(n) => {
                    let elems = (0..*n)
                        .map(|_| {
                            "::serde::from_value(__it.next().expect(\"length checked\"))?"
                                .to_string()
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "\"{vname}\" => {{\n\
                         let __items = ::serde::take_arr(__inner, {n}, \"{name}::{vname}\")?;\n\
                         let mut __it = __items.into_iter();\n\
                         ::core::result::Result::Ok({name}::{vname}({elems}))\n\
                         }},\n"
                    )
                }
                Fields::Named(field_names) => {
                    let assignments: String = field_names
                        .iter()
                        .map(|f| format!("{f}: __obj.field(\"{f}\")?,\n"))
                        .collect();
                    format!(
                        "\"{vname}\" => {{\n\
                         let mut __obj = \
                         ::serde::ObjAccess::new(__inner, \"{name}::{vname}\")?;\n\
                         ::core::result::Result::Ok({name}::{vname} {{\n{assignments}}})\n\
                         }},\n"
                    )
                }
                Fields::Unit => unreachable!("filtered"),
            }
        })
        .collect();
    format!(
        "let __value = deserializer.take_value()?;\n\
         let __result: ::core::result::Result<{name}, ::serde::Error> = \
         (|| match __value {{\n\
             ::serde::Json::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::core::result::Result::Err(::serde::Error::msg(\
                     ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
             }},\n\
             ::serde::Json::Obj(mut __entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = __entries.pop().expect(\"length checked\");\n\
                 match __tag.as_str() {{\n\
                     {tagged_arms}\
                     __other => ::core::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
             }},\n\
             __other => ::core::result::Result::Err(::serde::Error::msg(::std::format!(\
                 \"{name}: expected string or single-key object, found {{}}\", \
                 __other.type_name()))),\n\
         }})();\n\
         __result.map_err(|e| <D::Error as ::serde::de::Error>::custom(e))"
    )
}
