//! Offline mini-criterion: the `Criterion` / `Bencher` / `criterion_group!`
//! / `criterion_main!` surface this workspace's benches use, backed by a
//! simple calibrated timing loop instead of criterion's statistics engine.
//!
//! Differences from real criterion, by design:
//!
//! * A bench stops at whichever comes first of `sample_size` samples or the
//!   `measurement_time` budget (real criterion always collects the full
//!   sample count), keeping full-suite runs fast on CI boxes.
//! * When the environment variable `BENCH_OUTPUT_JSON` names a path, the
//!   results of every group in the process are written there as one JSON
//!   document — this is how `BENCH_baseline.json` is produced (see the
//!   `baseline` bench in `crates/bench`). A *relative* path resolves
//!   against the workspace root (the nearest ancestor directory holding a
//!   `Cargo.lock`), not the bench binary's working directory — cargo runs
//!   benches from the package directory, so a raw-cwd interpretation
//!   would scatter `BENCH_baseline.json` into `crates/bench/`.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime};

/// Results from every group in the process, so a bench binary with
/// several `criterion_group!`s writes one merged JSON document instead of
/// each group's `Drop` truncating the previous group's output.
fn process_registry() -> &'static Mutex<Vec<BenchResult>> {
    static REGISTRY: OnceLock<Mutex<Vec<BenchResult>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Process-wide non-timing sections for the JSON report, keyed by name.
/// The shim cannot depend on the crates whose state is worth reporting
/// (deployment-cache counters live above it in the graph), so benches
/// push pre-rendered JSON values here and `write_json` emits them under
/// an `"extras"` object.
fn extras_registry() -> &'static Mutex<Vec<(String, String)>> {
    static EXTRAS: OnceLock<Mutex<Vec<(String, String)>>> = OnceLock::new();
    EXTRAS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Attaches a pre-rendered JSON value to the process's bench report,
/// written as `"extras": {"<key>": <raw_json>, ...}`. `raw_json` must be
/// a valid JSON value (object, number, string...); it is emitted
/// verbatim. Re-setting a key overwrites its value; call order fixes the
/// emission order. Consumers that only care about timings can ignore the
/// section — `BenchReport::parse` in `pbbf-bench` tolerates it.
pub fn set_json_extra(key: &str, raw_json: String) {
    let mut extras = extras_registry().lock().expect("extras registry poisoned");
    match extras.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = raw_json,
        None => extras.push((key.to_string(), raw_json)),
    }
}

/// An opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One bench's measurements, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Bench id as passed to [`Criterion::bench_function`].
    pub name: String,
    /// Mean time per iteration (ns).
    pub mean_ns: f64,
    /// Median time per iteration (ns).
    pub median_ns: f64,
    /// Fastest sample (ns).
    pub min_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

/// The bench driver: configuration plus collected results.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the target number of samples per bench.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement-time budget per bench.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per bench.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one bench and records + prints its result.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            eprintln!("warning: bench `{id}` collected no samples");
            return self;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
        let median_ns = samples[samples.len() / 2];
        let result = BenchResult {
            name: id.to_string(),
            mean_ns,
            median_ns,
            min_ns: samples[0],
            samples: samples.len(),
        };
        println!(
            "{id:<44} time: [median {} mean {}] ({} samples)",
            fmt_ns(result.median_ns),
            fmt_ns(result.mean_ns),
            result.samples
        );
        self.results.push(result);
        self
    }

    /// The results collected so far.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        let Ok(path) = std::env::var("BENCH_OUTPUT_JSON") else {
            return;
        };
        if self.results.is_empty() {
            return;
        }
        let path = match std::env::current_dir() {
            Ok(cwd) => resolve_output_path(Path::new(&path), &cwd),
            Err(_) => PathBuf::from(&path),
        };
        let mut all = process_registry().lock().expect("registry poisoned");
        all.extend(self.results.drain(..));
        match write_json(&path, &all) {
            Ok(()) => println!("wrote {} bench results to {}", all.len(), path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}

/// Where a `BENCH_OUTPUT_JSON` value lands: absolute paths verbatim;
/// relative paths against the workspace root — the nearest ancestor of
/// `cwd` containing a `Cargo.lock` (cargo keeps one lockfile at the
/// workspace root, never in member packages) — falling back to `cwd`
/// when no lockfile is in sight (e.g. a bench binary invoked outside any
/// cargo project).
fn resolve_output_path(raw: &Path, cwd: &Path) -> PathBuf {
    if raw.is_absolute() {
        return raw.to_path_buf();
    }
    let mut dir = cwd;
    loop {
        if dir.join("Cargo.lock").is_file() {
            return dir.join(raw);
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return cwd.join(raw),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn write_json(path: &Path, results: &[BenchResult]) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let unix_secs = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"pbbf-bench-v1\",");
    let _ = writeln!(out, "  \"unix_time\": {unix_secs},");
    {
        let extras = extras_registry().lock().expect("extras registry poisoned");
        if !extras.is_empty() {
            let _ = writeln!(out, "  \"extras\": {{");
            for (i, (key, value)) in extras.iter().enumerate() {
                let comma = if i + 1 < extras.len() { "," } else { "" };
                let _ = writeln!(out, "    \"{}\": {value}{comma}", key.replace('"', "'"));
            }
            let _ = writeln!(out, "  }},");
        }
    }
    let _ = writeln!(out, "  \"benches\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \
             \"min_ns\": {:.1}, \"samples\": {}}}{comma}",
            r.name.replace('"', "'"),
            r.median_ns,
            r.mean_ns,
            r.min_ns,
            r.samples
        );
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Times one routine inside a bench function.
pub struct Bencher {
    samples: Vec<f64>,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly, timing each execution (batched when the
    /// routine is too fast to time individually).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Calibrate with a single call (also serves as minimal warm-up).
        let t0 = Instant::now();
        black_box(routine());
        let first = t0.elapsed();

        // Batch sub-10µs routines so timer overhead does not dominate.
        let batch = if first < Duration::from_micros(10) {
            let per_iter = first.as_nanos().max(1);
            ((10_000 / per_iter) as usize).clamp(1, 100_000)
        } else {
            1
        };

        let warm_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_end {
            black_box(routine());
        }

        let deadline = Instant::now() + self.measurement_time;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let per_iter_ns = start.elapsed().as_secs_f64() * 1e9 / batch as f64;
            self.samples.push(per_iter_ns);
            if self.samples.len() >= self.sample_size || Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Declares a bench group: a function running each target against one
/// configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_collects_samples_and_stats() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let r = &c.results()[0];
        assert_eq!(r.name, "spin");
        assert!(r.samples >= 1);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.mean_ns > 0.0);
        c.results.clear(); // avoid Drop writing when BENCH_OUTPUT_JSON is set
    }

    #[test]
    fn extras_are_emitted_as_a_json_section() {
        set_json_extra("unit_test_counters", "{\"hits\": 3, \"misses\": 1}".into());
        set_json_extra("unit_test_counters", "{\"hits\": 4, \"misses\": 1}".into());
        let tmp = std::env::temp_dir().join(format!(
            "pbbf-criterion-extras-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let results = [BenchResult {
            name: "k".into(),
            mean_ns: 1.0,
            median_ns: 1.0,
            min_ns: 1.0,
            samples: 1,
        }];
        write_json(&tmp, &results).unwrap();
        let text = std::fs::read_to_string(&tmp).unwrap();
        std::fs::remove_file(&tmp).ok();
        assert!(text.contains("\"extras\": {"), "{text}");
        // Last write wins for a re-set key.
        assert!(
            text.contains("\"unit_test_counters\": {\"hits\": 4, \"misses\": 1}"),
            "{text}"
        );
        assert!(text.contains("\"benches\": ["), "{text}");
    }

    /// Regression test for the PR-3 gotcha: cargo runs bench binaries in
    /// the package directory, so a relative `BENCH_OUTPUT_JSON` used to
    /// land in `crates/bench/` instead of the repo root. Relative paths
    /// must resolve against the workspace root (nearest ancestor with a
    /// `Cargo.lock`).
    #[test]
    fn output_path_resolves_against_workspace_root() {
        let tmp = std::env::temp_dir().join(format!(
            "pbbf-criterion-resolve-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let root = tmp.join("ws");
        let package = root.join("crates").join("bench");
        std::fs::create_dir_all(&package).unwrap();
        std::fs::write(root.join("Cargo.lock"), "").unwrap();

        // Relative path from a member package dir -> workspace root.
        assert_eq!(
            resolve_output_path(Path::new("BENCH_baseline.json"), &package),
            root.join("BENCH_baseline.json")
        );
        // Relative path from the root itself -> unchanged location.
        assert_eq!(
            resolve_output_path(Path::new("out.json"), &root),
            root.join("out.json")
        );
        // Relative components survive the re-anchoring.
        assert_eq!(
            resolve_output_path(Path::new("target/out.json"), &package),
            root.join("target/out.json")
        );
        // Absolute paths are taken verbatim.
        let abs = root.join("abs.json");
        assert_eq!(resolve_output_path(&abs, &package), abs);
        // No Cargo.lock anywhere above -> cwd-relative fallback.
        let bare = tmp.join("bare");
        std::fs::create_dir_all(&bare).unwrap();
        let resolved = resolve_output_path(Path::new("out.json"), &bare);
        // (The fallback walks to the filesystem root first; any stray
        // Cargo.lock in an ancestor of the temp dir would legitimately
        // capture it, so only assert the no-lockfile case when none is
        // present.)
        let ancestor_lock = bare.ancestors().any(|a| a.join("Cargo.lock").is_file());
        if !ancestor_lock {
            assert_eq!(resolved, bare.join("out.json"));
        }

        std::fs::remove_dir_all(&tmp).ok();
    }
}
