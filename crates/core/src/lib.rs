//! PBBF — Probability-Based Broadcast Forwarding.
//!
//! This crate is the reproduction of the primary contribution of
//! *"Exploring the Energy-Latency Trade-off for Broadcasts in Energy-Saving
//! Sensor Networks"* (Miller, Sengul, Gupta — ICDCS 2005): a MAC-layer
//! probabilistic broadcast forwarding scheme that can be layered onto any
//! sleep-scheduling protocol, plus the paper's closed-form analysis of the
//! energy–latency–reliability trade-off it exposes.
//!
//! # The protocol
//!
//! A sleep-scheduling MAC divides time into frames of length `T_frame`,
//! each with an active window of length `T_active` (in IEEE 802.11 PSM the
//! ATIM window) followed by a data phase in which nodes without announced
//! traffic sleep. PBBF adds two knobs ([`PbbfParams`]):
//!
//! * `p` — on receiving a broadcast, forward it **immediately** with
//!   probability `p` (reaching only currently-awake neighbors); otherwise
//!   announce it in the next active window so every neighbor wakes for it.
//! * `q` — at the end of each active window, stay awake through the data
//!   phase with probability `q` even with no announced traffic, to catch
//!   immediate broadcasts.
//!
//! [`PbbfEngine`] implements the paper's Figure-3 pseudo-code on top of any
//! RNG; [`DuplicateFilter`] implements the "drop duplicate broadcasts" rule
//! that makes each broadcast traverse a link at most once.
//!
//! # The analysis
//!
//! The [`analysis`] module implements Equations 3–12: relative energy
//! (Eqs. 3–8), expected per-hop latency (Eq. 9), the spanning-tree path
//! bound (Eq. 11), and the energy–latency trade-off (Eq. 12, with the sign
//! inconsistency of the printed equation corrected — see
//! [`analysis::energy_latency_tradeoff`]). The [`operating_point`] module
//! combines the analysis with the percolation boundary of
//! [`pbbf_percolation`] into the designer-facing API the paper's
//! conclusion describes: pick `(p, q)` just across the reliability
//! threshold, then tune along the boundary for the desired energy–latency
//! balance.
//!
//! # Examples
//!
//! ```
//! use pbbf_core::{PbbfEngine, PbbfParams, ForwardDecision, SleepSchedule};
//! use pbbf_des::SimRng;
//!
//! let params = PbbfParams::new(0.5, 0.25).unwrap();
//! let mut engine = PbbfEngine::new(params, SimRng::new(7));
//!
//! // Fig. 3, Receive-Broadcast: forward immediately with probability p.
//! let d = engine.on_receive_broadcast();
//! assert!(matches!(
//!     d,
//!     ForwardDecision::SendImmediately | ForwardDecision::EnqueueForNextActiveWindow
//! ));
//!
//! // Fig. 3, Sleep-Decision-Handler: pending traffic always keeps the
//! // radio on; otherwise stay awake with probability q.
//! assert!(engine.stay_on_after_active(true, false));
//!
//! // Eq. 8: energy grows linearly in q.
//! let sched = SleepSchedule::new(1.0, 10.0).unwrap();
//! let e = pbbf_core::analysis::energy_increase_factor(&sched, 0.25);
//! assert!((e - (1.0 + 0.25 * 9.0)).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod analysis;
mod engine;
mod error;
pub mod operating_point;
mod params;
mod seen;

pub use engine::{ForwardDecision, PbbfEngine};
pub use error::ParamError;
pub use params::{AnalysisParams, PbbfParams, PowerProfile, SleepSchedule};
pub use seen::DuplicateFilter;

/// Re-export of the reliability condition of Remark 1 (Section 4.1): the
/// probability that a PBBF link is open, `p_edge = 1 − p·(1 − q)`.
pub use pbbf_percolation::reliability_edge_probability;
