//! Designer-facing operating-point selection.
//!
//! The paper's conclusion describes the intended workflow: *"first set the
//! values of p and q so that they are just across the reliability
//! threshold boundary and into the high reliability region … then tune
//! these values (staying close to the boundary) until the desired
//! energy-latency trade-off is achieved."* This module packages that
//! workflow: estimate the reliability boundary by percolation, walk it,
//! and pick the point that fits an energy budget or a latency deadline.

use pbbf_topology::{NodeId, Topology};
use rand::RngCore;

use crate::analysis;
use crate::{AnalysisParams, PbbfParams};

/// A reliable `(p, q)` configuration together with its predicted cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// The protocol parameters, with `q` at the minimum reliable value for
    /// this `p` (nudged by the configured safety margin).
    pub params: PbbfParams,
    /// The critical edge probability the boundary was computed from.
    pub critical_edge_probability: f64,
    /// Expected one-link latency (Eq. 9), seconds.
    pub link_latency: f64,
    /// Relative energy consumption (Eq. 7), fraction of always-on.
    pub relative_energy: f64,
    /// Joules per update under the analysis power/traffic model.
    pub joules_per_update: f64,
}

/// The explored reliability boundary for one target reliability level.
///
/// # Examples
///
/// ```
/// use pbbf_core::operating_point::Frontier;
/// use pbbf_core::AnalysisParams;
/// use pbbf_des::SimRng;
/// use pbbf_topology::Grid;
///
/// let grid = Grid::square(20);
/// let mut rng = SimRng::new(1);
/// let frontier = Frontier::explore(
///     grid.topology(),
///     grid.center(),
///     &AnalysisParams::table1(),
///     0.99,
///     &[0.25, 0.5, 0.75, 1.0],
///     30,
///     0.02,
///     &mut rng,
/// );
/// // Spending more energy buys lower latency along the frontier.
/// let fast = frontier.fastest_within_energy(1.0).unwrap();
/// let frugal = frontier.cheapest_within_latency(f64::INFINITY).unwrap();
/// assert!(fast.link_latency <= frugal.link_latency + 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Frontier {
    /// The reliability level the boundary was computed for.
    pub target_reliability: f64,
    /// The estimated critical edge probability.
    pub critical_edge_probability: f64,
    /// Operating points in increasing-`p` order.
    pub points: Vec<OperatingPoint>,
}

impl Frontier {
    /// Estimates the reliability boundary on `topology` (Newman–Ziff with
    /// `runs` sweeps) and evaluates an operating point for each entry of
    /// `p_values`, adding `safety_margin` to each minimal `q` (clamped to
    /// 1) so deployments sit strictly inside the reliable region.
    ///
    /// # Panics
    ///
    /// Panics on invalid reliability/probability arguments (see
    /// [`pbbf_percolation::pq_boundary`]).
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn explore(
        topology: &Topology,
        source: NodeId,
        params: &AnalysisParams,
        target_reliability: f64,
        p_values: &[f64],
        runs: u32,
        safety_margin: f64,
        rng: &mut impl RngCore,
    ) -> Self {
        assert!(
            (0.0..=0.5).contains(&safety_margin),
            "unreasonable safety margin {safety_margin}"
        );
        let (critical, boundary) = pbbf_percolation::pq_boundary(
            topology,
            source,
            target_reliability,
            p_values,
            runs,
            rng,
        );
        let points = boundary
            .into_iter()
            .map(|(p, q_min)| {
                let q = (q_min + safety_margin).min(1.0);
                let pbbf = PbbfParams::new(p, q).expect("boundary p, q in range");
                OperatingPoint {
                    params: pbbf,
                    critical_edge_probability: critical,
                    link_latency: analysis::expected_link_latency(p, q, params.l1, params.l2()),
                    relative_energy: analysis::relative_energy_pbbf(&params.schedule, q),
                    joules_per_update: analysis::joules_per_update(params, q),
                }
            })
            .collect();
        Self {
            target_reliability,
            critical_edge_probability: critical,
            points,
        }
    }

    /// The lowest-latency point whose relative energy does not exceed
    /// `max_relative_energy`, or `None` if the budget excludes every point.
    #[must_use]
    pub fn fastest_within_energy(&self, max_relative_energy: f64) -> Option<&OperatingPoint> {
        self.points
            .iter()
            .filter(|pt| pt.relative_energy <= max_relative_energy)
            .min_by(|a, b| a.link_latency.total_cmp(&b.link_latency))
    }

    /// The lowest-energy point whose link latency does not exceed
    /// `max_link_latency`, or `None` if the deadline excludes every point.
    #[must_use]
    pub fn cheapest_within_latency(&self, max_link_latency: f64) -> Option<&OperatingPoint> {
        self.points
            .iter()
            .filter(|pt| pt.link_latency <= max_link_latency)
            .min_by(|a, b| a.relative_energy.total_cmp(&b.relative_energy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbbf_des::SimRng;
    use pbbf_topology::Grid;

    fn frontier(margin: f64) -> Frontier {
        let grid = Grid::square(20);
        let mut rng = SimRng::new(77);
        Frontier::explore(
            grid.topology(),
            grid.center(),
            &AnalysisParams::table1(),
            0.99,
            &[0.05, 0.25, 0.5, 0.75, 1.0],
            30,
            margin,
            &mut rng,
        )
    }

    #[test]
    fn frontier_points_are_reliable_by_construction() {
        let f = frontier(0.0);
        for pt in &f.points {
            assert!(
                pt.params.edge_probability() >= f.critical_edge_probability - 1e-9,
                "point {:?} below threshold",
                pt.params
            );
        }
    }

    #[test]
    fn frontier_is_ordered_inverse_tradeoff() {
        let f = frontier(0.0);
        for w in f.points.windows(2) {
            assert!(w[1].link_latency <= w[0].link_latency + 1e-9);
            assert!(w[1].relative_energy >= w[0].relative_energy - 1e-12);
        }
    }

    #[test]
    fn safety_margin_raises_q() {
        let f0 = frontier(0.0);
        let f5 = frontier(0.05);
        for (a, b) in f0.points.iter().zip(&f5.points) {
            assert!(b.params.q() >= a.params.q());
        }
    }

    #[test]
    fn selection_by_energy_budget() {
        let f = frontier(0.0);
        // The duty cycle is 0.1; a tight budget forces low q -> high latency.
        let frugal = f.fastest_within_energy(0.2).unwrap();
        let lavish = f.fastest_within_energy(1.0).unwrap();
        assert!(frugal.link_latency >= lavish.link_latency);
        assert!(f.fastest_within_energy(0.0).is_none());
    }

    #[test]
    fn selection_by_latency_deadline() {
        let f = frontier(0.0);
        let relaxed = f.cheapest_within_latency(f64::INFINITY).unwrap();
        let tight = f.cheapest_within_latency(relaxed.link_latency / 2.0);
        if let Some(t) = tight {
            assert!(t.relative_energy >= relaxed.relative_energy);
        }
        assert!(f.cheapest_within_latency(0.0).is_none());
    }
}
