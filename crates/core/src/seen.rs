//! Duplicate-broadcast suppression.
//!
//! "Nodes drop a broadcast packet if they receive a duplicate" —
//! Section 4.1. This is what makes PBBF a *bond* percolation process
//! (each link conducts a given broadcast at most once) and what builds the
//! uniform spanning tree of Section 4.3. [`DuplicateFilter`] is that rule,
//! with an optional capacity bound so long-running nodes do not grow
//! without limit (the code-distribution application's update ids increase
//! monotonically, so evicting the oldest ids is safe).

use std::collections::{HashSet, VecDeque};

/// Remembers which broadcast identifiers a node has already accepted.
///
/// # Examples
///
/// ```
/// use pbbf_core::DuplicateFilter;
///
/// let mut seen = DuplicateFilter::unbounded();
/// assert!(seen.first_sighting(7)); // fresh: accept and forward
/// assert!(!seen.first_sighting(7)); // duplicate: drop
/// ```
#[derive(Debug, Clone, Default)]
pub struct DuplicateFilter {
    seen: HashSet<u64>,
    order: VecDeque<u64>,
    capacity: Option<usize>,
}

impl DuplicateFilter {
    /// A filter that remembers every id forever.
    #[must_use]
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A filter that remembers at most `capacity` ids, evicting the oldest.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            seen: HashSet::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
            capacity: Some(capacity),
        }
    }

    /// Records `id`; returns `true` exactly when this is its first
    /// sighting (i.e. the packet should be processed, not dropped).
    pub fn first_sighting(&mut self, id: u64) -> bool {
        if !self.seen.insert(id) {
            return false;
        }
        self.order.push_back(id);
        if let Some(cap) = self.capacity {
            while self.order.len() > cap {
                let evicted = self.order.pop_front().expect("order non-empty");
                self.seen.remove(&evicted);
            }
        }
        true
    }

    /// Whether `id` has been sighted (and not evicted).
    #[must_use]
    pub fn contains(&self, id: u64) -> bool {
        self.seen.contains(&id)
    }

    /// Number of remembered ids.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether no ids are remembered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Forgets everything.
    pub fn clear(&mut self) {
        self.seen.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sighting_then_duplicates() {
        let mut f = DuplicateFilter::unbounded();
        assert!(f.first_sighting(1));
        assert!(f.first_sighting(2));
        assert!(!f.first_sighting(1));
        assert!(!f.first_sighting(2));
        assert_eq!(f.len(), 2);
        assert!(f.contains(1));
        assert!(!f.contains(3));
    }

    #[test]
    fn bounded_filter_evicts_oldest() {
        let mut f = DuplicateFilter::with_capacity(2);
        assert!(f.first_sighting(1));
        assert!(f.first_sighting(2));
        assert!(f.first_sighting(3)); // evicts 1
        assert_eq!(f.len(), 2);
        assert!(!f.contains(1));
        assert!(f.contains(2));
        assert!(f.contains(3));
        // Evicted ids are treated as fresh again.
        assert!(f.first_sighting(1));
    }

    #[test]
    fn clear_forgets() {
        let mut f = DuplicateFilter::unbounded();
        f.first_sighting(9);
        f.clear();
        assert!(f.is_empty());
        assert!(f.first_sighting(9));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = DuplicateFilter::with_capacity(0);
    }
}
