//! Protocol, schedule and analysis parameters (Tables 1 of the paper).

use serde::{Deserialize, Serialize};

use crate::error::{check_duration, check_probability};
use crate::ParamError;

/// The two PBBF knobs.
///
/// `p` trades latency against reliability (immediate rebroadcasts skip the
/// sleep-induced wait but reach only awake neighbors); `q` trades energy
/// against reliability (staying awake catches immediate broadcasts but
/// burns idle power). The underlying sleep-scheduling protocol is the
/// special case [`PbbfParams::PSM`], and always-on operation is
/// approximated by [`PbbfParams::ALWAYS_ON`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PbbfParams {
    p: f64,
    q: f64,
}

impl PbbfParams {
    /// Plain sleep scheduling: never forward immediately, never stay awake
    /// (`p = 0, q = 0`).
    pub const PSM: PbbfParams = PbbfParams { p: 0.0, q: 0.0 };

    /// Approximation of no power saving (`p = 1, q = 1`). Still pays the
    /// active-window and beacon overhead of the underlying protocol, as the
    /// paper notes in Section 3.
    pub const ALWAYS_ON: PbbfParams = PbbfParams { p: 1.0, q: 1.0 };

    /// Validates and creates a parameter pair.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError::ProbabilityOutOfRange`] if either probability
    /// is outside `[0, 1]` or NaN.
    pub fn new(p: f64, q: f64) -> Result<Self, ParamError> {
        Ok(Self {
            p: check_probability("p", p)?,
            q: check_probability("q", q)?,
        })
    }

    /// Probability of forwarding a received broadcast immediately.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability of staying awake through a data phase with no announced
    /// traffic.
    #[must_use]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Returns a copy with a different `q` (used when sweeping `q` along
    /// the x-axis of most of the paper's figures).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError::ProbabilityOutOfRange`] on invalid `q`.
    pub fn with_q(&self, q: f64) -> Result<Self, ParamError> {
        Self::new(self.p, q)
    }

    /// The link-open probability `p_edge = 1 − p·(1 − q)` of Remark 1.
    #[must_use]
    pub fn edge_probability(&self) -> f64 {
        1.0 - self.p * (1.0 - self.q)
    }
}

/// An active/sleep frame schedule: `T_active` seconds awake at the start of
/// every `T_frame`-second frame (Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SleepSchedule {
    t_active: f64,
    t_frame: f64,
}

impl SleepSchedule {
    /// Validates and creates a schedule.
    ///
    /// # Errors
    ///
    /// Returns an error if either duration is non-positive/non-finite or
    /// the active window exceeds the frame.
    pub fn new(t_active: f64, t_frame: f64) -> Result<Self, ParamError> {
        let t_active = check_duration("t_active", t_active)?;
        let t_frame = check_duration("t_frame", t_frame)?;
        if t_active > t_frame {
            return Err(ParamError::ActiveExceedsFrame { t_active, t_frame });
        }
        Ok(Self { t_active, t_frame })
    }

    /// Active-window length `T_active` (s).
    #[must_use]
    pub fn t_active(&self) -> f64 {
        self.t_active
    }

    /// Frame length `T_frame` (s).
    #[must_use]
    pub fn t_frame(&self) -> f64 {
        self.t_frame
    }

    /// Sleep-phase length `T_sleep = T_frame − T_active` (Eq. 4).
    #[must_use]
    pub fn t_sleep(&self) -> f64 {
        self.t_frame - self.t_active
    }

    /// The fraction of time a plain-PSM node is awake, `T_active/T_frame`
    /// (Eq. 3).
    #[must_use]
    pub fn duty_cycle(&self) -> f64 {
        self.t_active / self.t_frame
    }
}

/// Radio power draw in each state, in watts (Table 1; Mica2 Motes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    /// Transmit power draw `P_TX` (W).
    pub tx: f64,
    /// Receive/idle power draw `P_I` (W).
    pub idle: f64,
    /// Sleep power draw `P_S` (W).
    pub sleep: f64,
}

impl PowerProfile {
    /// The Mica2 Mote numbers of Table 1: 81 mW transmit, 30 mW
    /// receive/idle, 3 µW sleep.
    pub const MICA2: PowerProfile = PowerProfile {
        tx: 0.081,
        idle: 0.030,
        sleep: 0.000_003,
    };
}

impl Default for PowerProfile {
    fn default() -> Self {
        Self::MICA2
    }
}

/// The full Table-1 parameter set driving the Section-4 analysis and the
/// idealized simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalysisParams {
    /// Grid side; the network is `grid_side × grid_side` nodes (75 ⇒ 5625).
    pub grid_side: u32,
    /// Radio power profile.
    pub power: PowerProfile,
    /// Source update rate λ (updates per second).
    pub lambda: f64,
    /// Time to transmit a data packet immediately, `L1` (s). The paper uses
    /// ≈1.5 s based on empirical channel-access times in its ns-2 runs.
    pub l1: f64,
    /// The active/sleep schedule (`T_active = 1 s`, `T_frame = 10 s`).
    pub schedule: SleepSchedule,
}

impl AnalysisParams {
    /// The exact Table-1 values.
    #[must_use]
    pub fn table1() -> Self {
        Self {
            grid_side: 75,
            power: PowerProfile::MICA2,
            lambda: 0.01,
            l1: 1.5,
            schedule: SleepSchedule::new(1.0, 10.0).expect("Table 1 schedule is valid"),
        }
    }

    /// Number of nodes `N = grid_side²`.
    #[must_use]
    pub fn node_count(&self) -> u32 {
        self.grid_side * self.grid_side
    }

    /// The wake-all latency `L2`: the expected extra time a *normal*
    /// broadcast waits so that every neighbor is awake to receive it.
    ///
    /// A packet that finished arriving at a uniformly random instant of the
    /// frame waits for the start of the next frame (on average
    /// `T_frame / 2`) plus the next active window in which it is announced
    /// (`T_active`), after which the data is sent. The paper treats `L2` as
    /// "determined by how the sleep scheduling mechanism handles broadcast";
    /// for IEEE 802.11 PSM this expectation is `T_frame/2 + T_active`.
    #[must_use]
    pub fn l2(&self) -> f64 {
        self.schedule.t_frame() / 2.0 + self.schedule.t_active()
    }
}

impl Default for AnalysisParams {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pbbf_params_validate() {
        assert!(PbbfParams::new(0.5, 0.25).is_ok());
        assert!(PbbfParams::new(-0.1, 0.5).is_err());
        assert!(PbbfParams::new(0.5, 1.5).is_err());
        assert!(PbbfParams::new(f64::NAN, 0.5).is_err());
    }

    #[test]
    fn special_points() {
        assert_eq!(PbbfParams::PSM.p(), 0.0);
        assert_eq!(PbbfParams::PSM.q(), 0.0);
        assert_eq!(PbbfParams::ALWAYS_ON.p(), 1.0);
        assert_eq!(PbbfParams::ALWAYS_ON.q(), 1.0);
        // PSM never loses an edge; always-on never loses an edge.
        assert_eq!(PbbfParams::PSM.edge_probability(), 1.0);
        assert_eq!(PbbfParams::ALWAYS_ON.edge_probability(), 1.0);
    }

    #[test]
    fn edge_probability_matches_formula() {
        let params = PbbfParams::new(0.5, 0.25).unwrap();
        assert!((params.edge_probability() - (1.0 - 0.5 * 0.75)).abs() < 1e-15);
    }

    #[test]
    fn with_q_replaces_only_q() {
        let params = PbbfParams::new(0.75, 0.0).unwrap();
        let new = params.with_q(0.6).unwrap();
        assert_eq!(new.p(), 0.75);
        assert_eq!(new.q(), 0.6);
        assert!(params.with_q(2.0).is_err());
    }

    #[test]
    fn schedule_derives_sleep_and_duty_cycle() {
        let s = SleepSchedule::new(1.0, 10.0).unwrap();
        assert_eq!(s.t_sleep(), 9.0);
        assert_eq!(s.duty_cycle(), 0.1);
    }

    #[test]
    fn schedule_rejects_bad_durations() {
        assert!(SleepSchedule::new(0.0, 10.0).is_err());
        assert!(SleepSchedule::new(1.0, 0.0).is_err());
        assert!(SleepSchedule::new(11.0, 10.0).is_err());
        // Active == frame is legal: a degenerate always-active schedule.
        assert!(SleepSchedule::new(10.0, 10.0).is_ok());
    }

    #[test]
    fn table1_values() {
        let a = AnalysisParams::table1();
        assert_eq!(a.node_count(), 5625);
        assert_eq!(a.power.tx, 0.081);
        assert_eq!(a.power.idle, 0.030);
        assert_eq!(a.power.sleep, 3e-6);
        assert_eq!(a.lambda, 0.01);
        assert_eq!(a.l1, 1.5);
        assert_eq!(a.schedule.t_active(), 1.0);
        assert_eq!(a.schedule.t_frame(), 10.0);
        // L2 = Tframe/2 + Tactive = 6 s for Table 1.
        assert_eq!(a.l2(), 6.0);
    }

    #[test]
    fn serde_round_trip() {
        let a = AnalysisParams::table1();
        let json = serde_json::to_string(&a).unwrap();
        let back: AnalysisParams = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
