//! The Figure-3 decision engine.
//!
//! The paper specifies PBBF as two small changes to any sleep-scheduling
//! protocol (its Figure 3):
//!
//! ```text
//! Sleep-Decision-Handler()            — at the end of active time
//!     if DataToSend or DataToRecv: stay on
//!     else if Uniform-Rand(0,1) < q:  stay on
//!     else:                           sleep
//!
//! Receive-Broadcast(pkt)              — on broadcast reception
//!     if Uniform-Rand(0,1) < p: Send(pkt)           (immediate)
//!     else: Enqueue(nextPktQueue, pkt)              (announce next window)
//! ```
//!
//! [`PbbfEngine`] encapsulates exactly those coin flips so that both
//! simulators (and any real MAC integration) share one implementation.

use rand::RngCore;

use crate::PbbfParams;

/// The outcome of `Receive-Broadcast`: what to do with a freshly received
/// (non-duplicate) broadcast packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardDecision {
    /// Rebroadcast now, without announcing; only awake neighbors receive.
    SendImmediately,
    /// Queue for the next active window, announce (e.g. via ATIM), and send
    /// with every neighbor guaranteed awake.
    EnqueueForNextActiveWindow,
}

/// PBBF's probabilistic decisions, bound to a parameter pair and an RNG.
///
/// Generic over [`rand::RngCore`] so simulators can hand every node its own
/// deterministic substream.
///
/// # Examples
///
/// ```
/// use pbbf_core::{ForwardDecision, PbbfEngine, PbbfParams};
/// use pbbf_des::SimRng;
///
/// // Pure PSM: never immediate, never stays awake.
/// let mut psm = PbbfEngine::new(PbbfParams::PSM, SimRng::new(1));
/// assert_eq!(psm.on_receive_broadcast(), ForwardDecision::EnqueueForNextActiveWindow);
/// assert!(!psm.stay_on_after_active(false, false));
///
/// // Pending traffic always wins over the q coin.
/// assert!(psm.stay_on_after_active(true, false));
/// assert!(psm.stay_on_after_active(false, true));
/// ```
#[derive(Debug, Clone)]
pub struct PbbfEngine<R> {
    params: PbbfParams,
    rng: R,
}

impl<R: RngCore> PbbfEngine<R> {
    /// Creates an engine with the given parameters and RNG.
    #[must_use]
    pub fn new(params: PbbfParams, rng: R) -> Self {
        Self { params, rng }
    }

    /// The configured parameters.
    #[must_use]
    pub fn params(&self) -> PbbfParams {
        self.params
    }

    /// Replaces the parameters (e.g. for the adaptive extensions sketched
    /// in the paper's future work).
    pub fn set_params(&mut self, params: PbbfParams) {
        self.params = params;
    }

    /// `Receive-Broadcast` (Fig. 3): decide the fate of a fresh broadcast.
    pub fn on_receive_broadcast(&mut self) -> ForwardDecision {
        if self.chance(self.params.p()) {
            ForwardDecision::SendImmediately
        } else {
            ForwardDecision::EnqueueForNextActiveWindow
        }
    }

    /// `Sleep-Decision-Handler` (Fig. 3): called at the end of the active
    /// window; returns `true` if the node should stay on through the data
    /// phase.
    ///
    /// Pending traffic (`data_to_send` — e.g. a queued or announced packet;
    /// `data_to_recv` — e.g. an ATIM received in the window) forces the
    /// radio on deterministically; only otherwise is the `q` coin tossed.
    #[inline]
    pub fn stay_on_after_active(&mut self, data_to_send: bool, data_to_recv: bool) -> bool {
        if data_to_send || data_to_recv {
            return true;
        }
        self.chance(self.params.q())
    }

    /// Bernoulli draw with exact 0/1 edge cases (PSM and always-on must be
    /// deterministic, not "almost surely").
    #[inline]
    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let u = (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbbf_des::SimRng;

    fn engine(p: f64, q: f64, seed: u64) -> PbbfEngine<SimRng> {
        PbbfEngine::new(PbbfParams::new(p, q).unwrap(), SimRng::new(seed))
    }

    #[test]
    fn psm_is_deterministic() {
        let mut e = engine(0.0, 0.0, 1);
        for _ in 0..1000 {
            assert_eq!(
                e.on_receive_broadcast(),
                ForwardDecision::EnqueueForNextActiveWindow
            );
            assert!(!e.stay_on_after_active(false, false));
        }
    }

    #[test]
    fn always_on_is_deterministic() {
        let mut e = engine(1.0, 1.0, 2);
        for _ in 0..1000 {
            assert_eq!(e.on_receive_broadcast(), ForwardDecision::SendImmediately);
            assert!(e.stay_on_after_active(false, false));
        }
    }

    #[test]
    fn pending_traffic_overrides_q() {
        let mut e = engine(0.5, 0.0, 3);
        for _ in 0..100 {
            assert!(e.stay_on_after_active(true, false));
            assert!(e.stay_on_after_active(false, true));
            assert!(e.stay_on_after_active(true, true));
            assert!(!e.stay_on_after_active(false, false), "q = 0 must sleep");
        }
    }

    #[test]
    fn immediate_frequency_tracks_p() {
        let mut e = engine(0.25, 0.0, 4);
        let n = 100_000;
        let imm = (0..n)
            .filter(|_| e.on_receive_broadcast() == ForwardDecision::SendImmediately)
            .count();
        let freq = imm as f64 / n as f64;
        assert!((freq - 0.25).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn stay_on_frequency_tracks_q() {
        let mut e = engine(0.0, 0.7, 5);
        let n = 100_000;
        let on = (0..n)
            .filter(|_| e.stay_on_after_active(false, false))
            .count();
        let freq = on as f64 / n as f64;
        assert!((freq - 0.7).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn same_seed_same_decisions() {
        let mut a = engine(0.5, 0.5, 42);
        let mut b = engine(0.5, 0.5, 42);
        for _ in 0..1000 {
            assert_eq!(a.on_receive_broadcast(), b.on_receive_broadcast());
            assert_eq!(
                a.stay_on_after_active(false, false),
                b.stay_on_after_active(false, false)
            );
        }
    }

    #[test]
    fn set_params_switches_behavior() {
        let mut e = engine(0.0, 0.0, 6);
        assert_eq!(
            e.on_receive_broadcast(),
            ForwardDecision::EnqueueForNextActiveWindow
        );
        e.set_params(PbbfParams::ALWAYS_ON);
        assert_eq!(e.on_receive_broadcast(), ForwardDecision::SendImmediately);
        assert_eq!(e.params(), PbbfParams::ALWAYS_ON);
    }
}
