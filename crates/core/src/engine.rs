//! The Figure-3 decision engine.
//!
//! The paper specifies PBBF as two small changes to any sleep-scheduling
//! protocol (its Figure 3):
//!
//! ```text
//! Sleep-Decision-Handler()            — at the end of active time
//!     if DataToSend or DataToRecv: stay on
//!     else if Uniform-Rand(0,1) < q:  stay on
//!     else:                           sleep
//!
//! Receive-Broadcast(pkt)              — on broadcast reception
//!     if Uniform-Rand(0,1) < p: Send(pkt)           (immediate)
//!     else: Enqueue(nextPktQueue, pkt)              (announce next window)
//! ```
//!
//! [`PbbfEngine`] encapsulates exactly those coin flips so that both
//! simulators (and any real MAC integration) share one implementation.

use rand::distributions::{Distribution, Geometric};
use rand::RngCore;

use crate::PbbfParams;

/// The outcome of `Receive-Broadcast`: what to do with a freshly received
/// (non-duplicate) broadcast packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardDecision {
    /// Rebroadcast now, without announcing; only awake neighbors receive.
    SendImmediately,
    /// Queue for the next active window, announce (e.g. via ATIM), and send
    /// with every neighbor guaranteed awake.
    EnqueueForNextActiveWindow,
}

/// PBBF's probabilistic decisions, bound to a parameter pair and an RNG.
///
/// Generic over [`rand::RngCore`] so simulators can hand every node its own
/// deterministic substream.
///
/// # Examples
///
/// ```
/// use pbbf_core::{ForwardDecision, PbbfEngine, PbbfParams};
/// use pbbf_des::SimRng;
///
/// // Pure PSM: never immediate, never stays awake.
/// let mut psm = PbbfEngine::new(PbbfParams::PSM, SimRng::new(1));
/// assert_eq!(psm.on_receive_broadcast(), ForwardDecision::EnqueueForNextActiveWindow);
/// assert!(!psm.stay_on_after_active(false, false));
///
/// // Pending traffic always wins over the q coin.
/// assert!(psm.stay_on_after_active(true, false));
/// assert!(psm.stay_on_after_active(false, true));
/// ```
#[derive(Debug, Clone)]
pub struct PbbfEngine<R> {
    params: PbbfParams,
    /// Cached run-length sampler for the `q` coin, used by
    /// [`PbbfEngine::sleep_run`]. `None` at the exact `q = 0` / `q = 1`
    /// endpoints, where the decision is deterministic and draw-free.
    sleep_geo: Option<Geometric>,
    rng: R,
}

fn sleep_sampler(params: PbbfParams) -> Option<Geometric> {
    let q = params.q();
    (q > 0.0 && q < 1.0).then(|| Geometric::new(q).expect("q in (0, 1) is a valid probability"))
}

impl<R: RngCore> PbbfEngine<R> {
    /// Creates an engine with the given parameters and RNG.
    #[must_use]
    pub fn new(params: PbbfParams, rng: R) -> Self {
        Self {
            params,
            sleep_geo: sleep_sampler(params),
            rng,
        }
    }

    /// The configured parameters.
    #[must_use]
    pub fn params(&self) -> PbbfParams {
        self.params
    }

    /// Replaces the parameters (e.g. for the adaptive extensions sketched
    /// in the paper's future work).
    pub fn set_params(&mut self, params: PbbfParams) {
        self.params = params;
        self.sleep_geo = sleep_sampler(params);
    }

    /// `Receive-Broadcast` (Fig. 3): decide the fate of a fresh broadcast.
    pub fn on_receive_broadcast(&mut self) -> ForwardDecision {
        if self.chance(self.params.p()) {
            ForwardDecision::SendImmediately
        } else {
            ForwardDecision::EnqueueForNextActiveWindow
        }
    }

    /// `Sleep-Decision-Handler` (Fig. 3): called at the end of the active
    /// window; returns `true` if the node should stay on through the data
    /// phase.
    ///
    /// Pending traffic (`data_to_send` — e.g. a queued or announced packet;
    /// `data_to_recv` — e.g. an ATIM received in the window) forces the
    /// radio on deterministically; only otherwise is the `q` coin tossed.
    #[inline]
    pub fn stay_on_after_active(&mut self, data_to_send: bool, data_to_recv: bool) -> bool {
        if data_to_send || data_to_recv {
            return true;
        }
        self.chance(self.params.q())
    }

    /// Batched `Sleep-Decision-Handler` for an idle stretch: samples the
    /// length of the next run of "sleep" outcomes of the `q` coin,
    /// capped at `max` trials.
    ///
    /// Returns `r ≤ max`: trials `0..r` sleep, and — when `r < max` —
    /// trial `r` stays awake. A return of exactly `max` means every
    /// trial in the window slept; nothing is implied about trial `max`,
    /// which was never sampled, and because Bernoulli trials are
    /// memoryless the next call resumes the sequence with the correct
    /// conditional distribution.
    ///
    /// Distributionally identical to `max` independent
    /// [`PbbfEngine::stay_on_after_active`]`(false, false)` calls, but
    /// consumes one RNG draw per *run* instead of one per trial — the
    /// relaxed stream-layout contract of the geometric-skip boundary
    /// engine in `pbbf-net-sim`. The `q = 0` / `q = 1` endpoints stay
    /// exact and draw-free, mirroring [`PbbfEngine::chance`]'s edge
    /// cases (pure PSM must sleep with certainty, not almost surely).
    #[inline]
    pub fn sleep_run(&mut self, max: u32) -> u32 {
        match &self.sleep_geo {
            None => {
                if self.params.q() >= 1.0 {
                    0
                } else {
                    max
                }
            }
            Some(geo) => {
                if max == 0 {
                    return 0;
                }
                let run = geo.sample(&mut self.rng);
                u32::try_from(run).map_or(max, |r| r.min(max))
            }
        }
    }

    /// Bernoulli draw with exact 0/1 edge cases (PSM and always-on must be
    /// deterministic, not "almost surely").
    #[inline]
    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let u = (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbbf_des::SimRng;

    fn engine(p: f64, q: f64, seed: u64) -> PbbfEngine<SimRng> {
        PbbfEngine::new(PbbfParams::new(p, q).unwrap(), SimRng::new(seed))
    }

    #[test]
    fn psm_is_deterministic() {
        let mut e = engine(0.0, 0.0, 1);
        for _ in 0..1000 {
            assert_eq!(
                e.on_receive_broadcast(),
                ForwardDecision::EnqueueForNextActiveWindow
            );
            assert!(!e.stay_on_after_active(false, false));
        }
    }

    #[test]
    fn always_on_is_deterministic() {
        let mut e = engine(1.0, 1.0, 2);
        for _ in 0..1000 {
            assert_eq!(e.on_receive_broadcast(), ForwardDecision::SendImmediately);
            assert!(e.stay_on_after_active(false, false));
        }
    }

    #[test]
    fn pending_traffic_overrides_q() {
        let mut e = engine(0.5, 0.0, 3);
        for _ in 0..100 {
            assert!(e.stay_on_after_active(true, false));
            assert!(e.stay_on_after_active(false, true));
            assert!(e.stay_on_after_active(true, true));
            assert!(!e.stay_on_after_active(false, false), "q = 0 must sleep");
        }
    }

    #[test]
    fn immediate_frequency_tracks_p() {
        let mut e = engine(0.25, 0.0, 4);
        let n = 100_000;
        let imm = (0..n)
            .filter(|_| e.on_receive_broadcast() == ForwardDecision::SendImmediately)
            .count();
        let freq = imm as f64 / n as f64;
        assert!((freq - 0.25).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn stay_on_frequency_tracks_q() {
        let mut e = engine(0.0, 0.7, 5);
        let n = 100_000;
        let on = (0..n)
            .filter(|_| e.stay_on_after_active(false, false))
            .count();
        let freq = on as f64 / n as f64;
        assert!((freq - 0.7).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn same_seed_same_decisions() {
        let mut a = engine(0.5, 0.5, 42);
        let mut b = engine(0.5, 0.5, 42);
        for _ in 0..1000 {
            assert_eq!(a.on_receive_broadcast(), b.on_receive_broadcast());
            assert_eq!(
                a.stay_on_after_active(false, false),
                b.stay_on_after_active(false, false)
            );
        }
    }

    #[test]
    fn sleep_run_endpoints_are_exact_and_draw_free() {
        // q = 0 sleeps forever; q = 1 never sleeps — and neither touches
        // the RNG, exactly like the dense path's `chance` edge cases.
        let mut never = engine(0.5, 0.0, 7);
        let mut always = engine(0.5, 1.0, 7);
        for _ in 0..100 {
            assert_eq!(never.sleep_run(60), 60);
            assert_eq!(always.sleep_run(60), 0);
        }
        // The p stream was not perturbed: both engines still agree with a
        // fresh engine that made no sleep_run calls at all.
        let mut fresh = engine(0.5, 0.0, 7);
        for _ in 0..100 {
            assert_eq!(never.on_receive_broadcast(), fresh.on_receive_broadcast());
        }
        let mut fresh = engine(0.5, 1.0, 7);
        for _ in 0..100 {
            assert_eq!(always.on_receive_broadcast(), fresh.on_receive_broadcast());
        }
    }

    #[test]
    fn sleep_run_respects_cap_and_zero_window() {
        let mut e = engine(0.0, 0.05, 8);
        for _ in 0..1000 {
            assert!(e.sleep_run(10) <= 10);
        }
        // An empty window samples nothing (and consumes nothing).
        let mut a = engine(0.0, 0.5, 9);
        let mut b = engine(0.0, 0.5, 9);
        for _ in 0..50 {
            assert_eq!(a.sleep_run(0), 0);
        }
        for _ in 0..50 {
            assert_eq!(a.sleep_run(4), b.sleep_run(4));
        }
    }

    #[test]
    fn sleep_run_matches_bernoulli_distribution() {
        // The run-length frequencies must match the dense coin's: compare
        // empirical "stay awake within w trials" probabilities against
        // 1 - (1-q)^w, and the mean run length against (1-q)/q (censored
        // at the cap).
        for (q, seed) in [(0.05, 10u64), (0.5, 11), (0.9, 12)] {
            let mut e = engine(0.0, q, seed);
            let n = 100_000u32;
            let cap = 64;
            let mut sum = 0.0;
            let mut hit_cap = 0u32;
            for _ in 0..n {
                let r = e.sleep_run(cap);
                sum += f64::from(r);
                if r == cap {
                    hit_cap += 1;
                }
            }
            let censored_mean = {
                // E[min(X, cap)] = sum_{j=1..cap} (1-q)^j
                let mut m = 0.0;
                let mut t = 1.0;
                for _ in 0..cap {
                    t *= 1.0 - q;
                    m += t;
                }
                m
            };
            let mean = sum / f64::from(n);
            assert!(
                (mean - censored_mean).abs() < 0.05 * censored_mean.max(0.2),
                "q = {q}: mean {mean} vs {censored_mean}"
            );
            let p_cap = f64::from(hit_cap) / f64::from(n);
            let expect_cap = (1.0 - q).powi(64);
            assert!(
                (p_cap - expect_cap).abs() < 0.01,
                "q = {q}: cap rate {p_cap} vs {expect_cap}"
            );
        }
    }

    #[test]
    fn set_params_refreshes_sleep_sampler() {
        let mut e = engine(0.0, 0.5, 13);
        assert!(e.sleep_run(1000) < 1000, "q = 0.5 stays awake quickly");
        e.set_params(PbbfParams::new(0.0, 0.0).unwrap());
        assert_eq!(e.sleep_run(1000), 1000, "q = 0 never stays awake");
        e.set_params(PbbfParams::new(0.0, 1.0).unwrap());
        assert_eq!(e.sleep_run(1000), 0, "q = 1 always stays awake");
    }

    #[test]
    fn set_params_switches_behavior() {
        let mut e = engine(0.0, 0.0, 6);
        assert_eq!(
            e.on_receive_broadcast(),
            ForwardDecision::EnqueueForNextActiveWindow
        );
        e.set_params(PbbfParams::ALWAYS_ON);
        assert_eq!(e.on_receive_broadcast(), ForwardDecision::SendImmediately);
        assert_eq!(e.params(), PbbfParams::ALWAYS_ON);
    }
}
