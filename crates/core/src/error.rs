//! Parameter validation errors.

use std::fmt;

/// An invalid protocol or schedule parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// A probability fell outside `[0, 1]` (or was NaN).
    ProbabilityOutOfRange {
        /// Which parameter was invalid (`"p"`, `"q"`, …).
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A duration was non-positive or non-finite.
    NonPositiveDuration {
        /// Which parameter was invalid.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The active time did not fit within the frame.
    ActiveExceedsFrame {
        /// Active-window length (s).
        t_active: f64,
        /// Frame length (s).
        t_frame: f64,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::ProbabilityOutOfRange { name, value } => {
                write!(f, "probability `{name}` = {value} outside [0, 1]")
            }
            ParamError::NonPositiveDuration { name, value } => {
                write!(f, "duration `{name}` = {value} must be positive and finite")
            }
            ParamError::ActiveExceedsFrame { t_active, t_frame } => {
                write!(
                    f,
                    "active time {t_active} s does not fit in frame {t_frame} s"
                )
            }
        }
    }
}

impl std::error::Error for ParamError {}

pub(crate) fn check_probability(name: &'static str, value: f64) -> Result<f64, ParamError> {
    if value.is_nan() || !(0.0..=1.0).contains(&value) {
        Err(ParamError::ProbabilityOutOfRange { name, value })
    } else {
        Ok(value)
    }
}

pub(crate) fn check_duration(name: &'static str, value: f64) -> Result<f64, ParamError> {
    if !value.is_finite() || value <= 0.0 {
        Err(ParamError::NonPositiveDuration { name, value })
    } else {
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_validation() {
        assert!(check_probability("p", 0.0).is_ok());
        assert!(check_probability("p", 1.0).is_ok());
        assert!(check_probability("p", 0.5).is_ok());
        assert!(check_probability("p", -0.1).is_err());
        assert!(check_probability("p", 1.1).is_err());
        assert!(check_probability("p", f64::NAN).is_err());
    }

    #[test]
    fn duration_validation() {
        assert!(check_duration("t", 1.0).is_ok());
        assert!(check_duration("t", 0.0).is_err());
        assert!(check_duration("t", -1.0).is_err());
        assert!(check_duration("t", f64::INFINITY).is_err());
    }

    #[test]
    fn errors_display() {
        let e = ParamError::ProbabilityOutOfRange {
            name: "q",
            value: 2.0,
        };
        assert!(e.to_string().contains("`q`"));
        let e = ParamError::ActiveExceedsFrame {
            t_active: 11.0,
            t_frame: 10.0,
        };
        assert!(e.to_string().contains("does not fit"));
    }
}
