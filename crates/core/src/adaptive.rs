//! Adaptive PBBF — the paper's future-work heuristics (Section 6).
//!
//! > "the p and q parameters could be adjusted dynamically by nodes. For
//! > example, when a node overhears more nodes involved in communication,
//! > p could be increased since more nodes will be active to receive the
//! > broadcast. Additionally, the q parameter could be increased in
//! > response to a node detecting a large fraction of broadcast packets
//! > are not being received."
//!
//! [`AdaptiveController`] implements exactly those two feedback loops with
//! additive-increase/additive-decrease steps over an observation window:
//!
//! * **`p` from overheard activity** — the more transmissions a node heard
//!   in the window, the likelier its neighbors are awake, so immediate
//!   forwarding gets more aggressive; silence decays `p` back down.
//! * **`q` from detected losses** — the code-distribution workload numbers
//!   its updates sequentially, so holes in the received-id sequence reveal
//!   missed broadcasts; a miss fraction above the target raises `q`,
//!   sustained full delivery decays `q` to save energy.

use serde::{Deserialize, Serialize};

use crate::PbbfParams;

/// Tuning of the two feedback loops.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Starting parameters.
    pub initial: PbbfParams,
    /// Tolerated miss fraction before `q` is raised (e.g. `0.01` for the
    /// paper's 99% reliability goal).
    pub target_miss_fraction: f64,
    /// Overheard transmissions per window at or above which `p` rises.
    pub activity_threshold: u32,
    /// Additive step applied to `p` each window.
    pub p_step: f64,
    /// Additive step applied to `q` each window.
    pub q_step: f64,
    /// Lower bound kept on `q` so a quiet node can still catch immediate
    /// broadcasts (and losses remain observable).
    pub q_floor: f64,
}

impl AdaptiveConfig {
    /// Reasonable defaults for the Table-2 workload: start at PSM-like
    /// conservatism, aim for 99% delivery, step by 0.05.
    #[must_use]
    pub fn default_for(initial: PbbfParams) -> Self {
        Self {
            initial,
            target_miss_fraction: 0.01,
            activity_threshold: 3,
            p_step: 0.05,
            q_step: 0.05,
            q_floor: 0.05,
        }
    }
}

/// Per-node adaptive state: accumulates one window of observations, then
/// [`AdaptiveController::end_window`] folds them into new parameters.
///
/// # Examples
///
/// ```
/// use pbbf_core::adaptive::{AdaptiveConfig, AdaptiveController};
/// use pbbf_core::PbbfParams;
///
/// let cfg = AdaptiveConfig::default_for(PbbfParams::new(0.2, 0.2).unwrap());
/// let mut ctl = AdaptiveController::new(cfg);
///
/// // A window with heavy overheard traffic and no losses: p rises.
/// for _ in 0..10 { ctl.observe_transmission(); }
/// ctl.observe_updates(5, 0);
/// let before = ctl.params();
/// let after = ctl.end_window();
/// assert!(after.p() > before.p());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveController {
    config: AdaptiveConfig,
    current: PbbfParams,
    overheard: u32,
    received: u64,
    missed: u64,
    windows: u32,
    /// Recent `(p, q)` history for convergence detection (bounded).
    history: Vec<(f64, f64)>,
}

impl AdaptiveController {
    /// Maximum history length retained for convergence checks.
    const HISTORY: usize = 32;

    /// Creates a controller at the configured initial parameters.
    #[must_use]
    pub fn new(config: AdaptiveConfig) -> Self {
        Self {
            config,
            current: config.initial,
            overheard: 0,
            received: 0,
            missed: 0,
            windows: 0,
            history: Vec::new(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// The parameters currently in force.
    #[must_use]
    pub fn params(&self) -> PbbfParams {
        self.current
    }

    /// Number of completed observation windows.
    #[must_use]
    pub fn windows(&self) -> u32 {
        self.windows
    }

    /// Records one overheard transmission (any frame audible to this node
    /// this window).
    pub fn observe_transmission(&mut self) {
        self.overheard = self.overheard.saturating_add(1);
    }

    /// Records delivery bookkeeping for this window: `received` fresh
    /// updates and `missed` newly detected sequence holes.
    pub fn observe_updates(&mut self, received: u64, missed: u64) {
        self.received += received;
        self.missed += missed;
    }

    /// Ends the observation window: applies the two Section-6 rules,
    /// resets counters, and returns the new parameters.
    pub fn end_window(&mut self) -> PbbfParams {
        let mut p = self.current.p();
        let mut q = self.current.q();

        // Rule 1: overheard activity drives p.
        if self.overheard >= self.config.activity_threshold {
            p += self.config.p_step;
        } else {
            p -= self.config.p_step;
        }

        // Rule 2: detected losses drive q (only when there was anything to
        // observe this window).
        let observed = self.received + self.missed;
        if observed > 0 {
            let miss_fraction = self.missed as f64 / observed as f64;
            if miss_fraction > self.config.target_miss_fraction {
                q += self.config.q_step;
            } else {
                q -= self.config.q_step;
            }
        }

        p = p.clamp(0.0, 1.0);
        q = q.clamp(self.config.q_floor.clamp(0.0, 1.0), 1.0);
        self.current = PbbfParams::new(p, q).expect("clamped to [0, 1]");

        self.overheard = 0;
        self.received = 0;
        self.missed = 0;
        self.windows += 1;
        if self.history.len() == Self::HISTORY {
            self.history.remove(0);
        }
        self.history.push((p, q));
        self.current
    }

    /// Whether the parameters have stayed within `eps` (in both knobs)
    /// over the last `windows` completed windows. `false` until enough
    /// history exists.
    #[must_use]
    pub fn is_converged(&self, windows: usize, eps: f64) -> bool {
        if windows == 0 || self.history.len() < windows {
            return false;
        }
        let recent = &self.history[self.history.len() - windows..];
        let (p0, q0) = recent[0];
        recent
            .iter()
            .all(|&(p, q)| (p - p0).abs() <= eps && (q - q0).abs() <= eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(p: f64, q: f64) -> AdaptiveController {
        AdaptiveController::new(AdaptiveConfig::default_for(PbbfParams::new(p, q).unwrap()))
    }

    #[test]
    fn busy_channel_raises_p_quiet_lowers_it() {
        let mut c = controller(0.5, 0.5);
        for _ in 0..5 {
            c.observe_transmission();
        }
        assert!(c.end_window().p() > 0.5);

        let mut d = controller(0.5, 0.5);
        assert!(d.end_window().p() < 0.5);
    }

    #[test]
    fn losses_raise_q_clean_delivery_lowers_it() {
        let mut c = controller(0.2, 0.5);
        c.observe_updates(3, 2); // 40% missed
        assert!(c.end_window().q() > 0.5);

        let mut d = controller(0.2, 0.5);
        d.observe_updates(5, 0);
        assert!(d.end_window().q() < 0.5);
    }

    #[test]
    fn no_observations_leave_q_unchanged() {
        let mut c = controller(0.2, 0.5);
        let q = c.end_window().q();
        assert!((q - 0.5).abs() < 1e-12, "no delivery data, no q move: {q}");
    }

    #[test]
    fn parameters_stay_clamped() {
        let mut c = controller(1.0, 1.0);
        for _ in 0..50 {
            for _ in 0..10 {
                c.observe_transmission();
            }
            c.observe_updates(0, 10);
            let p = c.end_window();
            assert!(p.p() <= 1.0 && p.q() <= 1.0);
        }
        let mut d = controller(0.0, 0.0);
        for _ in 0..50 {
            d.observe_updates(10, 0);
            let p = d.end_window();
            assert!(p.p() >= 0.0);
            assert!(p.q() >= d.config().q_floor, "q floor respected");
        }
    }

    #[test]
    fn steady_conditions_converge() {
        // Persistent losses + busy channel push both knobs to their caps,
        // where they stay: convergence detected.
        let mut c = controller(0.3, 0.3);
        for _ in 0..40 {
            for _ in 0..10 {
                c.observe_transmission();
            }
            c.observe_updates(5, 5);
            c.end_window();
        }
        assert!(c.is_converged(5, 1e-9));
        assert_eq!(c.params().p(), 1.0);
        assert_eq!(c.params().q(), 1.0);
        assert_eq!(c.windows(), 40);
    }

    #[test]
    fn oscillating_conditions_do_not_report_convergence() {
        let mut c = controller(0.5, 0.5);
        for w in 0..20 {
            if w % 2 == 0 {
                for _ in 0..10 {
                    c.observe_transmission();
                }
                c.observe_updates(0, 5);
            } else {
                c.observe_updates(5, 0);
            }
            c.end_window();
        }
        assert!(!c.is_converged(6, 1e-3));
    }

    #[test]
    fn convergence_needs_history() {
        let c = controller(0.5, 0.5);
        assert!(!c.is_converged(3, 0.1), "no windows yet");
    }
}
