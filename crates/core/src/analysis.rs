//! The closed-form analysis of Section 4 (Equations 3–12).
//!
//! All energies are *relative* (fraction of always-on consumption) unless a
//! function name says joules; all latencies are in seconds.

use crate::{AnalysisParams, PbbfParams, SleepSchedule};

/// Eq. 3: relative energy of the plain sleep-scheduling protocol,
/// `E_original = T_active / T_frame` (the duty cycle).
#[must_use]
pub fn relative_energy_original(schedule: &SleepSchedule) -> f64 {
    schedule.duty_cycle()
}

/// Eq. 7: relative energy of PBBF,
/// `E_PBBF = (T_active + q·T_sleep) / T_frame`.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
#[must_use]
pub fn relative_energy_pbbf(schedule: &SleepSchedule, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q = {q} outside [0, 1]");
    (schedule.t_active() + q * schedule.t_sleep()) / schedule.t_frame()
}

/// Eq. 8: energy increase of PBBF over the original protocol,
/// `E_PBBF / E_original = 1 + q·T_sleep/T_active`.
///
/// Linear in `q` and independent of `p` — which is exactly why the PBBF
/// curves for different `p` overlap in Figures 8 and 13.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
#[must_use]
pub fn energy_increase_factor(schedule: &SleepSchedule, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q = {q} outside [0, 1]");
    1.0 + q * schedule.t_sleep() / schedule.t_active()
}

/// Joules a node consumes per source update when idle-listening dominates
/// (the regime of Figures 8 and 13): awake time is billed at `P_I`, the
/// rest of each frame at `P_S`, and a new update arrives every `1/λ`
/// seconds, i.e. every `1/(λ·T_frame)` frames.
///
/// `q = 0` gives the PSM baseline; `q = 1` (or
/// [`joules_per_update_always_on`]) the no-PSM ceiling.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
#[must_use]
pub fn joules_per_update(params: &AnalysisParams, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q = {q} outside [0, 1]");
    let s = &params.schedule;
    let awake = s.t_active() + q * s.t_sleep();
    let asleep = (1.0 - q) * s.t_sleep();
    let per_frame = params.power.idle * awake + params.power.sleep * asleep;
    per_frame / (params.lambda * s.t_frame())
}

/// Joules per update with the radio always on (the paper's `NO PSM` line).
#[must_use]
pub fn joules_per_update_always_on(params: &AnalysisParams) -> f64 {
    params.power.idle / params.lambda
}

/// Eq. 9: expected one-link latency
/// `L = L1 + L2 · (1 − p) / (1 − p + p·q)`,
/// conditioned on the link delivering at all.
///
/// `L1` is the immediate channel-access time; `L2` the extra wait until
/// every neighbor is awake (for 802.11 PSM: until the data phase following
/// the next ATIM window). The degenerate point `p = 1, q = 0` has delivery
/// probability zero; conditioned on (immediate-only) delivery the latency
/// is `L1`, which is the formula's continuous limit and what this function
/// returns.
///
/// # Panics
///
/// Panics if `p`/`q` are outside `[0, 1]` or latencies are not positive.
#[must_use]
pub fn expected_link_latency(p: f64, q: f64, l1: f64, l2: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p = {p} outside [0, 1]");
    assert!((0.0..=1.0).contains(&q), "q = {q} outside [0, 1]");
    assert!(l1 > 0.0 && l1.is_finite(), "bad L1 {l1}");
    assert!(l2 > 0.0 && l2.is_finite(), "bad L2 {l2}");
    let denom = 1.0 - p + p * q;
    if denom <= 0.0 {
        return l1;
    }
    l1 + l2 * (1.0 - p) / denom
}

/// Eq. 10: expected source-to-node latency `L_{S,B} = L · len(S, B)`, where
/// `len` is the expected hop count of the dissemination-tree path actually
/// taken (which exceeds the shortest distance when links are missing).
#[must_use]
pub fn source_latency(link_latency: f64, path_hops: f64) -> f64 {
    link_latency * path_hops
}

/// Eq. 11: the loop-erased-random-walk upper bound on dissemination-tree
/// path length, `L_{S,B} ≤ L · d^{5/4}` for a node at shortest distance `d`
/// (the `o(1)` exponent term is dropped).
#[must_use]
pub fn latency_upper_bound(link_latency: f64, shortest_distance: f64) -> f64 {
    link_latency * shortest_distance.powf(1.25)
}

/// Inverts Eq. 9: the `q` that achieves link latency `latency` at the given
/// `p`, i.e. `q = (1 − p)/p · (L1 + L2 − L)/(L − L1)`.
///
/// Returns `None` when no `q ∈ [0, 1]` achieves it (latency below `L1`
/// or above the `q = 0` latency, or `p = 0`, where latency is fixed at
/// `L1 + L2`).
#[must_use]
pub fn q_for_latency(p: f64, l1: f64, l2: f64, latency: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&p), "p = {p} outside [0, 1]");
    if p == 0.0 {
        // Latency is L1 + L2 regardless of q.
        return ((latency - (l1 + l2)).abs() < 1e-9).then_some(0.0);
    }
    if latency <= l1 + 1e-12 {
        // Only p = 1 reaches exactly L1 (every forward is immediate, for
        // any q); anything below L1 is unachievable.
        return ((latency - l1).abs() <= 1e-12 && p >= 1.0).then_some(0.0);
    }
    let q = (1.0 - p) / p * (l1 + l2 - latency) / (latency - l1);
    (0.0..=1.0 + 1e-12).contains(&q).then(|| q.min(1.0))
}

/// Eq. 12 (sign-corrected): the energy–latency trade-off. Given the
/// latency `L` achieved at immediate-forwarding probability `p`, the
/// relative energy is
///
/// `E_PBBF = (1 + (L1 + L2 − L)/(L − L1) · (1 − p)/p · T_sleep/T_active) · E_original`.
///
/// The printed equation in the paper has a minus sign before the middle
/// term; substituting Eq. 9 into it yields `(1 − q·T_sleep/T_active)` —
/// contradicting Eq. 8, under which energy *grows* with `q`. The corrected
/// form above reduces exactly to Eq. 8, so we implement it and record the
/// discrepancy in `EXPERIMENTS.md`.
///
/// Returns `None` when the latency is not achievable at this `p` (see
/// [`q_for_latency`]).
#[must_use]
pub fn energy_latency_tradeoff(
    schedule: &SleepSchedule,
    p: f64,
    l1: f64,
    l2: f64,
    latency: f64,
) -> Option<f64> {
    let q = q_for_latency(p, l1, l2, latency)?;
    Some(energy_increase_factor(schedule, q) * relative_energy_original(schedule))
}

/// One point of the Figure-12 frontier: the latency and energy obtained by
/// running PBBF at the *cheapest reliable* `q` for a given `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// Immediate-forwarding probability.
    pub p: f64,
    /// The minimum `q` meeting the reliability threshold at this `p`.
    pub q_min: f64,
    /// Expected one-link latency (Eq. 9) at `(p, q_min)`.
    pub link_latency: f64,
    /// Relative energy (Eq. 7) at `q_min`.
    pub relative_energy: f64,
    /// Joules per update at `q_min` under the Table-1 power model.
    pub joules_per_update: f64,
}

/// Builds the Figure-12 energy–latency frontier for a reliability level:
/// for each `p`, pair the minimum reliable `q` (from the percolation
/// critical edge probability) with the Eq. 8/9 energy and latency.
///
/// # Panics
///
/// Panics if `critical_edge_probability` is outside `[0, 1]`.
#[must_use]
pub fn tradeoff_frontier(
    params: &AnalysisParams,
    critical_edge_probability: f64,
    p_values: &[f64],
) -> Vec<TradeoffPoint> {
    p_values
        .iter()
        .map(|&p| {
            let q_min = pbbf_percolation::min_q_for_reliability(p, critical_edge_probability)
                .expect("critical <= 1 is always solvable");
            TradeoffPoint {
                p,
                q_min,
                link_latency: expected_link_latency(p, q_min, params.l1, params.l2()),
                relative_energy: relative_energy_pbbf(&params.schedule, q_min),
                joules_per_update: joules_per_update(params, q_min),
            }
        })
        .collect()
}

/// Convenience: all Eq. 7–9 quantities for one parameter pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointAnalysis {
    /// The parameters analyzed.
    pub params: PbbfParams,
    /// Link-open probability (Remark 1).
    pub edge_probability: f64,
    /// Relative energy (Eq. 7).
    pub relative_energy: f64,
    /// Energy increase over PSM (Eq. 8).
    pub energy_increase: f64,
    /// Expected one-link latency (Eq. 9).
    pub link_latency: f64,
    /// Joules per update under the analysis power/traffic model.
    pub joules_per_update: f64,
}

/// Analyzes one `(p, q)` operating point under `params`.
#[must_use]
pub fn analyze(params: &AnalysisParams, pbbf: PbbfParams) -> PointAnalysis {
    PointAnalysis {
        params: pbbf,
        edge_probability: pbbf.edge_probability(),
        relative_energy: relative_energy_pbbf(&params.schedule, pbbf.q()),
        energy_increase: energy_increase_factor(&params.schedule, pbbf.q()),
        link_latency: expected_link_latency(pbbf.p(), pbbf.q(), params.l1, params.l2()),
        joules_per_update: joules_per_update(params, pbbf.q()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1_schedule() -> SleepSchedule {
        SleepSchedule::new(1.0, 10.0).unwrap()
    }

    #[test]
    fn eq3_duty_cycle() {
        assert_eq!(relative_energy_original(&table1_schedule()), 0.1);
    }

    #[test]
    fn eq7_endpoints() {
        let s = table1_schedule();
        assert_eq!(relative_energy_pbbf(&s, 0.0), 0.1);
        assert_eq!(relative_energy_pbbf(&s, 1.0), 1.0);
        assert!((relative_energy_pbbf(&s, 0.5) - 0.55).abs() < 1e-12);
    }

    #[test]
    fn eq8_linear_in_q() {
        let s = table1_schedule();
        assert_eq!(energy_increase_factor(&s, 0.0), 1.0);
        assert_eq!(energy_increase_factor(&s, 1.0), 10.0);
        // Linearity: factor(q) - factor(0) proportional to q.
        let f25 = energy_increase_factor(&s, 0.25) - 1.0;
        let f50 = energy_increase_factor(&s, 0.5) - 1.0;
        assert!((f50 / f25 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn eq7_eq8_consistent() {
        let s = table1_schedule();
        for q in [0.0, 0.1, 0.37, 0.99, 1.0] {
            let lhs = relative_energy_pbbf(&s, q);
            let rhs = energy_increase_factor(&s, q) * relative_energy_original(&s);
            assert!((lhs - rhs).abs() < 1e-12, "q = {q}");
        }
    }

    #[test]
    fn joules_match_figure8_scale() {
        // Fig. 8: PSM ≈ 0.3 J/update, NO PSM ≈ 3 J/update ("saves almost
        // 3 Joules per update").
        let a = AnalysisParams::table1();
        let psm = joules_per_update(&a, 0.0);
        let no_psm = joules_per_update_always_on(&a);
        assert!((psm - 0.3).abs() < 0.01, "PSM {psm} J");
        assert!((no_psm - 3.0).abs() < 0.01, "NO PSM {no_psm} J");
        assert!(no_psm - psm > 2.5, "PSM saves almost 3 J/update");
        // q = 1 approaches (and slightly exceeds is impossible) always-on.
        let q1 = joules_per_update(&a, 1.0);
        assert!((q1 - no_psm).abs() < 1e-9);
    }

    #[test]
    fn joules_linear_in_q_and_independent_of_p() {
        let a = AnalysisParams::table1();
        let j0 = joules_per_update(&a, 0.0);
        let j5 = joules_per_update(&a, 0.5);
        let j1 = joules_per_update(&a, 1.0);
        assert!((j5 - (j0 + j1) / 2.0).abs() < 1e-12, "linear in q");
    }

    #[test]
    fn eq9_endpoints() {
        // p = 0: always wait for the announced broadcast -> L1 + L2.
        assert_eq!(expected_link_latency(0.0, 0.5, 1.5, 6.0), 7.5);
        // p = 1, q = 1: always immediate -> L1.
        assert_eq!(expected_link_latency(1.0, 1.0, 1.5, 6.0), 1.5);
        // p = 1, q = 0: degenerate; conditioned on delivery -> L1.
        assert_eq!(expected_link_latency(1.0, 0.0, 1.5, 6.0), 1.5);
    }

    #[test]
    fn eq9_decreasing_in_p_and_q() {
        let l = |p: f64, q: f64| expected_link_latency(p, q, 1.5, 6.0);
        assert!(l(0.25, 0.5) > l(0.5, 0.5));
        assert!(l(0.5, 0.25) > l(0.5, 0.75));
    }

    #[test]
    fn eq10_eq11() {
        assert_eq!(source_latency(2.0, 10.0), 20.0);
        let bound = latency_upper_bound(2.0, 16.0);
        assert!((bound - 2.0 * 16f64.powf(1.25)).abs() < 1e-12);
        // The bound dominates the proportional-to-d latency.
        assert!(bound >= source_latency(2.0, 16.0));
    }

    #[test]
    fn q_for_latency_inverts_eq9() {
        for p in [0.25, 0.5, 0.75] {
            for q in [0.1, 0.4, 0.9] {
                let lat = expected_link_latency(p, q, 1.5, 6.0);
                let back = q_for_latency(p, 1.5, 6.0, lat).unwrap();
                assert!((back - q).abs() < 1e-9, "p={p} q={q} -> {back}");
            }
        }
        // At p = 1 every forward is immediate: latency L1 for any q; the
        // inverse reports the minimal q.
        assert_eq!(q_for_latency(1.0, 1.5, 6.0, 1.5), Some(0.0));
    }

    #[test]
    fn q_for_latency_rejects_unachievable() {
        // Below L1 is impossible.
        assert_eq!(q_for_latency(0.5, 1.5, 6.0, 1.0), None);
        // Above the q=0 latency at p=0.5 (i.e. > 7.5) is impossible too.
        assert_eq!(q_for_latency(0.5, 1.5, 6.0, 8.0), None);
        // p = 0 has fixed latency L1 + L2.
        assert_eq!(q_for_latency(0.0, 1.5, 6.0, 7.5), Some(0.0));
        assert_eq!(q_for_latency(0.0, 1.5, 6.0, 5.0), None);
    }

    #[test]
    fn eq12_reduces_to_eq8() {
        // Corrected Eq. 12 must agree with Eq. 7/8 at the q achieving L.
        let s = table1_schedule();
        for p in [0.25, 0.5, 0.75] {
            for q in [0.2, 0.6, 1.0] {
                let lat = expected_link_latency(p, q, 1.5, 6.0);
                let e12 = energy_latency_tradeoff(&s, p, 1.5, 6.0, lat).unwrap();
                let e7 = relative_energy_pbbf(&s, q);
                assert!((e12 - e7).abs() < 1e-9, "p={p} q={q}: {e12} vs {e7}");
            }
        }
    }

    #[test]
    fn tradeoff_frontier_is_inverse() {
        // Along the frontier, lower latency must cost more energy.
        let a = AnalysisParams::table1();
        let ps = [0.45, 0.55, 0.65, 0.75, 0.85, 0.95];
        let frontier = tradeoff_frontier(&a, 0.65, &ps);
        assert_eq!(frontier.len(), ps.len());
        for w in frontier.windows(2) {
            assert!(w[1].q_min >= w[0].q_min, "q_min monotone in p");
            assert!(
                w[1].link_latency <= w[0].link_latency + 1e-9,
                "latency falls"
            );
            assert!(
                w[1].relative_energy >= w[0].relative_energy - 1e-12,
                "energy rises"
            );
        }
    }

    #[test]
    fn analyze_bundles_consistently() {
        let a = AnalysisParams::table1();
        let pt = analyze(&a, PbbfParams::new(0.5, 0.25).unwrap());
        assert!((pt.edge_probability - 0.625).abs() < 1e-12);
        assert_eq!(pt.relative_energy, relative_energy_pbbf(&a.schedule, 0.25));
        assert_eq!(
            pt.link_latency,
            expected_link_latency(0.5, 0.25, a.l1, a.l2())
        );
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_q_panics() {
        let _ = relative_energy_pbbf(&table1_schedule(), 1.5);
    }
}
