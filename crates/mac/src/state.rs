//! Per-node MAC bookkeeping: queues, flags and PBBF decisions.

use pbbf_core::{ForwardDecision, PbbfEngine, PbbfParams};
use pbbf_des::SimRng;

/// What a node wants from its next data transmission opportunity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataIntent {
    /// An announced (ATIM-preceded) broadcast: every neighbor is awake.
    Normal,
    /// A PBBF immediate broadcast: only awake neighbors receive.
    Immediate,
}

/// Which beacon-boundary handlers need to process a node eagerly — the
/// membership signal for an active-set event loop (see
/// `pbbf-net-sim`'s runner). Recomputed from the MAC flags at every
/// transition point (`source_update`, `receive_data`, `mark_*_sent`,
/// `begin_frame`, `announce_now`); a node with neither bit set can be
/// skipped at every beacon boundary and replayed lazily.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PendingWork {
    /// The node must be processed at the next frame start: it has a
    /// queued announce or an unsent normal broadcast to (re-)contend an
    /// ATIM for.
    pub frame_start: bool,
    /// The node must be processed at the next ATIM-window end: it has
    /// pending normal or immediate data whose transmission attempts are
    /// scheduled there.
    pub window_end: bool,
}

/// The outcome of a batched run of idle beacon boundaries — what
/// [`MacState::skip_boundaries`] reports back so the caller (the net
/// simulator's geometric-skip boundary engine) can settle energy and
/// radio state in closed form without replaying each boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipSummary {
    /// Number of window ends (out of `k`) whose Figure-3 decision was
    /// "stay awake".
    pub stays: u32,
    /// Index (0-based among the `k` skipped window ends) of the last
    /// "sleep" decision, or `None` when every decision stayed awake.
    /// Determines the node's final radio state (`Some(k - 1)` means it
    /// ends asleep) and the instant it last woke.
    pub last_sleep: Option<u32>,
}

impl SkipSummary {
    /// Whether the node is awake after the last skipped window end.
    #[must_use]
    pub fn ends_awake(&self, k: u32) -> bool {
        self.last_sleep != Some(k - 1)
    }

    /// Number of stay-awake decisions among the first `k - 1` window
    /// ends — the ones whose data phases lie *inside* the settled span
    /// (the final window end only fixes the state the node leaves in).
    #[must_use]
    pub fn stays_before_last(&self, k: u32) -> u32 {
        self.stays - u32::from(self.ends_awake(k))
    }
}

/// One node's MAC/application state for the code-distribution workload.
///
/// Tracks the update ids the node knows, the pending
/// announce/normal/immediate sends, and makes the Figure-3 PBBF decisions.
/// Send *contents* are built lazily at transmission time: a data packet
/// carries the `k` most recent updates the node knows (Section 5.1), so a
/// queued send automatically carries anything fresh that arrived while it
/// waited.
///
/// # Examples
///
/// ```
/// use pbbf_core::PbbfParams;
/// use pbbf_des::SimRng;
/// use pbbf_mac::MacState;
///
/// let mut mac = MacState::new(PbbfParams::PSM, SimRng::new(1));
/// // Fresh update arrives: PSM always queues a normal broadcast.
/// let fresh = mac.receive_data(&[0]);
/// assert_eq!(fresh, vec![0]);
/// assert!(mac.wants_announce());
/// // At the next frame start the announce turns into a pending send.
/// assert!(mac.begin_frame());
/// assert_eq!(mac.packet_contents(1), vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct MacState {
    engine: PbbfEngine<SimRng>,
    /// Every update id this node has received, ascending — also the
    /// duplicate filter: an id is fresh iff it is absent here. A binary
    /// search over this tiny sorted vector keeps the per-delivery dedup
    /// check (the innermost loop of a flood) free of hashing.
    known: Vec<u64>,
    /// A normal broadcast is queued for the *next* ATIM window.
    announce_pending: bool,
    /// A normal broadcast was announced this interval and awaits its data
    /// transmission.
    send_normal: bool,
    /// An immediate broadcast awaits transmission.
    send_immediate: bool,
    /// An ATIM was heard in the current window (`DataToRecv`).
    atim_received: bool,
}

impl MacState {
    /// Creates the state for a node running PBBF with `params`.
    #[must_use]
    pub fn new(params: PbbfParams, rng: SimRng) -> Self {
        Self {
            engine: PbbfEngine::new(params, rng),
            known: Vec::new(),
            announce_pending: false,
            send_normal: false,
            send_immediate: false,
            atim_received: false,
        }
    }

    /// The configured PBBF parameters.
    #[must_use]
    pub fn params(&self) -> PbbfParams {
        self.engine.params()
    }

    /// Replaces the PBBF parameters in force — the hook used by the
    /// adaptive controller of `pbbf_core::adaptive` (the paper's
    /// Section-6 extension).
    pub fn set_params(&mut self, params: PbbfParams) {
        self.engine.set_params(params);
    }

    /// Number of sequence holes in the received updates: update ids the
    /// node can prove it missed because a later id has arrived. The
    /// adaptive controller's loss signal.
    #[must_use]
    pub fn sequence_holes(&self) -> u64 {
        match self.known.last() {
            Some(&max) => max + 1 - self.known.len() as u64,
            None => 0,
        }
    }

    /// All update ids this node has received, ascending.
    #[must_use]
    pub fn known_updates(&self) -> &[u64] {
        &self.known
    }

    /// Whether this node wants to send an ATIM at the next window.
    #[inline]
    #[must_use]
    pub fn wants_announce(&self) -> bool {
        self.announce_pending || self.send_normal
    }

    /// Whether a normal data send is pending in the current interval.
    #[inline]
    #[must_use]
    pub fn has_pending_normal(&self) -> bool {
        self.send_normal
    }

    /// Whether an immediate data send is pending.
    #[inline]
    #[must_use]
    pub fn has_pending_immediate(&self) -> bool {
        self.send_immediate
    }

    /// The node's current active-set membership (see [`PendingWork`]).
    #[inline]
    #[must_use]
    pub fn pending_work(&self) -> PendingWork {
        PendingWork {
            frame_start: self.wants_announce(),
            window_end: self.send_normal || self.send_immediate,
        }
    }

    /// Called at every beacon-interval start. Promotes a pending announce
    /// into this interval's normal send and resets per-interval flags.
    /// Returns `true` if the node should contend to transmit an ATIM in
    /// this window.
    #[inline]
    pub fn begin_frame(&mut self) -> bool {
        if self.announce_pending {
            self.announce_pending = false;
            self.send_normal = true;
        }
        self.atim_received = false;
        self.send_normal
    }

    /// Records that an ATIM was heard in this window.
    pub fn receive_atim(&mut self) {
        self.atim_received = true;
    }

    /// The Figure-3 `Sleep-Decision-Handler`, evaluated at the end of the
    /// ATIM window: `true` means stay awake for the data phase.
    #[inline]
    pub fn sleep_decision(&mut self) -> bool {
        let data_to_send = self.send_normal || self.send_immediate;
        let data_to_recv = self.atim_received;
        self.engine.stay_on_after_active(data_to_send, data_to_recv)
    }

    /// Batched Figure-3 boundaries for an idle node: the combined effect
    /// of `k` consecutive (`begin_frame`, `sleep_decision`) pairs on a
    /// node with no pending work, sampled as geometric runs instead of
    /// `k` Bernoulli coins.
    ///
    /// `begin_frame` on an idle node only clears the per-frame ATIM flag
    /// and promotes nothing, so the MAC-visible effect of the whole batch
    /// is that clear plus `k` sleep coins; the coins are drawn via
    /// [`PbbfEngine::sleep_run`](pbbf_core::PbbfEngine::sleep_run) — one
    /// RNG draw per stay-awake run rather than one per boundary — and the
    /// returned [`SkipSummary`] carries exactly what closed-form energy
    /// settling needs (stay count and last-sleep position).
    ///
    /// Distributionally identical to the dense loop
    /// `for _ in 0..k { self.begin_frame(); self.sleep_decision(); }`;
    /// the RNG stream layout differs (the geometric-skip relaxation).
    /// Exact at the `q = 0` / `q = 1` endpoints, which draw nothing on
    /// either path.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the node has no pending announce or send (such
    /// a node must be processed eagerly at each boundary, never skipped).
    pub fn skip_boundaries(&mut self, k: u32) -> SkipSummary {
        debug_assert_eq!(
            self.pending_work(),
            PendingWork::default(),
            "skip_boundaries is only valid for idle nodes"
        );
        // Every skipped frame start clears the flag before its window
        // end, so no decision in the batch can see a stale ATIM.
        self.atim_received = false;
        if self.engine.params().q() >= 1.0 {
            // The q = 1 coin stays awake deterministically and draw-free:
            // the run loop below would spin `k` zero-length sleep runs,
            // so collapse the whole batch in closed form instead.
            return SkipSummary {
                stays: k,
                last_sleep: None,
            };
        }
        let mut stays = 0u32;
        let mut last_sleep = None;
        let mut t = 0u32;
        while t < k {
            let run = self.engine.sleep_run(k - t);
            if run > 0 {
                last_sleep = Some(t + run - 1);
            }
            t += run;
            if t < k {
                // The trial that ended the run stayed awake.
                stays += 1;
                t += 1;
            }
        }
        SkipSummary { stays, last_sleep }
    }

    /// Processes the update ids of a received data packet. Returns the
    /// ids that were fresh (never seen before); when any are fresh, the
    /// Figure-3 `Receive-Broadcast` coin queues a forward.
    pub fn receive_data(&mut self, updates: &[u64]) -> Vec<u64> {
        let mut fresh = Vec::new();
        for &id in updates {
            if let Err(pos) = self.known.binary_search(&id) {
                self.known.insert(pos, id);
                fresh.push(id);
            }
        }
        if fresh.is_empty() {
            return fresh;
        }
        match self.engine.on_receive_broadcast() {
            ForwardDecision::SendImmediately => self.send_immediate = true,
            ForwardDecision::EnqueueForNextActiveWindow => {
                // If a normal send is already queued (this frame or the
                // next) the fresh ids ride along — contents are built at
                // send time. Otherwise queue an announce for the next
                // window (also the case when this frame's send already
                // happened).
                if !self.send_normal && !self.announce_pending {
                    self.announce_pending = true;
                }
            }
        }
        fresh
    }

    /// Source-side entry: a new update was generated here. Returns the
    /// PBBF forwarding decision for it (the source applies `p` like any
    /// forwarder — the paper's Figure 2).
    pub fn source_update(&mut self, id: u64) -> ForwardDecision {
        let first = self.known.binary_search(&id);
        debug_assert!(first.is_err(), "source generated a duplicate id {id}");
        if let Err(pos) = first {
            self.known.insert(pos, id);
        }
        let decision = self.engine.on_receive_broadcast();
        match decision {
            ForwardDecision::SendImmediately => self.send_immediate = true,
            ForwardDecision::EnqueueForNextActiveWindow => self.announce_pending = true,
        }
        decision
    }

    /// Promotes a pending (source, in-window) announce into the *current*
    /// interval: the paper's source announces updates in the window they
    /// arrive in ("they are sent with a delay of about AW").
    pub fn announce_now(&mut self) {
        if self.announce_pending {
            self.announce_pending = false;
            self.send_normal = true;
        }
    }

    /// The `k` most recent updates this node knows — the contents of its
    /// next data packet (Section 5.1).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn packet_contents(&self, k: usize) -> Vec<u64> {
        assert!(k > 0, "packets must carry at least one update");
        let start = self.known.len().saturating_sub(k);
        self.known[start..].to_vec()
    }

    /// Marks the pending normal send as completed.
    pub fn mark_normal_sent(&mut self) {
        self.send_normal = false;
    }

    /// Marks the pending immediate send as completed.
    pub fn mark_immediate_sent(&mut self) {
        self.send_immediate = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn psm() -> MacState {
        MacState::new(PbbfParams::PSM, SimRng::new(1))
    }

    fn always_immediate() -> MacState {
        MacState::new(PbbfParams::new(1.0, 1.0).unwrap(), SimRng::new(2))
    }

    #[test]
    fn fresh_and_duplicate_data() {
        let mut m = psm();
        assert_eq!(m.receive_data(&[1, 2]), vec![1, 2]);
        assert_eq!(m.receive_data(&[2, 3]), vec![3]);
        assert!(m.receive_data(&[1, 2, 3]).is_empty());
        assert_eq!(m.known_updates(), &[1, 2, 3]);
    }

    #[test]
    fn psm_queues_normal_forward() {
        let mut m = psm();
        m.receive_data(&[7]);
        assert!(m.wants_announce());
        assert!(!m.has_pending_immediate());
        assert!(m.begin_frame(), "announce at next frame start");
        assert!(m.has_pending_normal());
        m.mark_normal_sent();
        assert!(!m.has_pending_normal());
        assert!(!m.wants_announce());
    }

    #[test]
    fn immediate_decision_sets_pending_immediate() {
        let mut m = always_immediate();
        m.receive_data(&[5]);
        assert!(m.has_pending_immediate());
        assert!(!m.wants_announce());
        m.mark_immediate_sent();
        assert!(!m.has_pending_immediate());
    }

    #[test]
    fn duplicates_never_trigger_forwarding() {
        let mut m = always_immediate();
        m.receive_data(&[5]);
        m.mark_immediate_sent();
        assert!(m.receive_data(&[5]).is_empty());
        assert!(!m.has_pending_immediate(), "duplicate must not re-queue");
    }

    #[test]
    fn fresh_after_sent_queues_next_interval() {
        let mut m = psm();
        m.receive_data(&[1]);
        m.begin_frame();
        m.mark_normal_sent();
        // A later fresh update in the same interval queues a new announce.
        m.receive_data(&[2]);
        assert!(m.wants_announce());
        assert!(!m.has_pending_normal(), "not until next frame");
        assert!(m.begin_frame());
        assert!(m.has_pending_normal());
    }

    #[test]
    fn packet_contents_k_most_recent() {
        let mut m = psm();
        m.receive_data(&[1, 4, 2, 9]);
        assert_eq!(m.packet_contents(1), vec![9]);
        assert_eq!(m.packet_contents(2), vec![4, 9]);
        assert_eq!(m.packet_contents(10), vec![1, 2, 4, 9]);
    }

    #[test]
    fn sleep_decision_follows_fig3() {
        // PSM with nothing pending sleeps.
        let mut m = psm();
        m.begin_frame();
        assert!(!m.sleep_decision());
        // Pending send keeps the node on.
        m.receive_data(&[1]);
        m.begin_frame();
        assert!(m.sleep_decision());
        // Heard ATIM keeps the node on.
        let mut m2 = psm();
        m2.begin_frame();
        m2.receive_atim();
        assert!(m2.sleep_decision());
        // q = 1 always stays on.
        let mut m3 = MacState::new(PbbfParams::new(0.0, 1.0).unwrap(), SimRng::new(3));
        m3.begin_frame();
        assert!(m3.sleep_decision());
    }

    #[test]
    fn atim_flag_resets_each_frame() {
        let mut m = psm();
        m.receive_atim();
        m.begin_frame();
        assert!(!m.sleep_decision(), "flag must not leak across frames");
    }

    #[test]
    fn source_update_decides_and_records() {
        let mut m = psm();
        let d = m.source_update(0);
        assert_eq!(d, ForwardDecision::EnqueueForNextActiveWindow);
        assert!(m.wants_announce());
        m.announce_now();
        assert!(m.has_pending_normal());
        assert_eq!(m.known_updates(), &[0]);

        let mut s = always_immediate();
        assert_eq!(s.source_update(0), ForwardDecision::SendImmediately);
        assert!(s.has_pending_immediate());
    }

    #[test]
    fn unsent_normal_reannounces_next_frame() {
        let mut m = psm();
        m.receive_data(&[1]);
        assert!(m.begin_frame());
        // Data phase passed without a successful transmission:
        assert!(m.begin_frame(), "still wants to announce");
        assert!(m.has_pending_normal());
    }

    #[test]
    fn sequence_holes_counts_provable_misses() {
        let mut m = psm();
        assert_eq!(m.sequence_holes(), 0);
        m.receive_data(&[0, 1]);
        assert_eq!(m.sequence_holes(), 0);
        m.receive_data(&[4]);
        assert_eq!(m.sequence_holes(), 2, "ids 2 and 3 provably missed");
        m.receive_data(&[2]);
        assert_eq!(m.sequence_holes(), 1);
    }

    #[test]
    fn set_params_switches_decisions() {
        let mut m = psm();
        m.set_params(PbbfParams::new(1.0, 1.0).unwrap());
        m.receive_data(&[9]);
        assert!(m.has_pending_immediate(), "now always-immediate");
        assert_eq!(m.params(), PbbfParams::new(1.0, 1.0).unwrap());
    }

    #[test]
    fn skip_boundaries_endpoints_match_dense_exactly() {
        // q = 0 (PSM) and q = 1 consume no randomness on either path, so
        // batched and dense must agree outcome-for-outcome, not just in
        // distribution.
        let mut psm_like = psm();
        assert_eq!(
            psm_like.skip_boundaries(50),
            SkipSummary {
                stays: 0,
                last_sleep: Some(49)
            }
        );
        let mut always_on = MacState::new(PbbfParams::new(0.0, 1.0).unwrap(), SimRng::new(4));
        assert_eq!(
            always_on.skip_boundaries(50),
            SkipSummary {
                stays: 50,
                last_sleep: None
            }
        );
    }

    #[test]
    fn skip_boundaries_q_one_is_closed_form_and_draw_free() {
        // The q = 1 batch collapses without touching the run loop: a
        // k in the millions must return instantly (the old loop spun k
        // zero-length sleep runs) and must not advance the RNG, so the
        // node's later p-draws are identical to a node that never
        // batched at all.
        let params = PbbfParams::new(0.3, 1.0).unwrap();
        let mut batched = MacState::new(params, SimRng::new(9));
        let mut untouched = MacState::new(params, SimRng::new(9));
        let k = 10_000_000;
        assert_eq!(
            batched.skip_boundaries(k),
            SkipSummary {
                stays: k,
                last_sleep: None
            }
        );
        for id in 0..32 {
            assert_eq!(batched.receive_data(&[id]), untouched.receive_data(&[id]));
            assert_eq!(
                batched.has_pending_immediate(),
                untouched.has_pending_immediate(),
                "q = 1 batch perturbed the p-coin stream"
            );
            batched.mark_immediate_sent();
            untouched.mark_immediate_sent();
        }
    }

    #[test]
    fn skip_boundaries_clears_atim_flag() {
        let mut m = psm();
        m.receive_atim();
        m.skip_boundaries(1);
        m.begin_frame();
        assert!(!m.sleep_decision(), "flag must not survive skipped frames");
    }

    #[test]
    fn skip_summary_accessors() {
        let s = SkipSummary {
            stays: 3,
            last_sleep: Some(4),
        };
        assert!(!s.ends_awake(5), "last boundary slept");
        assert_eq!(s.stays_before_last(5), 3);
        let s = SkipSummary {
            stays: 3,
            last_sleep: Some(2),
        };
        assert!(s.ends_awake(5));
        assert_eq!(s.stays_before_last(5), 2);
        let s = SkipSummary {
            stays: 5,
            last_sleep: None,
        };
        assert!(s.ends_awake(5));
        assert_eq!(s.stays_before_last(5), 4);
    }

    #[test]
    fn skip_boundaries_matches_dense_distribution() {
        // Chi-square-style agreement between the batched sampler and the
        // dense per-boundary loop: stay counts over many independent
        // batches must have the same Binomial(k, q) frequencies.
        let k = 8u32;
        for (q, seed) in [(0.1, 20u64), (0.5, 21), (0.9, 22)] {
            let trials = 20_000u32;
            let mut batched = MacState::new(PbbfParams::new(0.0, q).unwrap(), SimRng::new(seed));
            let mut dense = MacState::new(PbbfParams::new(0.0, q).unwrap(), SimRng::new(seed + 1));
            let mut batched_counts = vec![0u32; k as usize + 1];
            let mut dense_counts = vec![0u32; k as usize + 1];
            for _ in 0..trials {
                let s = batched.skip_boundaries(k);
                batched_counts[s.stays as usize] += 1;
                let mut stays = 0usize;
                for _ in 0..k {
                    dense.begin_frame();
                    if dense.sleep_decision() {
                        stays += 1;
                    }
                }
                dense_counts[stays] += 1;
            }
            // Pearson chi-square between the two empirical distributions
            // (pooled expectation); 8 dof, 27.9 is the 0.999 quantile.
            let mut chi2 = 0.0;
            for i in 0..=k as usize {
                let a = f64::from(batched_counts[i]);
                let b = f64::from(dense_counts[i]);
                let e = (a + b) / 2.0;
                if e > 0.0 {
                    chi2 += (a - e).powi(2) / e + (b - e).powi(2) / e;
                }
            }
            assert!(
                chi2 < 27.9,
                "q = {q}: chi2 {chi2}, batched {batched_counts:?} vs dense {dense_counts:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one update")]
    fn zero_k_panics() {
        let m = psm();
        let _ = m.packet_contents(0);
    }

    #[test]
    fn pending_work_tracks_flags() {
        let mut m = psm();
        assert_eq!(m.pending_work(), PendingWork::default());
        m.receive_data(&[1]);
        // Announce queued: frame-start work only.
        assert!(m.pending_work().frame_start);
        assert!(!m.pending_work().window_end);
        m.begin_frame();
        // Promoted to a pending normal send: both handlers.
        assert!(m.pending_work().frame_start);
        assert!(m.pending_work().window_end);
        m.mark_normal_sent();
        assert_eq!(m.pending_work(), PendingWork::default());

        let mut im = always_immediate();
        im.receive_data(&[5]);
        // Immediate sends never announce: window-end work only.
        assert!(!im.pending_work().frame_start);
        assert!(im.pending_work().window_end);
        im.mark_immediate_sent();
        assert_eq!(im.pending_work(), PendingWork::default());
    }
}
