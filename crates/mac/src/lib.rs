//! MAC substrate: IEEE 802.11 PSM with PBBF, over CSMA/CA broadcast.
//!
//! The paper implements PBBF "on top of IEEE 802.11 PSM" in ns-2
//! (Section 5). This crate provides the MAC-layer building blocks of that
//! stack, each independently testable:
//!
//! * [`PsmTiming`] — the beacon-interval / ATIM-window clock: which frame
//!   an instant belongs to, whether it is inside the ATIM window, and when
//!   the next boundary events occur. Nodes are perfectly synchronized, the
//!   same assumption the paper makes (its Section 5 discussion of [2]).
//! * [`BackoffPolicy`] — contention backoff draws for ATIM and data
//!   transmissions (broadcasts in 802.11 use CSMA/CA without RTS/CTS or
//!   acknowledgments).
//! * [`MacState`] — one node's per-beacon-interval bookkeeping: what to
//!   announce, what to send normally or immediately, whether an ATIM was
//!   heard, the `k`-most-recent-updates packet construction of the
//!   code-distribution application, and the Figure-3 PBBF decisions via
//!   [`pbbf_core::PbbfEngine`].
//!
//! The event-driven composition of these pieces with the
//! [`Channel`](pbbf_radio::Channel) lives in `pbbf-net-sim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backoff;
mod state;
mod timing;

pub use backoff::BackoffPolicy;
pub use state::{DataIntent, MacState, PendingWork, SkipSummary};
pub use timing::PsmTiming;
