//! Contention backoff for broadcast CSMA/CA.
//!
//! Broadcast frames in 802.11 carry no acknowledgment and no RTS/CTS; the
//! only collision avoidance is carrier sensing plus a random delay before
//! each transmission attempt. The delay ranges below are sized for the
//! 19.2 kbps Mica2 radio so that the empirical channel-access time matches
//! the paper's observed `L1 ≈ 1.5 s` (Table 1 notes `L1` "is based on
//! empirical data observed in our simulations").

use pbbf_des::{SimDuration, SimTime};
use rand::RngCore;

/// Backoff ranges for the two contention phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    atim_min: SimDuration,
    atim_max: SimDuration,
    data_min: SimDuration,
    data_max: SimDuration,
}

impl BackoffPolicy {
    /// Creates a policy from the two `[min, max)` uniform ranges.
    ///
    /// # Panics
    ///
    /// Panics if a range is empty.
    #[must_use]
    pub fn new(
        atim_min: SimDuration,
        atim_max: SimDuration,
        data_min: SimDuration,
        data_max: SimDuration,
    ) -> Self {
        assert!(atim_min < atim_max, "empty ATIM backoff range");
        assert!(data_min < data_max, "empty data backoff range");
        Self {
            atim_min,
            atim_max,
            data_min,
            data_max,
        }
    }

    /// The paper-calibrated defaults: ATIM backoff uniform in
    /// `[10 ms, 300 ms)` (fits several contenders into the 1 s window),
    /// data backoff uniform in `[100 ms, 2.8 s)` (mean ≈ 1.45 s ≈ `L1`).
    #[must_use]
    pub fn mica2() -> Self {
        Self::new(
            SimDuration::from_millis(10),
            SimDuration::from_millis(300),
            SimDuration::from_millis(100),
            SimDuration::from_millis(2_800),
        )
    }

    /// Mean of the data backoff range (the analytical `L1` this policy
    /// induces, before contention retries).
    #[must_use]
    pub fn expected_data_access(&self) -> SimDuration {
        (self.data_min + self.data_max) / 2
    }

    /// Draws an ATIM backoff delay.
    pub fn atim_backoff(&self, rng: &mut impl RngCore) -> SimDuration {
        draw(self.atim_min, self.atim_max, rng)
    }

    /// Draws a data backoff delay.
    pub fn data_backoff(&self, rng: &mut impl RngCore) -> SimDuration {
        draw(self.data_min, self.data_max, rng)
    }

    /// The instant of the next ATIM attempt from `now`.
    pub fn next_atim_attempt(&self, now: SimTime, rng: &mut impl RngCore) -> SimTime {
        now + self.atim_backoff(rng)
    }

    /// The instant of the next data attempt from `now`.
    pub fn next_data_attempt(&self, now: SimTime, rng: &mut impl RngCore) -> SimTime {
        now + self.data_backoff(rng)
    }
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self::mica2()
    }
}

fn draw(min: SimDuration, max: SimDuration, rng: &mut impl RngCore) -> SimDuration {
    let span = max.as_nanos() - min.as_nanos();
    let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
    SimDuration::from_nanos(min.as_nanos() + r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbbf_des::SimRng;

    #[test]
    fn draws_stay_in_range() {
        let p = BackoffPolicy::mica2();
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            let a = p.atim_backoff(&mut rng);
            assert!(a >= SimDuration::from_millis(10) && a < SimDuration::from_millis(300));
            let d = p.data_backoff(&mut rng);
            assert!(d >= SimDuration::from_millis(100) && d < SimDuration::from_millis(2_800));
        }
    }

    #[test]
    fn expected_access_close_to_l1() {
        let p = BackoffPolicy::mica2();
        let mean = p.expected_data_access().as_secs();
        assert!((mean - 1.45).abs() < 0.01, "mean {mean}");
        // Empirical mean matches.
        let mut rng = SimRng::new(2);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| p.data_backoff(&mut rng).as_secs()).sum();
        assert!((total / n as f64 - mean).abs() < 0.02);
    }

    #[test]
    fn attempts_offset_from_now() {
        let p = BackoffPolicy::mica2();
        let mut rng = SimRng::new(3);
        let now = SimTime::from_secs(5.0);
        assert!(p.next_atim_attempt(now, &mut rng) > now);
        assert!(p.next_data_attempt(now, &mut rng) > now);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = BackoffPolicy::mica2();
        let a: Vec<u64> = {
            let mut rng = SimRng::new(9);
            (0..10)
                .map(|_| p.data_backoff(&mut rng).as_nanos())
                .collect()
        };
        let b: Vec<u64> = {
            let mut rng = SimRng::new(9);
            (0..10)
                .map(|_| p.data_backoff(&mut rng).as_nanos())
                .collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty data backoff")]
    fn empty_range_panics() {
        let _ = BackoffPolicy::new(
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
            SimDuration::from_millis(5),
            SimDuration::from_millis(5),
        );
    }
}
