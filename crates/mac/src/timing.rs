//! The synchronized beacon-interval / ATIM-window clock.

use pbbf_des::{SimDuration, SimTime};

/// Frame timing shared by all (perfectly synchronized) nodes.
///
/// Every beacon interval (`BI`) starts with an ATIM window (`AW`) in which
/// all nodes are awake and only management frames are exchanged; data
/// frames may only be transmitted in the remainder of the interval.
///
/// # Examples
///
/// ```
/// use pbbf_des::{SimDuration, SimTime};
/// use pbbf_mac::PsmTiming;
///
/// let t = PsmTiming::new(
///     SimDuration::from_secs(10.0),
///     SimDuration::from_secs(1.0),
/// );
/// let instant = SimTime::from_secs(25.0);
/// assert_eq!(t.frame_index(instant), 2);
/// assert!(!t.in_atim_window(instant));
/// assert_eq!(t.next_frame_start(instant), SimTime::from_secs(30.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PsmTiming {
    beacon_interval: SimDuration,
    atim_window: SimDuration,
}

impl PsmTiming {
    /// Creates the clock.
    ///
    /// # Panics
    ///
    /// Panics if either duration is zero or the window does not fit in the
    /// interval.
    #[must_use]
    pub fn new(beacon_interval: SimDuration, atim_window: SimDuration) -> Self {
        assert!(!beacon_interval.is_zero(), "zero beacon interval");
        assert!(!atim_window.is_zero(), "zero ATIM window");
        assert!(
            atim_window < beacon_interval,
            "ATIM window {atim_window} does not fit in beacon interval {beacon_interval}"
        );
        Self {
            beacon_interval,
            atim_window,
        }
    }

    /// The Table-1 timing: 10 s beacon intervals, 1 s ATIM windows.
    #[must_use]
    pub fn table1() -> Self {
        Self::new(SimDuration::from_secs(10.0), SimDuration::from_secs(1.0))
    }

    /// Beacon interval length.
    #[must_use]
    pub fn beacon_interval(&self) -> SimDuration {
        self.beacon_interval
    }

    /// ATIM window length.
    #[must_use]
    pub fn atim_window(&self) -> SimDuration {
        self.atim_window
    }

    /// Index of the beacon interval containing `now` (0-based).
    #[must_use]
    pub fn frame_index(&self, now: SimTime) -> u64 {
        now.as_nanos() / self.beacon_interval.as_nanos()
    }

    /// Start time of beacon interval `index` — the inverse of
    /// [`PsmTiming::frame_index`]. Exact for any index: beacon boundaries
    /// are integer-nanosecond multiples, so this equals the event loop's
    /// repeated `+= beacon_interval` chain bit-for-bit.
    #[must_use]
    pub fn frame_time(&self, index: u64) -> SimTime {
        SimTime::from_nanos(index * self.beacon_interval.as_nanos())
    }

    /// Start of the beacon interval containing `now`.
    #[must_use]
    pub fn frame_start(&self, now: SimTime) -> SimTime {
        SimTime::from_nanos(self.frame_index(now) * self.beacon_interval.as_nanos())
    }

    /// Start of the beacon interval after the one containing `now`.
    #[must_use]
    pub fn next_frame_start(&self, now: SimTime) -> SimTime {
        self.frame_start(now) + self.beacon_interval
    }

    /// End of the ATIM window of the beacon interval containing `now`.
    #[must_use]
    pub fn window_end(&self, now: SimTime) -> SimTime {
        self.frame_start(now) + self.atim_window
    }

    /// Whether `now` lies inside an ATIM window.
    #[must_use]
    pub fn in_atim_window(&self, now: SimTime) -> bool {
        now < self.window_end(now)
    }

    /// The earliest instant at or after `now` at which data transmission
    /// is permitted (outside any ATIM window).
    #[must_use]
    pub fn earliest_data_time(&self, now: SimTime) -> SimTime {
        if self.in_atim_window(now) {
            self.window_end(now)
        } else {
            now
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t1() -> PsmTiming {
        PsmTiming::table1()
    }

    fn at(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn frame_indexing() {
        let t = t1();
        assert_eq!(t.frame_index(at(0.0)), 0);
        assert_eq!(t.frame_index(at(9.999)), 0);
        assert_eq!(t.frame_index(at(10.0)), 1);
        assert_eq!(t.frame_index(at(123.4)), 12);
        assert_eq!(t.frame_start(at(123.4)), at(120.0));
        assert_eq!(t.next_frame_start(at(123.4)), at(130.0));
    }

    #[test]
    fn frame_time_matches_repeated_addition() {
        // Fractional-nanosecond-free but non-round interval: the indexed
        // form must equal the event loop's additive chain exactly.
        let t = PsmTiming::new(
            SimDuration::from_nanos(3_333_333_333),
            SimDuration::from_nanos(123_456_789),
        );
        let mut chained = SimTime::ZERO;
        for f in 0..1000 {
            assert_eq!(t.frame_time(f), chained);
            assert_eq!(t.frame_index(chained), f);
            chained += t.beacon_interval();
        }
    }

    #[test]
    fn atim_window_membership() {
        let t = t1();
        assert!(t.in_atim_window(at(0.0)));
        assert!(t.in_atim_window(at(0.999)));
        assert!(!t.in_atim_window(at(1.0)));
        assert!(!t.in_atim_window(at(9.5)));
        assert!(t.in_atim_window(at(10.5)));
        assert_eq!(t.window_end(at(10.5)), at(11.0));
        assert_eq!(t.window_end(at(15.0)), at(11.0));
    }

    #[test]
    fn earliest_data_time_defers_window() {
        let t = t1();
        assert_eq!(t.earliest_data_time(at(0.5)), at(1.0));
        assert_eq!(t.earliest_data_time(at(3.0)), at(3.0));
        assert_eq!(t.earliest_data_time(at(20.2)), at(21.0));
    }

    #[test]
    fn boundary_of_next_frame() {
        let t = t1();
        // Exactly at a frame start: inside the new window.
        assert!(t.in_atim_window(at(10.0)));
        assert_eq!(t.frame_start(at(10.0)), at(10.0));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn window_must_fit() {
        let _ = PsmTiming::new(SimDuration::from_secs(1.0), SimDuration::from_secs(2.0));
    }
}
