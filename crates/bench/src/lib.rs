//! Shared helpers for the benchmark harness.
//!
//! Every bench target regenerates its paper exhibit once at a scaled-down
//! effort, prints the rows (so `cargo bench` output doubles as a
//! reproduction log), and then times the regeneration with Criterion.

#![forbid(unsafe_code)]

use pbbf_experiments::Effort;

/// The effort preset used by benches: small enough that a full
/// `cargo bench --workspace` stays in the minutes range while preserving
/// every figure's shape.
#[must_use]
pub fn bench_effort() -> Effort {
    let mut e = Effort::quick();
    e.runs = 2;
    e.ideal_grid_side = 13;
    e.ideal_updates = 2;
    e.nz_runs = 20;
    e.net_duration_secs = 120.0;
    e.q_points = 3;
    e.hop_probe_near = 4;
    e.hop_probe_far = 8;
    e
}

/// Prints an exhibit header plus its regenerated rows once per process.
pub fn print_exhibit(id: &str, text: &str) {
    println!("\n===== reproduced {id} (bench effort) =====");
    println!("{text}");
}

pub mod check;
