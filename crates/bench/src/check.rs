//! The bench-regression gate: compares a fresh `BENCH_OUTPUT_JSON`
//! against the committed `BENCH_baseline.json` and fails when a kernel
//! got slower than a tolerance allows.
//!
//! CI runs this after every baseline-bench pass (see the `bench_check`
//! binary and `.github/workflows/ci.yml`), turning the committed
//! snapshot from a courtesy log into an enforced contract: a PR that
//! regresses a kernel beyond the tolerance fails the build and must
//! either fix the regression or consciously refresh the baseline.

use serde::Deserialize;

/// One kernel's timings as serialized by the criterion shim.
#[derive(Debug, Clone, Deserialize)]
pub struct KernelResult {
    /// Kernel id as passed to `bench_function`.
    pub name: String,
    /// Median time per iteration (ns).
    pub median_ns: f64,
    /// Mean time per iteration (ns).
    pub mean_ns: f64,
    /// Fastest sample (ns).
    pub min_ns: f64,
    /// Number of timed samples.
    pub samples: u64,
}

/// A `BENCH_*.json` document (`schema: "pbbf-bench-v1"`).
#[derive(Debug, Clone, Deserialize)]
pub struct BenchReport {
    /// Format tag, `pbbf-bench-v1`.
    pub schema: String,
    /// Seconds since the epoch at write time.
    pub unix_time: u64,
    /// Every kernel's result.
    pub benches: Vec<KernelResult>,
}

impl BenchReport {
    /// Parses a report, rejecting unknown schemas.
    ///
    /// # Errors
    ///
    /// Returns a message when the JSON is malformed or the schema tag is
    /// not `pbbf-bench-v1`.
    pub fn parse(json: &str) -> Result<Self, String> {
        let report: BenchReport =
            serde_json::from_str(json).map_err(|e| format!("malformed bench JSON: {e:?}"))?;
        if report.schema != "pbbf-bench-v1" {
            return Err(format!("unknown bench schema `{}`", report.schema));
        }
        Ok(report)
    }
}

/// One kernel's verdict from [`compare`].
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within tolerance (ratio = fresh / baseline median).
    Ok { ratio: f64 },
    /// Slower than `tolerance × baseline` — the gate fails.
    Regressed { ratio: f64 },
    /// Present in the baseline but missing from the fresh run — a
    /// silently deleted kernel also fails the gate.
    Missing,
}

/// The gate's result for one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelVerdict {
    /// Kernel id.
    pub name: String,
    /// Outcome.
    pub verdict: Verdict,
}

/// Compares `fresh` against `baseline` medians with a multiplicative
/// `tolerance` (e.g. `1.3` fails kernels more than 30% slower).
/// Kernels new in `fresh` pass silently (they will enter the baseline at
/// its next refresh). Returns per-kernel verdicts in baseline order.
///
/// # Panics
///
/// Panics if `tolerance` is not a finite value above 1.0.
#[must_use]
pub fn compare(baseline: &BenchReport, fresh: &BenchReport, tolerance: f64) -> Vec<KernelVerdict> {
    assert!(
        tolerance.is_finite() && tolerance >= 1.0,
        "tolerance {tolerance} must be a finite factor >= 1"
    );
    baseline
        .benches
        .iter()
        .map(|base| {
            let verdict = match fresh.benches.iter().find(|f| f.name == base.name) {
                None => Verdict::Missing,
                Some(f) => {
                    let ratio = f.median_ns / base.median_ns;
                    if ratio > tolerance {
                        Verdict::Regressed { ratio }
                    } else {
                        Verdict::Ok { ratio }
                    }
                }
            };
            KernelVerdict {
                name: base.name.clone(),
                verdict,
            }
        })
        .collect()
}

/// A machine-independent invariant between two kernels of the *same*
/// fresh run: `slow` must stay at least `min_ratio ×` slower than
/// `fast`. Absolute-time comparisons against the committed baseline
/// drift with runner hardware; these ratios do not — a fast-path
/// regression shows up as the pair collapsing toward 1× on any machine.
#[derive(Debug, Clone, Copy)]
pub struct RatioRule {
    /// The optimized kernel.
    pub fast: &'static str,
    /// Its reference (brute/uncached) counterpart.
    pub slow: &'static str,
    /// Minimum `slow / fast` median ratio (set well below the observed
    /// ratio so scheduler noise cannot flake the gate, while a revert
    /// to the reference algorithm still fails loudly).
    pub min_ratio: f64,
}

/// The repo's committed fast-vs-reference pairs (observed ratios in
/// parentheses; floors at roughly half).
pub const RATIO_RULES: &[RatioRule] = &[
    RatioRule {
        fast: "deployment_edges_grid_n5000",
        slow: "deployment_edges_brute_n5000",
        min_ratio: 8.0, // ~15x observed
    },
    RatioRule {
        fast: "channel_churn_dense_delta16",
        slow: "channel_churn_dense_delta16_brute",
        min_ratio: 4.0, // ~11x observed
    },
    RatioRule {
        fast: "net_sim_run_delta16",
        slow: "net_sim_run_delta16_brute",
        min_ratio: 1.5, // ~2.3x observed
    },
    // (`net_sim_run_sparse_q05_shared` lost its rule against `_draw` in
    // PR 5: the shared kernel moved to the long-horizon boundary-engine
    // workload, so the cached-vs-fresh-draw story is carried by the
    // `net_sim_run_sparse_q05` pair alone.)
    RatioRule {
        fast: "net_sim_run_sparse_q05",
        slow: "net_sim_run_sparse_q05_draw",
        min_ratio: 1.5, // ~2.4x observed (cached vs fresh-draw runs)
    },
    RatioRule {
        fast: "net_sim_run_sparse_q05_batched",
        slow: "net_sim_run_sparse_q05_shared",
        min_ratio: 2.0, // ~3x observed (geometric skip vs per-boundary idle walk)
    },
    RatioRule {
        fast: "net_sim_run_sparse_flood_replicas",
        slow: "net_sim_run_sparse_flood_serial",
        min_ratio: 1.5, // lockstep replica batch vs one-run-at-a-time serial loop
    },
    RatioRule {
        fast: "net_sim_run_quiescent_frameskip",
        slow: "net_sim_run_quiescent_geometric",
        min_ratio: 3.0, // frame skip vs per-frame boundary walk on a quiescent horizon
    },
];

/// Checks the [`RATIO_RULES`] within one fresh run. Returns the report
/// text and whether every rule holds; a rule whose kernels are missing
/// from the run fails (the pair is part of the contract).
#[must_use]
pub fn check_ratios(fresh: &BenchReport, rules: &[RatioRule]) -> (String, bool) {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut pass = true;
    let median = |name: &str| {
        fresh
            .benches
            .iter()
            .find(|b| b.name == name)
            .map(|b| b.median_ns)
    };
    for rule in rules {
        match (median(rule.fast), median(rule.slow)) {
            (Some(f), Some(s)) => {
                let ratio = s / f;
                if ratio >= rule.min_ratio {
                    let _ = writeln!(
                        out,
                        "ok       {:<44} {:>6.2}x >= {}x",
                        rule.fast, ratio, rule.min_ratio
                    );
                } else {
                    pass = false;
                    let _ = writeln!(
                        out,
                        "COLLAPSED {:<43} {:>6.2}x < {}x vs {}",
                        rule.fast, ratio, rule.min_ratio, rule.slow
                    );
                }
            }
            _ => {
                pass = false;
                let _ = writeln!(
                    out,
                    "MISSING  {:<44} ratio pair {} / {} absent",
                    rule.fast, rule.slow, rule.fast
                );
            }
        }
    }
    (out, pass)
}

/// Renders the verdicts as the gate's report and returns whether the
/// gate passes.
#[must_use]
pub fn render(verdicts: &[KernelVerdict], tolerance: f64) -> (String, bool) {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut pass = true;
    for v in verdicts {
        match &v.verdict {
            Verdict::Ok { ratio } => {
                let _ = writeln!(out, "ok       {:<44} {:>6.2}x", v.name, ratio);
            }
            Verdict::Regressed { ratio } => {
                pass = false;
                let _ = writeln!(
                    out,
                    "REGRESSED {:<43} {:>6.2}x > {tolerance}x tolerance",
                    v.name, ratio
                );
            }
            Verdict::Missing => {
                pass = false;
                let _ = writeln!(out, "MISSING  {:<44} kernel absent from fresh run", v.name);
            }
        }
    }
    let _ = writeln!(
        out,
        "bench gate: {} ({} kernels, tolerance {tolerance}x)",
        if pass { "PASS" } else { "FAIL" },
        verdicts.len()
    );
    (out, pass)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(entries: &[(&str, f64)]) -> BenchReport {
        BenchReport {
            schema: "pbbf-bench-v1".into(),
            unix_time: 0,
            benches: entries
                .iter()
                .map(|&(name, median_ns)| KernelResult {
                    name: name.into(),
                    median_ns,
                    mean_ns: median_ns,
                    min_ns: median_ns,
                    samples: 10,
                })
                .collect(),
        }
    }

    #[test]
    fn parses_the_committed_baseline_format() {
        let json = r#"{
          "schema": "pbbf-bench-v1",
          "unix_time": 1785373664,
          "benches": [
            {"name": "a", "median_ns": 654953.0, "mean_ns": 652416.1, "min_ns": 629466.0, "samples": 10}
          ]
        }"#;
        let r = BenchReport::parse(json).unwrap();
        assert_eq!(r.benches.len(), 1);
        assert_eq!(r.benches[0].name, "a");
        assert!((r.benches[0].median_ns - 654_953.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_unknown_schema() {
        let json = r#"{"schema": "other", "unix_time": 0, "benches": []}"#;
        assert!(BenchReport::parse(json).unwrap_err().contains("schema"));
    }

    #[test]
    fn within_tolerance_passes() {
        let base = report(&[("k1", 100.0), ("k2", 200.0)]);
        let fresh = report(&[("k1", 125.0), ("k2", 150.0)]);
        let verdicts = compare(&base, &fresh, 1.3);
        assert!(verdicts
            .iter()
            .all(|v| matches!(v.verdict, Verdict::Ok { .. })));
        let (text, pass) = render(&verdicts, 1.3);
        assert!(pass, "{text}");
        assert!(text.contains("PASS"));
    }

    #[test]
    fn slowdown_beyond_tolerance_fails() {
        let base = report(&[("k1", 100.0), ("k2", 200.0)]);
        let fresh = report(&[("k1", 131.0), ("k2", 200.0)]);
        let verdicts = compare(&base, &fresh, 1.3);
        assert_eq!(
            verdicts[0].verdict,
            Verdict::Regressed { ratio: 1.31 },
            "k1 is 1.31x"
        );
        let (text, pass) = render(&verdicts, 1.3);
        assert!(!pass);
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("k1"));
    }

    #[test]
    fn deleted_kernel_fails() {
        let base = report(&[("k1", 100.0), ("k2", 200.0)]);
        let fresh = report(&[("k1", 100.0)]);
        let verdicts = compare(&base, &fresh, 1.3);
        assert_eq!(verdicts[1].verdict, Verdict::Missing);
        let (text, pass) = render(&verdicts, 1.3);
        assert!(!pass);
        assert!(text.contains("MISSING"), "{text}");
    }

    #[test]
    fn new_kernel_in_fresh_is_ignored() {
        let base = report(&[("k1", 100.0)]);
        let fresh = report(&[("k1", 100.0), ("k_new", 1.0)]);
        let verdicts = compare(&base, &fresh, 1.3);
        assert_eq!(verdicts.len(), 1, "only baseline kernels are gated");
        assert!(render(&verdicts, 1.3).1);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn sub_one_tolerance_panics() {
        let r = report(&[]);
        let _ = compare(&r, &r, 0.9);
    }

    #[test]
    fn ratio_rules_hold_and_collapse() {
        let rules = &[RatioRule {
            fast: "f",
            slow: "s",
            min_ratio: 2.0,
        }];
        let good = report(&[("f", 100.0), ("s", 250.0)]);
        let (text, pass) = check_ratios(&good, rules);
        assert!(pass, "{text}");
        let collapsed = report(&[("f", 100.0), ("s", 150.0)]);
        let (text, pass) = check_ratios(&collapsed, rules);
        assert!(!pass);
        assert!(text.contains("COLLAPSED"), "{text}");
        let missing = report(&[("f", 100.0)]);
        let (text, pass) = check_ratios(&missing, rules);
        assert!(!pass);
        assert!(text.contains("MISSING"), "{text}");
    }

    #[test]
    fn committed_ratio_rules_name_real_kernels() {
        // Every rule's kernels must exist in the committed baseline (the
        // gate checks them on the fresh run, which mirrors it).
        let json = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_baseline.json"
        ))
        .expect("committed baseline readable");
        let baseline = BenchReport::parse(&json).unwrap();
        let (text, pass) = check_ratios(&baseline, RATIO_RULES);
        assert!(pass, "committed baseline violates its own ratios:\n{text}");
    }
}
