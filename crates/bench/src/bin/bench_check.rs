//! CI's bench-regression gate.
//!
//! ```text
//! bench_check <BENCH_baseline.json> <fresh.json> [--tolerance 1.3]
//! ```
//!
//! Exits non-zero when any kernel in the baseline is more than
//! `tolerance ×` slower in the fresh run, or missing from it. See
//! [`pbbf_bench::check`] for the comparison rules.

use pbbf_bench::check::{check_ratios, compare, render, BenchReport, RATIO_RULES};

fn fail(msg: &str) -> ! {
    eprintln!("bench_check: {msg}");
    eprintln!("usage: bench_check <baseline.json> <fresh.json> [--tolerance 1.3]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance: f64 = 1.3;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--tolerance" {
            let v = it
                .next()
                .unwrap_or_else(|| fail("--tolerance needs a value"));
            tolerance = v
                .parse()
                .unwrap_or_else(|_| fail(&format!("bad tolerance `{v}`")));
            if !(tolerance.is_finite() && tolerance >= 1.0) {
                fail(&format!("tolerance {tolerance} must be >= 1"));
            }
        } else {
            paths.push(arg.clone());
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        fail("expected exactly two JSON paths");
    };

    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")))
    };
    let baseline = BenchReport::parse(&read(baseline_path))
        .unwrap_or_else(|e| fail(&format!("{baseline_path}: {e}")));
    let fresh = BenchReport::parse(&read(fresh_path))
        .unwrap_or_else(|e| fail(&format!("{fresh_path}: {e}")));

    let verdicts = compare(&baseline, &fresh, tolerance);
    let (report, pass) = render(&verdicts, tolerance);
    print!("{report}");
    // Hardware-independent invariants within the fresh run: fast kernels
    // must stay decisively ahead of their reference counterparts even on
    // runners whose absolute times drift from the committed baseline's.
    let (ratio_report, ratios_pass) = check_ratios(&fresh, RATIO_RULES);
    print!("{ratio_report}");
    if !pass || !ratios_pass {
        std::process::exit(1);
    }
}
