//! Bench targets regenerating the percolation/analysis figures
//! (Figs 6, 7, 12).

use criterion::{criterion_group, criterion_main, Criterion};
use pbbf_bench::{bench_effort, print_exhibit};
use pbbf_experiments::Experiment;

fn bench_percolation_figures(c: &mut Criterion) {
    let effort = bench_effort();
    for exp in [Experiment::Fig06, Experiment::Fig07, Experiment::Fig12] {
        print_exhibit(exp.id(), &exp.run(&effort, 2005).render_text());
        c.bench_function(exp.id(), |b| b.iter(|| exp.run(&effort, 2005)));
    }
}

criterion_group! {
    name = percolation_figures;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_percolation_figures
}
criterion_main!(percolation_figures);
