//! Bench targets regenerating the Section-5 realistic-simulation figures
//! (Figs 13–18).

use criterion::{criterion_group, criterion_main, Criterion};
use pbbf_bench::{bench_effort, print_exhibit};
use pbbf_experiments::Experiment;

fn bench_net_figures(c: &mut Criterion) {
    let effort = bench_effort();
    for exp in [
        Experiment::Fig13,
        Experiment::Fig14,
        Experiment::Fig15,
        Experiment::Fig16,
        Experiment::Fig17,
        Experiment::Fig18,
    ] {
        print_exhibit(exp.id(), &exp.run(&effort, 2005).render_text());
        c.bench_function(exp.id(), |b| b.iter(|| exp.run(&effort, 2005)));
    }
}

criterion_group! {
    name = net_figures;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_net_figures
}
criterion_main!(net_figures);
