//! The perf-trajectory baseline: a small, fixed set of kernels whose
//! results are snapshotted into `BENCH_baseline.json` at the repo root so
//! future optimization PRs have concrete numbers to beat.
//!
//! Regenerate the snapshot with:
//!
//! ```text
//! BENCH_OUTPUT_JSON=BENCH_baseline.json cargo bench --bench baseline
//! ```
//!
//! Kernels:
//!
//! * `deployment_edges_grid_n5000` vs `deployment_edges_brute_n5000` — the
//!   spatial-hash unit-disk edge build against the O(n²) reference at
//!   N = 5000, Δ = 10 (the acceptance criterion is ≥10× here).
//! * `deployment_build_n10000` — full 10k-node deployment construction,
//!   infeasible with the brute path at interactive timescales.
//! * `event_queue_churn_100k` — schedule/cancel/pop mix exercising the
//!   generation-stamped slot queue.
//! * `net_sim_run_120s` — one end-to-end realistic-simulator run.
//! * `fig06_quick_effort` — one full figure regeneration at quick effort.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pbbf_des::{EventQueue, SimRng, SimTime};
use pbbf_experiments::{fig06, Effort};
use pbbf_net_sim::{NetConfig, NetMode, NetSim};
use pbbf_topology::{
    area_for_density, unit_disk_edges, unit_disk_edges_brute, Point2, RandomDeployment,
};

fn positions_at_density(n: usize, range: f64, delta: f64, seed: u64) -> (Vec<Point2>, f64) {
    let side = area_for_density(range, n, delta).sqrt();
    let mut rng = SimRng::new(seed);
    let positions = (0..n)
        .map(|_| Point2::new(rng.uniform01() * side, rng.uniform01() * side))
        .collect();
    (positions, side)
}

fn deployment_edges(c: &mut Criterion) {
    let (positions, _) = positions_at_density(5000, 30.0, 10.0, 42);
    let mut grid = unit_disk_edges(&positions, 30.0);
    grid.sort_unstable();
    assert_eq!(
        grid,
        unit_disk_edges_brute(&positions, 30.0),
        "grid and brute-force edge sets must agree"
    );
    c.bench_function("deployment_edges_grid_n5000", |b| {
        b.iter(|| unit_disk_edges(black_box(&positions), 30.0))
    });
    c.bench_function("deployment_edges_brute_n5000", |b| {
        b.iter(|| unit_disk_edges_brute(black_box(&positions), 30.0))
    });
}

fn deployment_build_10k(c: &mut Criterion) {
    let (positions, side) = positions_at_density(10_000, 30.0, 10.0, 43);
    c.bench_function("deployment_build_n10000", |b| {
        b.iter(|| RandomDeployment::from_positions(black_box(positions.clone()), 30.0, side))
    });
}

fn event_queue_churn(c: &mut Criterion) {
    c.bench_function("event_queue_churn_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut handles = Vec::with_capacity(64);
            let mut acc = 0u64;
            // A MAC-like mix: burst-schedule timers, cancel half of them,
            // drain some, repeat.
            for round in 0..1000u64 {
                let base = SimTime::from_nanos(round * 1_000_000);
                handles.clear();
                for i in 0..100u64 {
                    handles.push(q.schedule(base + pbbf_des::SimDuration::from_nanos(i * 7919), i));
                }
                for h in handles.iter().skip(1).step_by(2) {
                    q.cancel(*h);
                }
                for _ in 0..50 {
                    if let Some((_, e)) = q.pop() {
                        acc = acc.wrapping_add(e);
                    }
                }
            }
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            acc
        })
    });
}

fn net_sim_run(c: &mut Criterion) {
    let mut cfg = NetConfig::table2();
    cfg.duration_secs = 120.0;
    let sim = NetSim::new(
        cfg,
        NetMode::SleepScheduled(pbbf_core::PbbfParams::new(0.25, 0.25).expect("valid")),
    );
    c.bench_function("net_sim_run_120s", |b| b.iter(|| sim.run(4)));
}

fn figure_quick(c: &mut Criterion) {
    let effort = Effort::quick();
    c.bench_function("fig06_quick_effort", |b| b.iter(|| fig06(&effort, 2005)));
}

criterion_group! {
    name = baseline;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = deployment_edges, deployment_build_10k, event_queue_churn, net_sim_run, figure_quick
}
criterion_main!(baseline);
