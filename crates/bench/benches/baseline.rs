//! The perf-trajectory baseline: a small, fixed set of kernels whose
//! results are snapshotted into `BENCH_baseline.json` at the repo root so
//! future optimization PRs have concrete numbers to beat.
//!
//! Regenerate the snapshot with:
//!
//! ```text
//! BENCH_OUTPUT_JSON=BENCH_baseline.json cargo bench -p pbbf-bench --bench baseline
//! ```
//!
//! (A relative `BENCH_OUTPUT_JSON` resolves against the workspace root —
//! the criterion shim anchors it at the nearest ancestor `Cargo.lock` —
//! so this works from any directory inside the repo.)
//!
//! CI enforces this snapshot: the `bench-gate` job re-runs every kernel
//! and `bench_check` fails the build when one is more than 30% slower
//! than the committed numbers (see `crates/bench/src/check.rs`).
//!
//! Kernels:
//!
//! * `deployment_edges_grid_n5000` vs `deployment_edges_brute_n5000` — the
//!   spatial-hash unit-disk edge build against the O(n²) reference at
//!   N = 5000, Δ = 10 (the acceptance criterion is ≥10× here).
//! * `deployment_build_n10000` — full 10k-node deployment construction,
//!   infeasible with the brute path at interactive timescales.
//! * `event_queue_churn_100k` — schedule/cancel/pop mix exercising the
//!   generation-stamped slot queue.
//! * `net_sim_run_120s` — one end-to-end realistic-simulator run.
//! * `channel_churn_dense_delta16` vs `channel_churn_dense_delta16_brute`
//!   — a CSMA-like begin/carrier-sense/end mix on a dense (Δ = 16)
//!   deployment, incremental engine against the O(active × degree)
//!   reference (the PR-2 acceptance criterion is ≥2× here).
//! * `net_sim_run_delta16` vs `net_sim_run_delta16_brute` — a dense
//!   end-to-end run on each channel engine.
//! * `net_sim_run_sparse_q05_shared` vs `net_sim_run_sparse_q05_batched`
//!   — a 10k-node low-duty-cycle (q = 0.05) single-flood run over a long
//!   idle horizon on the `Arc`-shared cached deployment, settled with
//!   exact per-boundary idle replay (`Dense`) and with geometric-skip
//!   batching (`Geometric`) respectively: the boundary-engine ratio.
//! * `net_sim_run_sparse_q05` vs `net_sim_run_sparse_q05_draw` — the
//!   same network on the PR-3 two-flood 600 s workload, on a per-run
//!   *copied* deployment (the pre-Arc `run_on` semantics, kept so the
//!   kernel stays comparable with its committed history) and with the
//!   per-run fresh deployment draw respectively: the per-run setup-cost
//!   ratio. The copy itself is a small slice of the run (~0.5 MB memcpy
//!   under ~15 ms of simulation), so the proof that the shared path
//!   drops it is the allocation-count test
//!   `crates/bench/tests/alloc_shared.rs`, not a wall-clock ratio.
//! * `net_sim_run_sparse_flood_replicas` vs `net_sim_run_sparse_flood_serial`
//!   — R = 8 Monte Carlo replicas of a sparse-flood scenario over one
//!   shared deployment, advanced in lockstep by `NetSim::run_replicas`
//!   against the serial one-`run_on`-per-seed loop (bitwise-equal
//!   results; the acceptance criterion is ≥1.5× here).
//! * `net_sim_run_quiescent_frameskip` vs `net_sim_run_quiescent_geometric`
//!   — a 500-node two-hour single-flood scenario (λ = 0.000125,
//!   PBBF(1, 1): all-immediate forwarding, draw-free always-awake coin)
//!   at the 50 ms beacon interval, on the frame-skip and geometric
//!   boundary engines. Results are asserted bitwise equal before timing
//!   (frame skip's contract); the ratio isolates the ~288k empty
//!   boundary events the jump deletes (acceptance: ≥3×).
//! * `fig06_quick_effort` — one full figure regeneration at quick effort.
//!
//! Kernels that resolve deployments through the process-wide registry do
//! so via [`get_or_draw_tracked`], which records that kernel's cache
//! hit/miss delta under an `extras` key — the report shows *which*
//! kernel's geometry hit or missed, not just an end-of-run total.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pbbf_des::{EventQueue, SimDuration, SimRng, SimTime};
use pbbf_experiments::{fig06, Effort};
use pbbf_net_sim::{BoundaryEngine, CachedDeployment, DeploymentCache, NetConfig, NetMode, NetSim};
use pbbf_radio::{BruteChannel, Channel, CollisionChannel, Frame};
use pbbf_topology::{
    area_for_density, unit_disk_edges, unit_disk_edges_brute, NodeId, Point2, RandomDeployment,
    Topology,
};

/// [`DeploymentCache::global().get_or_draw`] with per-kernel telemetry:
/// the registry counter movement caused by *this* resolution lands in
/// the JSON report as `extras["deployment_cache_<kernel>"]`, so the
/// snapshot records which kernel's geometry hit the cache and which drew
/// fresh (one end-of-run total cannot attribute either).
fn get_or_draw_tracked(
    kernel: &str,
    cfg: &NetConfig,
    seed: u64,
) -> std::sync::Arc<CachedDeployment> {
    let before = DeploymentCache::global().stats();
    let deployment = DeploymentCache::global().get_or_draw(cfg, seed);
    let after = DeploymentCache::global().stats();
    let (hits, misses) = (after.hits - before.hits, after.misses - before.misses);
    criterion::set_json_extra(
        &format!("deployment_cache_{kernel}"),
        format!(
            "{{\"hits\": {hits}, \"misses\": {misses}, \"evictions\": {}, \"len\": {}, \"capacity\": {}}}",
            after.evictions - before.evictions,
            after.len,
            after.capacity
        ),
    );
    println!("deployment cache [{kernel}]: {hits} hits, {misses} misses");
    deployment
}

fn positions_at_density(n: usize, range: f64, delta: f64, seed: u64) -> (Vec<Point2>, f64) {
    let side = area_for_density(range, n, delta).sqrt();
    let mut rng = SimRng::new(seed);
    let positions = (0..n)
        .map(|_| Point2::new(rng.uniform01() * side, rng.uniform01() * side))
        .collect();
    (positions, side)
}

fn deployment_edges(c: &mut Criterion) {
    let (positions, _) = positions_at_density(5000, 30.0, 10.0, 42);
    let mut grid = unit_disk_edges(&positions, 30.0);
    grid.sort_unstable();
    assert_eq!(
        grid,
        unit_disk_edges_brute(&positions, 30.0),
        "grid and brute-force edge sets must agree"
    );
    c.bench_function("deployment_edges_grid_n5000", |b| {
        b.iter(|| unit_disk_edges(black_box(&positions), 30.0))
    });
    c.bench_function("deployment_edges_brute_n5000", |b| {
        b.iter(|| unit_disk_edges_brute(black_box(&positions), 30.0))
    });
}

fn deployment_build_10k(c: &mut Criterion) {
    let (positions, side) = positions_at_density(10_000, 30.0, 10.0, 43);
    c.bench_function("deployment_build_n10000", |b| {
        b.iter(|| RandomDeployment::from_positions(black_box(positions.clone()), 30.0, side))
    });
}

fn event_queue_churn(c: &mut Criterion) {
    c.bench_function("event_queue_churn_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut handles = Vec::with_capacity(64);
            let mut acc = 0u64;
            // A MAC-like mix: burst-schedule timers, cancel half of them,
            // drain some, repeat.
            for round in 0..1000u64 {
                let base = SimTime::from_nanos(round * 1_000_000);
                handles.clear();
                for i in 0..100u64 {
                    handles.push(q.schedule(base + pbbf_des::SimDuration::from_nanos(i * 7919), i));
                }
                for h in handles.iter().skip(1).step_by(2) {
                    q.cancel(*h);
                }
                for _ in 0..50 {
                    if let Some((_, e)) = q.pop() {
                        acc = acc.wrapping_add(e);
                    }
                }
            }
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            acc
        })
    });
}

/// A CSMA-like churn: every millisecond, complete due transmissions and
/// start up to four new ones from randomly probed idle nodes (each probe
/// carrier-senses first, like the MAC does). Returns a checksum of clean
/// deliveries and suppressed probes so the workload can't be optimized
/// away — and so both engines can be asserted to agree on it.
fn channel_churn<C: CollisionChannel>(ch: &mut C, steps: u32) -> u64 {
    let n = ch.topology().len() as u64;
    let air = SimDuration::from_millis(20);
    let mut rng = SimRng::new(99);
    let mut inflight: std::collections::VecDeque<(SimTime, NodeId)> =
        std::collections::VecDeque::new();
    let mut out = Vec::new();
    let mut acc = 0u64;
    for step in 0..steps {
        let now = SimTime::from_nanos(u64::from(step) * 1_000_000);
        while let Some(&(end, node)) = inflight.front() {
            if end > now {
                break;
            }
            inflight.pop_front();
            let _ = ch.end_tx_into(end, node, &mut out);
            acc += out.iter().filter(|d| d.clean).count() as u64;
        }
        for _ in 0..4 {
            let node = NodeId(rng.below(n) as u32);
            // carrier_busy covers own transmissions too.
            if ch.carrier_busy(node) {
                acc += 1;
                continue;
            }
            let end = ch.begin_tx(now, Frame::beacon(node), air);
            inflight.push_back((end, node));
        }
    }
    while let Some((end, node)) = inflight.pop_front() {
        let _ = ch.end_tx_into(end, node, &mut out);
        acc += out.iter().filter(|d| d.clean).count() as u64;
    }
    acc
}

fn dense_delta16_topology() -> Topology {
    let mut rng = SimRng::new(7);
    RandomDeployment::connected_with_density(300, 30.0, 16.0, 1000, &mut rng)
        .expect("dense deployment")
        .into_topology()
}

fn channel_churn_dense(c: &mut Criterion) {
    let topo = dense_delta16_topology();
    let fast = channel_churn(&mut Channel::new(topo.clone()), 2000);
    let brute = channel_churn(&mut BruteChannel::new(topo.clone()), 2000);
    assert_eq!(fast, brute, "engines must agree on the churn checksum");
    c.bench_function("channel_churn_dense_delta16", |b| {
        b.iter(|| channel_churn(&mut Channel::new(black_box(topo.clone())), 2000))
    });
    c.bench_function("channel_churn_dense_delta16_brute", |b| {
        b.iter(|| channel_churn(&mut BruteChannel::new(black_box(topo.clone())), 2000))
    });
}

fn net_sim_run(c: &mut Criterion) {
    let mut cfg = NetConfig::table2();
    cfg.duration_secs = 120.0;
    let sim = NetSim::new(
        cfg,
        NetMode::SleepScheduled(pbbf_core::PbbfParams::new(0.25, 0.25).expect("valid")),
    );
    c.bench_function("net_sim_run_120s", |b| b.iter(|| sim.run(4)));
}

fn net_sim_run_dense(c: &mut Criterion) {
    // Where the channel engine dominates: a dense (Δ = 16), large (1000
    // nodes), busy (λ = 1) scenario with many concurrent transmissions —
    // Table-2 traffic (50 nodes, λ = 0.01) is too sparse to tell the
    // engines apart. Stays on the dense boundary engine: almost every
    // node is busy almost every beacon here, so there is nothing for
    // geometric skip to batch, and the kernel keeps its committed
    // history comparable.
    let mut cfg = NetConfig::table2();
    cfg.nodes = 1000;
    cfg.duration_secs = 120.0;
    cfg.delta = 16.0;
    cfg.lambda = 1.0;
    cfg.boundary_engine = BoundaryEngine::Dense;
    let sim = NetSim::new(
        cfg,
        NetMode::SleepScheduled(pbbf_core::PbbfParams::new(0.5, 0.5).expect("valid")),
    );
    assert_eq!(sim.run(4), sim.run_brute(4), "engines must agree");
    c.bench_function("net_sim_run_delta16", |b| b.iter(|| sim.run(4)));
    c.bench_function("net_sim_run_delta16_brute", |b| b.iter(|| sim.run_brute(4)));
}

fn net_sim_run_sparse(c: &mut Criterion) {
    // Where the event loop dominates: a large (10000 nodes) rare-traffic
    // network at a low duty cycle (q = 0.05). Two scenarios share the
    // kernel family:
    //
    // * The PR-3 scenario (λ = 0.002 over 600 s — two floods filling
    //   most of the horizon) for `net_sim_run_sparse_q05` (the pre-Arc
    //   per-run deployment *copy*) vs `net_sim_run_sparse_q05_draw` (the
    //   full connected-deployment rejection sampling every run). Their
    //   story is per-run setup cost against a fixed amount of
    //   simulation, so they keep the committed-history workload.
    // * The boundary-engine scenario (λ = 0.000125 over 7200 s — one
    //   flood, then ~670 beacon intervals of pure idle steady state) for
    //   `net_sim_run_sparse_q05_shared` (exact per-boundary idle replay,
    //   `BoundaryEngine::Dense`) vs `net_sim_run_sparse_q05_batched`
    //   (the same registry-shared run on the default geometric-skip
    //   engine). The PR-3 horizon spent ~75% of its wall clock flooding
    //   — work identical on both engines — which measured the flood, not
    //   the idle walk the kernel exists to track; the long-horizon
    //   single-flood form is the regime sweeps actually spend their time
    //   in, and the batched-vs-shared ratio isolates exactly what
    //   geometric skip buys. (Workload changed in PR 5: `_shared`
    //   numbers are not comparable with the PR-4 snapshot.)
    let mut cfg = NetConfig::table2();
    cfg.nodes = 10_000;
    cfg.duration_secs = 600.0;
    cfg.delta = 10.0;
    cfg.lambda = 0.002;
    cfg.boundary_engine = BoundaryEngine::Dense;
    let mut shared_cfg = cfg;
    shared_cfg.duration_secs = 7200.0;
    shared_cfg.lambda = 0.000125;
    let mut batched_cfg = shared_cfg;
    batched_cfg.boundary_engine = BoundaryEngine::Geometric;
    // Resolved through the process-wide registry (not a direct draw) so
    // the report's cache counters reflect how the sweeps actually obtain
    // deployments; the flood kernel below re-resolves the same scenario
    // and hits.
    let deployment = get_or_draw_tracked("net_sim_run_sparse_q05", &cfg, 4);
    let mode = NetMode::SleepScheduled(pbbf_core::PbbfParams::new(0.25, 0.05).expect("valid"));
    let sim = NetSim::new(cfg, mode);
    let shared_sim = NetSim::new(shared_cfg, mode);
    let batched_sim = NetSim::new(batched_cfg, mode);
    let shared = shared_sim.run_on(4, &deployment);
    assert_eq!(
        shared,
        shared_sim.run(4),
        "shared deployment must reproduce run"
    );
    let batched = batched_sim.run_on(4, &deployment);
    assert_eq!(
        batched.updates_generated(),
        shared.updates_generated(),
        "engines must simulate the same workload"
    );
    c.bench_function("net_sim_run_sparse_q05_shared", |b| {
        b.iter(|| shared_sim.run_on(4, &deployment))
    });
    c.bench_function("net_sim_run_sparse_q05_batched", |b| {
        b.iter(|| batched_sim.run_on(4, &deployment))
    });
    c.bench_function("net_sim_run_sparse_q05", |b| {
        b.iter(|| {
            let copied = CachedDeployment::new(deployment.topology().clone(), deployment.source());
            sim.run_on(4, &copied)
        })
    });
    c.bench_function("net_sim_run_sparse_q05_draw", |b| b.iter(|| sim.run(4)));
}

fn net_sim_run_flood_replicas(c: &mut Criterion) {
    // Lockstep replica batching on the flood path: R = 8 Monte Carlo
    // replicas of a sparse-flood scenario (one flood, then two hours of
    // beacon steady state at the 802.11-style 100 ms beacon interval),
    // all over one registry-shared deployment. The mode is PBBF(0.25, 1)
    // — the always-awake corner, whose sleep coin is deterministic — so
    // the horizon's cost is the beacon-boundary machinery itself, which
    // is exactly what the batch shares: the serial kernel pays the
    // 144k-event boundary walk once per replica, the batched kernel
    // (`NetSim::run_replicas`) pays it once per *batch*, sweeping all
    // lanes per event, with per-lane event heaps keeping each replica's
    // flood burst cache-hot. The boundary-seconds tables and the
    // hop-distance BFS are likewise computed once per batch. Results are
    // asserted bitwise equal before timing, so the pair measures the
    // same work — `bench_check` enforces the speedup as a
    // machine-independent RATIO_RULE (an operation-count gap, not a
    // cache artifact: ~7/8 of the shared-event work is deleted).
    let mut cfg = NetConfig::table2();
    cfg.nodes = 1000;
    cfg.duration_secs = 7200.0;
    cfg.delta = 10.0;
    cfg.lambda = 0.000125;
    cfg.beacon_interval_secs = 0.1;
    cfg.atim_window_secs = 0.01;
    cfg.boundary_engine = BoundaryEngine::Geometric;
    const SEEDS: [u64; 8] = [4, 11, 18, 25, 32, 39, 46, 53];
    let deployment = get_or_draw_tracked("net_sim_run_sparse_flood_replicas", &cfg, 4);
    let mode = NetMode::SleepScheduled(pbbf_core::PbbfParams::new(0.25, 1.0).expect("valid"));
    let sim = NetSim::new(cfg, mode);
    let serial: Vec<_> = SEEDS.iter().map(|&s| sim.run_on(s, &deployment)).collect();
    assert_eq!(
        sim.run_replicas(&SEEDS, &deployment),
        serial,
        "lockstep batching must be bitwise exact"
    );
    c.bench_function("net_sim_run_sparse_flood_replicas", |b| {
        b.iter(|| sim.run_replicas(black_box(&SEEDS), &deployment))
    });
    c.bench_function("net_sim_run_sparse_flood_serial", |b| {
        b.iter(|| {
            SEEDS
                .iter()
                .map(|&s| sim.run_on(black_box(s), &deployment))
                .collect::<Vec<_>>()
        })
    });
}

fn net_sim_run_quiescent(c: &mut Criterion) {
    // The frame-skip engine's home regime: a two-hour sparse horizon
    // (λ = 0.000125 → exactly one update at t = AW/2, flooded through
    // the whole network within a few beacons, then nothing) at the
    // 50 ms beacon interval — the shortest the Mica2 PHY admits, its
    // 26.7 ms data airtime having to fit inside one data phase. Mode is
    // PBBF(1, 1): all-immediate forwarding (no announce drain) and the
    // draw-free always-awake coin — so once the flood's carried traffic
    // ends, *no* node holds a frame or window membership and no traffic
    // event is pending. The geometric engine still walks every
    // FrameStart/WindowEnd pair — ~288k empty boundary events across
    // the horizon — while frame skip detects the quiescence at the
    // first idle frame start and settles the rest of the horizon in one
    // O(1) jump. 500 nodes keeps the flood a real multi-hop spread
    // while the walk still dominates the geometric run; at the sparse
    // kernel's 10k nodes the one flood costs several times the entire
    // walk and the pair would measure the flood instead. Results are
    // asserted bitwise equal before timing (the engine's contract), so
    // the ratio — enforced ≥3× by `bench_check` — counts exactly the
    // deleted no-op boundary events.
    let mut skip_cfg = NetConfig::table2();
    skip_cfg.nodes = 500;
    skip_cfg.duration_secs = 7200.0;
    skip_cfg.delta = 10.0;
    skip_cfg.lambda = 0.000125;
    skip_cfg.beacon_interval_secs = 0.05;
    skip_cfg.atim_window_secs = 0.005;
    skip_cfg.boundary_engine = BoundaryEngine::FrameSkip;
    let mut geo_cfg = skip_cfg;
    geo_cfg.boundary_engine = BoundaryEngine::Geometric;
    // A fresh geometry (no other kernel runs 500 nodes), so the
    // per-kernel extras record this kernel's miss + insert — the other
    // tracked kernels' entries attribute their hits the same way.
    let deployment = get_or_draw_tracked("net_sim_run_quiescent_frameskip", &skip_cfg, 4);
    let mode = NetMode::SleepScheduled(pbbf_core::PbbfParams::new(1.0, 1.0).expect("valid"));
    let skip_sim = NetSim::new(skip_cfg, mode);
    let geo_sim = NetSim::new(geo_cfg, mode);
    let skip = skip_sim.run_on(4, &deployment);
    assert_eq!(
        skip,
        geo_sim.run_on(4, &deployment),
        "frame skip must be bitwise geometric"
    );
    assert_eq!(skip.updates_generated(), 1, "exactly one flood");
    c.bench_function("net_sim_run_quiescent_frameskip", |b| {
        b.iter(|| skip_sim.run_on(black_box(4), &deployment))
    });
    c.bench_function("net_sim_run_quiescent_geometric", |b| {
        b.iter(|| geo_sim.run_on(black_box(4), &deployment))
    });
}

fn figure_quick(c: &mut Criterion) {
    let effort = Effort::quick();
    c.bench_function("fig06_quick_effort", |b| b.iter(|| fig06(&effort, 2005)));
}

criterion_group! {
    name = baseline;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = deployment_edges, deployment_build_10k, event_queue_churn, channel_churn_dense,
        net_sim_run, net_sim_run_dense, net_sim_run_sparse, net_sim_run_flood_replicas,
        net_sim_run_quiescent, figure_quick
}
criterion_main!(baseline);
