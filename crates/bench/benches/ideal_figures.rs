//! Bench targets regenerating the Section-4 idealized-simulation figures
//! (Figs 4, 5, 8, 9, 10, 11).

use criterion::{criterion_group, criterion_main, Criterion};
use pbbf_bench::{bench_effort, print_exhibit};
use pbbf_experiments::Experiment;

fn bench_ideal_figures(c: &mut Criterion) {
    let effort = bench_effort();
    for exp in [
        Experiment::Fig04,
        Experiment::Fig05,
        Experiment::Fig08,
        Experiment::Fig09,
        Experiment::Fig10,
        Experiment::Fig11,
    ] {
        print_exhibit(exp.id(), &exp.run(&effort, 2005).render_text());
        c.bench_function(exp.id(), |b| b.iter(|| exp.run(&effort, 2005)));
    }
}

criterion_group! {
    name = ideal_figures;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_ideal_figures
}
criterion_main!(ideal_figures);
