//! Bench targets for the extension experiments (gossip-vs-PBBF,
//! adaptive convergence, latency tails).

use criterion::{criterion_group, criterion_main, Criterion};
use pbbf_bench::{bench_effort, print_exhibit};
use pbbf_experiments::{
    ext_adaptive_convergence, ext_gossip_vs_pbbf, ext_k_tradeoff, ext_latency_tail, Effort,
};
use pbbf_metrics::Figure;

type ExhibitFn = fn(&Effort, u64) -> Figure;

fn bench_extensions(c: &mut Criterion) {
    let effort = bench_effort();
    let exhibits: [(&str, ExhibitFn); 4] = [
        ("ext_gossip_vs_pbbf", ext_gossip_vs_pbbf),
        ("ext_adaptive_convergence", ext_adaptive_convergence),
        ("ext_latency_tail", ext_latency_tail),
        ("ext_k_tradeoff", ext_k_tradeoff),
    ];
    for (id, f) in exhibits {
        print_exhibit(id, &f(&effort, 2005).render_text());
        c.bench_function(id, |b| b.iter(|| f(&effort, 2005)));
    }
}

criterion_group! {
    name = extensions;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_extensions
}
criterion_main!(extensions);
