//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * `ablation_chaining` — immediate forwards chaining multiple hops per
//!   frame vs at most one immediate hop per frame.
//! * `ablation_source_announce` — the source applying `p` (Fig. 2) vs
//!   always announcing.
//! * `ablation_duplicates` — redundant-reception load vs density Δ, the
//!   cost the duplicate filter avoids re-forwarding.
//! * `ablation_nz_convolution` — microcanonical crossing vs binomial
//!   convolution threshold estimates.

use criterion::{criterion_group, criterion_main, Criterion};
use pbbf_core::PbbfParams;
use pbbf_des::SimRng;
use pbbf_ideal_sim::{IdealConfig, IdealSim, Mode};
use pbbf_net_sim::{NetConfig, NetMode, NetSim};
use pbbf_percolation::NewmanZiff;
use pbbf_topology::Grid;

fn ideal_sim(side: u32, p: f64, q: f64) -> IdealSim {
    let mut cfg = IdealConfig::table1();
    cfg.grid_side = side;
    cfg.updates = 2;
    IdealSim::new(
        cfg,
        Mode::SleepScheduled(PbbfParams::new(p, q).expect("valid")),
    )
}

fn ablation_chaining(c: &mut Criterion) {
    let sim = ideal_sim(17, 0.75, 1.0);
    let with = sim.run_with(1, true, false);
    let without = sim.run_with(1, false, false);
    println!(
        "\n===== ablation: immediate-forward chaining =====\n\
         per-hop latency with chaining    {:.2} s\n\
         per-hop latency without chaining {:.2} s",
        with.mean_per_hop_latency().unwrap_or(f64::NAN),
        without.mean_per_hop_latency().unwrap_or(f64::NAN),
    );
    c.bench_function("ablation_chaining_on", |b| {
        b.iter(|| sim.run_with(1, true, false))
    });
    c.bench_function("ablation_chaining_off", |b| {
        b.iter(|| sim.run_with(1, false, false))
    });
}

fn ablation_source_announce(c: &mut Criterion) {
    let sim = ideal_sim(17, 0.75, 0.75);
    let fig2 = sim.run_with(2, true, false);
    let forced = sim.run_with(2, true, true);
    println!(
        "\n===== ablation: source applies p (Fig. 2) vs always announces =====\n\
         delivered fraction, source uses p      {:.3}\n\
         delivered fraction, source announces   {:.3}",
        fig2.mean_delivered_fraction(),
        forced.mean_delivered_fraction(),
    );
    c.bench_function("ablation_source_p", |b| {
        b.iter(|| sim.run_with(2, true, false))
    });
    c.bench_function("ablation_source_announce", |b| {
        b.iter(|| sim.run_with(2, true, true))
    });
}

fn ablation_duplicates(c: &mut Criterion) {
    println!("\n===== ablation: redundant receptions vs density =====");
    for delta in [8.0, 13.0, 18.0] {
        let mut cfg = NetConfig::table2();
        cfg.duration_secs = 120.0;
        cfg.delta = delta;
        let sim = NetSim::new(cfg, NetMode::AlwaysOn);
        let s = sim.run(3);
        let n = cfg.nodes as f64;
        let updates = f64::from(s.updates_generated().max(1));
        // Each node transmits once per update in a flood; every neighbor
        // hears it, so receptions scale with mean degree while *useful*
        // receptions stay at one per node per update.
        println!(
            "delta {delta:>4}: mean degree {:.1}, data tx {:>4}, redundancy ~{:.1}x",
            s.mean_degree,
            s.data_tx,
            s.mean_degree * s.data_tx as f64 / (n * updates).max(1.0)
        );
    }
    let mut cfg = NetConfig::table2();
    cfg.duration_secs = 120.0;
    let sim = NetSim::new(cfg, NetMode::AlwaysOn);
    c.bench_function("ablation_duplicates_flood", |b| b.iter(|| sim.run(3)));
}

fn ablation_nz_convolution(c: &mut Criterion) {
    let grid = Grid::square(20);
    let nz = NewmanZiff::new(grid.topology(), grid.center());
    let stats = nz.average_bond_sweeps(40, &mut SimRng::new(4));
    let micro = stats.crossing_fraction(0.9).unwrap_or(f64::NAN);
    let canon = stats.canonical_threshold(0.9, 200);
    println!(
        "\n===== ablation: Newman-Ziff estimators (20x20, 90% coverage) =====\n\
         microcanonical crossing fraction {micro:.3}\n\
         canonical (convolved) threshold  {canon:.3}"
    );
    c.bench_function("ablation_nz_microcanonical", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(5);
            nz.bond_crossing(0.9, &mut rng)
        })
    });
    c.bench_function("ablation_nz_convolution", |b| {
        b.iter(|| stats.canonical_threshold(0.9, 200))
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = ablation_chaining, ablation_source_announce, ablation_duplicates, ablation_nz_convolution
}
criterion_main!(ablations);
