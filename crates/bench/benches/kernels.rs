//! Performance benches of the hot kernels underneath the experiments:
//! the event queue, the RNG, union-find sweeps, BFS, one idealized
//! dissemination and one realistic run.

use criterion::{criterion_group, criterion_main, Criterion};
use pbbf_core::PbbfParams;
use pbbf_des::{EventQueue, SimRng, SimTime};
use pbbf_ideal_sim::{IdealConfig, IdealSim, Mode};
use pbbf_net_sim::{NetConfig, NetMode, NetSim};
use pbbf_percolation::{NewmanZiff, UnionFind};
use pbbf_topology::Grid;
use rand::RngCore;

fn event_queue_throughput(c: &mut Criterion) {
    c.bench_function("event_queue_10k_schedule_pop", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            sum
        })
    });
}

fn rng_throughput(c: &mut Criterion) {
    c.bench_function("rng_1m_draws", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            acc
        })
    });
}

fn union_find_sweep(c: &mut Criterion) {
    let grid = Grid::square(40);
    let edges = grid.topology().edges();
    c.bench_function("union_find_40x40_full_sweep", |b| {
        b.iter(|| {
            let mut uf = UnionFind::new(grid.topology().len());
            for (a, bb) in &edges {
                uf.union(a.index(), bb.index());
            }
            uf.largest()
        })
    });
}

fn newman_ziff_sweep(c: &mut Criterion) {
    let grid = Grid::square(40);
    let nz = NewmanZiff::new(grid.topology(), grid.center());
    c.bench_function("newman_ziff_40x40_bond_sweep", |b| {
        let mut rng = SimRng::new(2);
        b.iter(|| nz.bond_sweep(&mut rng))
    });
}

fn bfs_hops(c: &mut Criterion) {
    let grid = Grid::square(75);
    c.bench_function("bfs_75x75_hop_distances", |b| {
        b.iter(|| grid.topology().hop_distances(grid.center()))
    });
}

fn ideal_dissemination(c: &mut Criterion) {
    let mut cfg = IdealConfig::table1();
    cfg.grid_side = 75;
    cfg.updates = 1;
    let sim = IdealSim::new(
        cfg,
        Mode::SleepScheduled(PbbfParams::new(0.5, 0.5).expect("valid")),
    );
    c.bench_function("ideal_75x75_one_update", |b| b.iter(|| sim.run(3)));
}

fn net_run(c: &mut Criterion) {
    let mut cfg = NetConfig::table2();
    cfg.duration_secs = 120.0;
    let sim = NetSim::new(
        cfg,
        NetMode::SleepScheduled(PbbfParams::new(0.25, 0.25).expect("valid")),
    );
    c.bench_function("net_50nodes_120s_run", |b| b.iter(|| sim.run(4)));
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = event_queue_throughput, rng_throughput, union_find_sweep, newman_ziff_sweep, bfs_hops, ideal_dissemination, net_run
}
criterion_main!(kernels);
