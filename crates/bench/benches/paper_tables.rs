//! Bench targets regenerating Table 1 and Table 2.

use criterion::{criterion_group, criterion_main, Criterion};
use pbbf_bench::{bench_effort, print_exhibit};
use pbbf_experiments::Experiment;

fn bench_tables(c: &mut Criterion) {
    let effort = bench_effort();
    for exp in [Experiment::Table1, Experiment::Table2] {
        print_exhibit(exp.id(), &exp.run(&effort, 2005).render_text());
        c.bench_function(exp.id(), |b| b.iter(|| exp.run(&effort, 2005)));
    }
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_tables
}
criterion_main!(tables);
