//! Allocation-count proof that the per-run topology copy is gone.
//!
//! Wall-clock cannot show it: on the sparse 10k-node kernel the old
//! O(V + E) deployment copy was well under 1% of a run. Counting
//! allocated bytes can: running on an `Arc`-shared scenario must allocate
//! *exactly* the scenario's heap footprint less than running on a
//! per-run copy of the same scenario — the only difference between the
//! two paths is the copy the Arc refactor removed.
//!
//! This file holds a single test (plus its `#[global_allocator]`), so no
//! concurrent test can perturb the byte counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pbbf_net_sim::{CachedDeployment, NetConfig, NetMode, NetSim};
use pbbf_topology::Topology;

/// System allocator wrapped with a byte counter (allocations only —
/// frees are irrelevant to "how much did this path allocate").
struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic
// side effect with no aliasing or layout implications.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size > layout.size() {
            ALLOCATED.fetch_add((new_size - layout.size()) as u64, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn bytes_allocated_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATED.load(Ordering::Relaxed);
    f();
    ALLOCATED.load(Ordering::Relaxed) - before
}

/// The topology's heap footprint: positions (16 B/node), CSR offsets
/// (4 B × (n + 1)), and the flat neighbor array (4 B per directed edge).
fn topology_heap_bytes(t: &Topology) -> u64 {
    (t.len() * 16 + (t.len() + 1) * 4 + t.edge_count() * 2 * 4) as u64
}

#[test]
fn shared_run_skips_the_topology_copy() {
    let mut cfg = NetConfig::table2();
    cfg.nodes = 2000;
    cfg.duration_secs = 120.0;
    let sim = NetSim::new(
        cfg,
        NetMode::SleepScheduled(pbbf_core::PbbfParams::new(0.25, 0.05).expect("valid")),
    );
    let deployment = NetSim::draw_deployment(&cfg, 4);
    let topo_bytes = topology_heap_bytes(deployment.topology());
    assert!(topo_bytes > 100_000, "scenario large enough to measure");

    // Warm-up: fault in lazy statics and the timing side of the run so
    // the measured passes see steady state.
    let reference = sim.run_on(4, &deployment);

    let shared = bytes_allocated_during(|| {
        assert_eq!(sim.run_on(4, &deployment), reference);
    });
    let copied = bytes_allocated_during(|| {
        let copy = CachedDeployment::new(deployment.topology().clone(), deployment.source());
        assert_eq!(sim.run_on(4, &copy), reference);
    });

    // The run is deterministic, so the copied path allocates exactly the
    // shared path's bytes plus the scenario copy; a small cushion below
    // the full footprint keeps the assert robust to allocator-side
    // rounding while still failing loudly if the per-run copy ever
    // returns to the shared path.
    assert!(
        copied >= shared + topo_bytes * 9 / 10,
        "copied path must pay the O(V + E) scenario copy: \
         shared {shared} B, copied {copied} B, topology {topo_bytes} B"
    );
    assert!(
        shared + topo_bytes * 11 / 10 + 4096 >= copied,
        "the copy should be the *only* difference: \
         shared {shared} B, copied {copied} B, topology {topo_bytes} B"
    );
}
