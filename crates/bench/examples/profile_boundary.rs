//! Scratch profiler for the sparse-kernel boundary engines (not a bench).

use std::time::Instant;

use pbbf_net_sim::{BoundaryEngine, NetConfig, NetMode, NetSim};

fn time_engine(cfg: NetConfig, label: &str, deployment: &pbbf_net_sim::CachedDeployment) {
    let mode = NetMode::SleepScheduled(pbbf_core::PbbfParams::new(0.25, 0.05).expect("valid"));
    let sim = NetSim::new(cfg, mode);
    // warm up
    let _ = sim.run_on(4, deployment);
    let n = 5;
    let t = Instant::now();
    for _ in 0..n {
        std::hint::black_box(sim.run_on(4, deployment));
    }
    let el = t.elapsed().as_secs_f64() / n as f64;
    println!("{label:<40} {:.3} ms", el * 1e3);
}

fn main() {
    // The two committed sparse-kernel scenarios: the PR-3 two-flood
    // horizon (copy/draw pair) and the long-horizon single-flood steady
    // state the boundary-engine pair is measured on.
    for (dur, nodes, lambda) in [(600.0, 10_000usize, 0.002), (7200.0, 10_000, 0.000125)] {
        let mut cfg = NetConfig::table2();
        cfg.nodes = nodes;
        cfg.duration_secs = dur;
        cfg.delta = 10.0;
        cfg.lambda = lambda;
        cfg.boundary_engine = BoundaryEngine::Dense;
        let deployment = NetSim::draw_deployment(&cfg, 4);
        println!("--- dur {dur} nodes {nodes} lambda {lambda}");
        time_engine(cfg, "dense", &deployment);
        let mut geo = cfg;
        geo.boundary_engine = BoundaryEngine::Geometric;
        time_engine(geo, "geometric", &deployment);
    }
}
