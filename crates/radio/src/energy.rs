//! Per-node radio energy accounting.

use pbbf_core::PowerProfile;
use pbbf_des::SimTime;
use pbbf_metrics::StateClock;

/// The power states of a sensor radio.
///
/// The Mica2 numbers of Table 1 charge receive and idle listening at the
/// same 30 mW (`P_I` is "receive/idle"), so they share a state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadioState {
    /// Listening or receiving (`P_I`).
    Idle,
    /// Transmitting (`P_TX`).
    Transmit,
    /// Radio powered down (`P_S`).
    Sleep,
}

impl RadioState {
    fn index(self) -> usize {
        match self {
            RadioState::Idle => 0,
            RadioState::Transmit => 1,
            RadioState::Sleep => 2,
        }
    }
}

/// Tracks one node's radio state over simulation time and converts state
/// residency into joules under a [`PowerProfile`].
///
/// # Examples
///
/// ```
/// use pbbf_core::PowerProfile;
/// use pbbf_des::SimTime;
/// use pbbf_radio::{EnergyMeter, RadioState};
///
/// let mut m = EnergyMeter::new(PowerProfile::MICA2);
/// m.set_state(SimTime::from_secs(1.0), RadioState::Sleep);
/// m.set_state(SimTime::from_secs(10.0), RadioState::Idle);
/// let j = m.joules_at(SimTime::from_secs(10.0));
/// // 1 s idle + 9 s sleep.
/// assert!((j - (0.030 + 9.0 * 3e-6)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    profile: PowerProfile,
    clock: StateClock<3>,
    state: RadioState,
}

impl EnergyMeter {
    /// Creates a meter starting in [`RadioState::Idle`] at time zero.
    #[must_use]
    pub fn new(profile: PowerProfile) -> Self {
        Self {
            profile,
            clock: StateClock::new(),
            state: RadioState::Idle,
        }
    }

    /// The current radio state.
    #[must_use]
    pub fn state(&self) -> RadioState {
        self.state
    }

    /// Whether the radio can currently receive or carrier-sense.
    #[must_use]
    pub fn is_awake(&self) -> bool {
        self.state != RadioState::Sleep
    }

    /// Records a state change at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes an earlier transition.
    #[inline]
    pub fn set_state(&mut self, now: SimTime, state: RadioState) {
        self.set_state_secs(now.as_secs(), state);
    }

    /// [`EnergyMeter::set_state`] with the instant pre-converted to
    /// seconds. Hot replay loops that visit the same instant for many
    /// nodes (the net simulator's beacon boundaries) convert once and
    /// reuse the value instead of paying the nanoseconds→seconds division
    /// per node; `set_state_secs(t.as_secs(), s)` is exactly
    /// `set_state(t, s)`.
    ///
    /// # Panics
    ///
    /// Panics if `secs` precedes an earlier transition.
    #[inline]
    pub fn set_state_secs(&mut self, secs: f64, state: RadioState) {
        self.clock.transition(secs, state.index());
        self.state = state;
    }

    /// Credits `k` detached intervals of `per_boundary_secs` each to
    /// `state` without moving the meter's clock — the closed-form half
    /// of batched idle-boundary settling (see
    /// [`StateClock::accrue_batch`]). Pair with
    /// [`EnergyMeter::jump_to_secs`] once the batch's span is fully
    /// credited.
    ///
    /// # Panics
    ///
    /// Panics if `per_boundary_secs` is negative.
    #[inline]
    pub fn accrue_batch(&mut self, state: RadioState, k: u64, per_boundary_secs: f64) {
        self.clock.accrue_batch(state.index(), k, per_boundary_secs);
    }

    /// Moves the meter to `secs` in `state` **without** charging the
    /// elapsed interval — it must already have been credited via
    /// [`EnergyMeter::accrue_batch`]. The batched counterpart of
    /// [`EnergyMeter::set_state_secs`].
    ///
    /// # Panics
    ///
    /// Panics if `secs` precedes an earlier transition.
    #[inline]
    pub fn jump_to_secs(&mut self, secs: f64, state: RadioState) {
        self.clock.jump_to(secs, state.index());
        self.state = state;
    }

    /// Seconds spent in each state as of `now` (idle, transmit, sleep).
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes an earlier transition.
    #[must_use]
    pub fn durations_at(&self, now: SimTime) -> [f64; 3] {
        self.clock.durations_at(now.as_secs())
    }

    /// Total joules consumed as of `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes an earlier transition.
    #[must_use]
    pub fn joules_at(&self, now: SimTime) -> f64 {
        self.clock.energy_at(
            now.as_secs(),
            [self.profile.idle, self.profile.tx, self.profile.sleep],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn starts_idle() {
        let m = EnergyMeter::new(PowerProfile::MICA2);
        assert_eq!(m.state(), RadioState::Idle);
        assert!(m.is_awake());
        let j = m.joules_at(t(10.0));
        assert!((j - 0.3).abs() < 1e-12);
    }

    #[test]
    fn sleep_saves_energy() {
        let mut awake = EnergyMeter::new(PowerProfile::MICA2);
        let mut asleep = EnergyMeter::new(PowerProfile::MICA2);
        asleep.set_state(t(1.0), RadioState::Sleep);
        awake.set_state(t(1.0), RadioState::Idle);
        assert!(asleep.joules_at(t(100.0)) < awake.joules_at(t(100.0)) / 10.0);
        assert!(!asleep.is_awake());
    }

    #[test]
    fn transmit_costs_more_than_idle() {
        let mut m = EnergyMeter::new(PowerProfile::MICA2);
        m.set_state(t(0.0), RadioState::Transmit);
        m.set_state(t(1.0), RadioState::Idle);
        let j = m.joules_at(t(2.0));
        assert!((j - (0.081 + 0.030)).abs() < 1e-12);
        let d = m.durations_at(t(2.0));
        assert_eq!(d, [1.0, 1.0, 0.0]);
    }

    #[test]
    fn set_state_secs_equals_set_state() {
        let mut a = EnergyMeter::new(PowerProfile::MICA2);
        let mut b = EnergyMeter::new(PowerProfile::MICA2);
        let instants = [0.5, 1.25, 7.75, 100.0];
        let states = [
            RadioState::Sleep,
            RadioState::Idle,
            RadioState::Transmit,
            RadioState::Sleep,
        ];
        for (&s, &st) in instants.iter().zip(&states) {
            let now = t(s);
            a.set_state(now, st);
            b.set_state_secs(now.as_secs(), st);
        }
        assert_eq!(
            a.joules_at(t(200.0)).to_bits(),
            b.joules_at(t(200.0)).to_bits()
        );
    }

    #[test]
    fn batched_accrual_matches_dense_duty_cycle() {
        // The PSM duty cycle of `psm_duty_cycle_energy`, settled in
        // closed form: 10 frames of 1 s idle + 9 s sleep.
        let mut dense = EnergyMeter::new(PowerProfile::MICA2);
        for f in 0..10 {
            let start = f64::from(f) * 10.0;
            dense.set_state(t(start), RadioState::Idle);
            dense.set_state(t(start + 1.0), RadioState::Sleep);
        }
        let mut batched = EnergyMeter::new(PowerProfile::MICA2);
        batched.accrue_batch(RadioState::Idle, 10, 1.0);
        batched.accrue_batch(RadioState::Sleep, 9, 9.0);
        batched.jump_to_secs(91.0, RadioState::Sleep);
        assert_eq!(batched.state(), RadioState::Sleep);
        assert!(!batched.is_awake());
        let a = dense.joules_at(t(100.0));
        let b = batched.joules_at(t(100.0));
        assert!((a - b).abs() < 1e-12, "dense {a} vs batched {b}");
        // The meter keeps working normally after the jump.
        batched.set_state(t(100.0), RadioState::Idle);
        dense.set_state(t(100.0), RadioState::Idle);
        assert!((dense.joules_at(t(110.0)) - batched.joules_at(t(110.0))).abs() < 1e-12);
    }

    #[test]
    fn psm_duty_cycle_energy() {
        // 10 frames of 1 s idle + 9 s sleep ≈ the Eq. 3 baseline.
        let mut m = EnergyMeter::new(PowerProfile::MICA2);
        for f in 0..10 {
            let start = f as f64 * 10.0;
            m.set_state(t(start), RadioState::Idle);
            m.set_state(t(start + 1.0), RadioState::Sleep);
        }
        let j = m.joules_at(t(100.0));
        let expected = 10.0 * (0.030 + 9.0 * 3e-6);
        assert!((j - expected).abs() < 1e-9);
    }
}
