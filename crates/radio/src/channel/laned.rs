//! The replica-laned collision channel.
//!
//! Lockstep replica batching (see `pbbf-net-sim`) runs `R` independent
//! Monte Carlo replicas of one scenario through a single merged event
//! loop. Each replica needs its own air state — its transmissions must
//! never collide with another replica's — but all replicas share one
//! topology, and at any instant they are flooding the same neighborhood
//! of it. [`LanedChannel`] therefore extends the incremental engine's
//! 16-byte [`NodeAir`](super::NodeAir) record into per-replica *lanes*:
//! node `n`'s records for all lanes sit contiguously at
//! `air[n * lanes ..]`, so when the batch's replicas touch node `n` at
//! nearby event times, their lane records ride the same cache lines
//! instead of `R` scattered per-replica arrays.
//!
//! Semantically a `LanedChannel` with `R` lanes behaves exactly like `R`
//! independent [`Channel`](super::Channel)s over the same shared
//! topology: every query and update takes a `lane` index and reads or
//! writes only that lane's records. The active-transmission slot arena
//! and the recycled mark buffers are shared across lanes (a slot knows
//! its lane implicitly through the `tx_slot` that points at it), so peak
//! allocation is bounded by the batch's total concurrency, not
//! `lanes × per-lane peak`.

use std::sync::Arc;

use pbbf_des::{SimDuration, SimTime};
use pbbf_topology::{NodeId, Topology};

use super::{ActiveTx, Delivery, NodeAir, CORRUPT, NO_SLOT};
use crate::Frame;

/// A collision channel multiplexing independent replica lanes over one
/// shared [`Topology`].
///
/// Lane `l` of a `LanedChannel` agrees bit-for-bit with a dedicated
/// [`Channel`](super::Channel) driven with lane `l`'s schedule: same
/// carrier-sense answers, same panics, same [`Delivery`] outcomes in the
/// same CSR-neighbor order (`tests` below pin that against the
/// single-lane engine).
///
/// # Examples
///
/// ```
/// use pbbf_des::{SimDuration, SimTime};
/// use pbbf_radio::{Frame, LanedChannel};
/// use pbbf_topology::{Grid, NodeId};
///
/// let mut ch = LanedChannel::new(Grid::new(1, 3, 1.0).into_topology(), 2);
/// let t0 = SimTime::ZERO;
/// let end = ch.begin_tx(0, t0, Frame::beacon(NodeId(0)), SimDuration::from_millis(10));
/// // Lane 1 is a separate medium: node 1 hears nothing there.
/// assert!(ch.carrier_busy(0, NodeId(1)));
/// assert!(!ch.carrier_busy(1, NodeId(1)));
/// let mut out = Vec::new();
/// let frame = ch.end_tx_into(0, end, NodeId(0), &mut out);
/// assert_eq!(frame.src, NodeId(0));
/// assert!(out.iter().all(|d| d.clean));
/// ```
#[derive(Debug, Clone)]
pub struct LanedChannel {
    /// Shared, not owned — every lane reads the same CSR adjacency.
    topology: Arc<Topology>,
    lanes: usize,
    /// Active transmissions of *all* lanes, slot-addressed; freed slots
    /// are recycled across lanes.
    slots: Vec<Option<ActiveTx>>,
    free_slots: Vec<u32>,
    /// Per-(node, lane) air records, lane-interleaved:
    /// `air[node * lanes + lane]`.
    air: Vec<NodeAir>,
    active: usize,
    spare_marks: Vec<Vec<u64>>,
}

impl LanedChannel {
    /// Creates a channel with `lanes` independent replica lanes over
    /// `topology` — owned (wrapped into a fresh [`Arc`]) or already
    /// shared.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    #[must_use]
    pub fn new(topology: impl Into<Arc<Topology>>, lanes: usize) -> Self {
        assert!(lanes > 0, "a laned channel needs at least one lane");
        let topology = topology.into();
        let n = topology.len();
        Self {
            topology,
            lanes,
            slots: Vec::new(),
            free_slots: Vec::new(),
            air: vec![NodeAir::IDLE; n * lanes],
            active: 0,
            spare_marks: Vec::new(),
        }
    }

    /// Number of replica lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The underlying topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The shared handle to the underlying topology.
    #[must_use]
    pub fn topology_arc(&self) -> &Arc<Topology> {
        &self.topology
    }

    #[inline]
    fn idx(&self, node: NodeId) -> usize {
        node.index() * self.lanes
    }

    /// Whether `node` senses lane `lane` busy: it is transmitting there
    /// itself or can hear one of that lane's ongoing transmissions.
    #[must_use]
    pub fn carrier_busy(&self, lane: usize, node: NodeId) -> bool {
        let a = &self.air[self.idx(node) + lane];
        a.tx_slot != NO_SLOT || a.audible > 0
    }

    /// Whether `node` is currently transmitting on lane `lane`.
    #[must_use]
    pub fn is_transmitting(&self, lane: usize, node: NodeId) -> bool {
        self.air[self.idx(node) + lane].tx_slot != NO_SLOT
    }

    /// Number of in-flight transmissions across all lanes.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active
    }

    /// Starts a transmission of `frame` on lane `lane`; returns the end
    /// time the caller must schedule the matching
    /// [`LanedChannel::end_tx_into`] at. The collision bookkeeping is
    /// exactly [`Channel::begin_tx`](super::Channel::begin_tx), confined
    /// to the lane.
    ///
    /// # Panics
    ///
    /// Panics if the source is already transmitting on this lane.
    pub fn begin_tx(
        &mut self,
        lane: usize,
        now: SimTime,
        frame: Frame,
        duration: SimDuration,
    ) -> SimTime {
        let src = frame.src;
        let src_idx = self.idx(src) + lane;
        assert!(
            self.air[src_idx].tx_slot == NO_SLOT,
            "{src} began a transmission while already transmitting"
        );
        let mut rx_marks = self.spare_marks.pop().unwrap_or_default();
        let lanes = self.lanes;
        for &r in self.topology.neighbors(src) {
            let a = &mut self.air[r.index() * lanes + lane];
            let corrupt = a.audible > 0 || a.tx_slot != NO_SLOT;
            a.audible += 1;
            a.mark += 1;
            rx_marks.push(if corrupt { CORRUPT } else { a.mark });
        }
        // A radio cannot receive while transmitting: beginning kills any
        // reception in progress at the source (on this lane).
        self.air[src_idx].mark += 1;
        let end = now + duration;
        let tx = ActiveTx {
            frame,
            start: now,
            end,
            rx_marks,
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(tx);
                s
            }
            None => {
                self.slots.push(Some(tx));
                (self.slots.len() - 1) as u32
            }
        };
        debug_assert_ne!(slot, NO_SLOT, "slot index collides with sentinel");
        self.air[src_idx].tx_slot = slot;
        self.active += 1;
        end
    }

    /// Completes `src`'s transmission on lane `lane`, writing the
    /// per-neighbor delivery outcomes into `out` (cleared first) and
    /// returning the frame — [`Channel::end_tx_into`](super::Channel::end_tx_into),
    /// confined to the lane.
    ///
    /// # Panics
    ///
    /// Panics if `src` has no transmission in flight on this lane or
    /// `now` is not its scheduled end time.
    pub fn end_tx_into(
        &mut self,
        lane: usize,
        now: SimTime,
        src: NodeId,
        out: &mut Vec<Delivery>,
    ) -> Frame {
        let src_idx = self.idx(src) + lane;
        let slot = self.air[src_idx].tx_slot;
        assert!(slot != NO_SLOT, "{src} has no transmission in flight");
        self.air[src_idx].tx_slot = NO_SLOT;
        let tx = self.slots[slot as usize]
            .take()
            .expect("slot holds the active transmission");
        self.free_slots.push(slot);
        self.active -= 1;
        assert_eq!(tx.end, now, "end_tx at the wrong time for {src}");
        out.clear();
        let neighbors = self.topology.neighbors(src);
        out.reserve(neighbors.len());
        let lanes = self.lanes;
        for (&r, &m) in neighbors.iter().zip(&tx.rx_marks) {
            let a = &mut self.air[r.index() * lanes + lane];
            a.audible -= 1;
            out.push(Delivery {
                receiver: r,
                clean: m == a.mark && a.tx_slot == NO_SLOT,
                started: tx.start,
            });
        }
        let ActiveTx {
            frame,
            mut rx_marks,
            ..
        } = tx;
        rx_marks.clear();
        self.spare_marks.push(rx_marks);
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::super::Channel;
    use super::*;
    use pbbf_des::SimRng;
    use pbbf_topology::Grid;

    fn line(n: u32) -> Topology {
        Grid::new(1, n, 1.0).into_topology()
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn lanes_are_isolated_media() {
        // A transmission on lane 0 is inaudible — and non-colliding — on
        // lane 1.
        let mut ch = LanedChannel::new(line(3), 2);
        let e0 = ch.begin_tx(0, t(0.0), Frame::beacon(NodeId(0)), d(0.02));
        let e1 = ch.begin_tx(1, t(0.01), Frame::beacon(NodeId(2)), d(0.02));
        assert!(ch.carrier_busy(0, NodeId(1)));
        assert!(ch.carrier_busy(1, NodeId(1)));
        assert!(!ch.is_transmitting(1, NodeId(0)));
        assert!(!ch.is_transmitting(0, NodeId(2)));
        let mut out = Vec::new();
        let _ = ch.end_tx_into(0, e0, NodeId(0), &mut out);
        assert!(out.iter().all(|x| x.clean), "no cross-lane collision");
        let _ = ch.end_tx_into(1, e1, NodeId(2), &mut out);
        assert!(out.iter().all(|x| x.clean));
        assert_eq!(ch.active_count(), 0);
    }

    #[test]
    fn same_lane_still_collides() {
        // 0 - 1 - 2 on one lane: hidden-terminal collision at node 1.
        let mut ch = LanedChannel::new(line(3), 4);
        let e0 = ch.begin_tx(2, t(0.0), Frame::beacon(NodeId(0)), d(0.02));
        let e2 = ch.begin_tx(2, t(0.01), Frame::beacon(NodeId(2)), d(0.02));
        let mut out = Vec::new();
        let _ = ch.end_tx_into(2, e0, NodeId(0), &mut out);
        assert!(!out[0].clean);
        let _ = ch.end_tx_into(2, e2, NodeId(2), &mut out);
        assert!(!out[0].clean);
    }

    #[test]
    #[should_panic(expected = "already transmitting")]
    fn double_tx_on_one_lane_panics() {
        let mut ch = LanedChannel::new(line(2), 2);
        ch.begin_tx(1, t(0.0), Frame::beacon(NodeId(0)), d(0.1));
        ch.begin_tx(1, t(0.01), Frame::beacon(NodeId(0)), d(0.1));
    }

    #[test]
    fn same_node_may_transmit_on_every_lane() {
        let mut ch = LanedChannel::new(line(2), 3);
        let mut ends = Vec::new();
        for lane in 0..3 {
            ends.push(ch.begin_tx(lane, t(0.0), Frame::beacon(NodeId(0)), d(0.1)));
        }
        assert_eq!(ch.active_count(), 3);
        let mut out = Vec::new();
        for (lane, end) in ends.into_iter().enumerate() {
            let _ = ch.end_tx_into(lane, end, NodeId(0), &mut out);
            assert!(out.iter().all(|x| x.clean));
        }
    }

    /// The contract the replica runner rests on: each lane of a
    /// [`LanedChannel`] driven with a randomized schedule agrees exactly
    /// with a dedicated single-lane [`Channel`] driven with the same
    /// schedule.
    #[test]
    fn every_lane_matches_a_dedicated_channel() {
        const LANES: usize = 3;
        let topo = Arc::new(
            {
                let mut rng = SimRng::new(5);
                pbbf_topology::RandomDeployment::connected_with_density(
                    60, 30.0, 8.0, 200, &mut rng,
                )
                .expect("connected")
            }
            .into_topology(),
        );
        let n = topo.len() as u64;
        let mut laned = LanedChannel::new(Arc::clone(&topo), LANES);
        let mut solos: Vec<Channel> = (0..LANES)
            .map(|_| Channel::new(Arc::clone(&topo)))
            .collect();
        let mut rng = SimRng::new(17);
        // (end, lane, src) of in-flight transmissions, popped in end order.
        let mut inflight: Vec<(SimTime, usize, NodeId)> = Vec::new();
        let mut laned_out = Vec::new();
        let mut solo_out = Vec::new();
        for step in 0..4000u64 {
            let now = SimTime::from_nanos(step * 500_000);
            inflight.sort_by_key(|&(end, lane, _)| (end, lane));
            while let Some(&(end, lane, src)) = inflight.first() {
                if end > now {
                    break;
                }
                inflight.remove(0);
                let fl = laned.end_tx_into(lane, end, src, &mut laned_out);
                let fs = solos[lane].end_tx_into(end, src, &mut solo_out);
                assert_eq!(fl, fs);
                assert_eq!(laned_out, solo_out, "lane {lane} deliveries diverged");
            }
            let lane = rng.below(LANES as u64) as usize;
            let node = NodeId(rng.below(n) as u32);
            assert_eq!(
                laned.carrier_busy(lane, node),
                solos[lane].carrier_busy(node)
            );
            assert_eq!(
                laned.is_transmitting(lane, node),
                solos[lane].is_transmitting(node)
            );
            if !laned.carrier_busy(lane, node) {
                let air = SimDuration::from_nanos(100_000 + rng.below(3_000_000));
                let el = laned.begin_tx(lane, now, Frame::beacon(node), air);
                let es = solos[lane].begin_tx(now, Frame::beacon(node), air);
                assert_eq!(el, es);
                inflight.push((el, lane, node));
            }
        }
        inflight.sort_by_key(|&(end, lane, _)| (end, lane));
        for (end, lane, src) in inflight {
            let _ = laned.end_tx_into(lane, end, src, &mut laned_out);
            let _ = solos[lane].end_tx_into(end, src, &mut solo_out);
            assert_eq!(laned_out, solo_out);
        }
    }
}
