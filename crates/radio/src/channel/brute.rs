//! The original O(active × degree) collision channel, kept as the
//! reference implementation (the `unit_disk_edges_brute` trick): the
//! incremental [`Channel`](super::Channel) must match it bit-for-bit, and
//! the randomized-schedule property tests plus the whole-run equivalence
//! tests in `pbbf-net-sim` prove it.

use std::collections::HashSet;
use std::sync::Arc;

use pbbf_des::{SimDuration, SimTime};
use pbbf_topology::{NodeId, Topology};

use super::{CollisionChannel, Delivery};
use crate::Frame;

#[derive(Debug, Clone)]
struct Active {
    frame: Frame,
    start: SimTime,
    end: SimTime,
    corrupted: HashSet<NodeId>,
}

/// The reference broadcast channel: same collision model as
/// [`Channel`](super::Channel), implemented the obvious way — a flat list
/// of in-flight transmissions, each carrying a `HashSet` of corrupted
/// receivers, rescanned by every query and update.
///
/// `begin_tx` walks all in-flight transmissions times the transmitter's
/// neighborhood and allocates a corruption set per transmission;
/// `carrier_busy`, `is_transmitting`, and `end_tx` all rescan the whole
/// active list. Kept for property tests and benches only — the simulators
/// use the incremental engine.
#[derive(Debug, Clone)]
pub struct BruteChannel {
    /// Shared like the incremental engine's, so the reference path has
    /// identical construction semantics (no per-run adjacency copy).
    topology: Arc<Topology>,
    active: Vec<Active>,
}

impl BruteChannel {
    /// Creates a channel over `topology` — owned (wrapped into a fresh
    /// [`Arc`]) or already shared (`Arc<Topology>`, no copy either way).
    #[must_use]
    pub fn new(topology: impl Into<Arc<Topology>>) -> Self {
        Self {
            topology: topology.into(),
            active: Vec::new(),
        }
    }

    /// The underlying topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The shared handle to the underlying topology.
    #[must_use]
    pub fn topology_arc(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// Whether `node` currently senses the channel busy: it is
    /// transmitting itself or can hear an ongoing transmission.
    #[must_use]
    pub fn carrier_busy(&self, node: NodeId) -> bool {
        self.active
            .iter()
            .any(|a| a.frame.src == node || self.topology.are_neighbors(a.frame.src, node))
    }

    /// Whether `node` is currently transmitting.
    #[must_use]
    pub fn is_transmitting(&self, node: NodeId) -> bool {
        self.active.iter().any(|a| a.frame.src == node)
    }

    /// Number of in-flight transmissions.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Starts a transmission of `frame` lasting `duration`; returns the
    /// end time the caller must schedule [`BruteChannel::end_tx`] at.
    ///
    /// Collision bookkeeping happens here: the new transmission corrupts,
    /// and is corrupted by, every overlapping transmission at each common
    /// receiver; ongoing receptions at the new transmitter die.
    ///
    /// # Panics
    ///
    /// Panics if the source is already transmitting (a MAC must serialize
    /// its own transmissions).
    pub fn begin_tx(&mut self, now: SimTime, frame: Frame, duration: SimDuration) -> SimTime {
        let src = frame.src;
        assert!(
            !self.is_transmitting(src),
            "{src} began a transmission while already transmitting"
        );
        let mut corrupted = HashSet::new();
        for other in &mut self.active {
            let o_src = other.frame.src;
            // Receivers in range of both transmissions lose both frames.
            for &r in self.topology.neighbors(src) {
                if r != o_src && self.topology.are_neighbors(o_src, r) {
                    corrupted.insert(r);
                    other.corrupted.insert(r);
                }
            }
            // A transmitting radio cannot receive.
            if self.topology.are_neighbors(src, o_src) {
                corrupted.insert(o_src); // the other tx'er cannot hear us
                other.corrupted.insert(src); // and we can no longer hear it
            }
        }
        let end = now + duration;
        self.active.push(Active {
            frame,
            start: now,
            end,
            corrupted,
        });
        end
    }

    /// Completes `src`'s transmission, removing it from the air and
    /// returning the frame plus the per-neighbor delivery outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `src` has no transmission in flight or `now` is not its
    /// scheduled end time (both indicate MAC/event-loop bugs).
    pub fn end_tx(&mut self, now: SimTime, src: NodeId) -> (Frame, Vec<Delivery>) {
        let mut out = Vec::new();
        let frame = self.end_tx_into(now, src, &mut out);
        (frame, out)
    }

    /// [`BruteChannel::end_tx`] writing into a caller-provided buffer
    /// (cleared first).
    ///
    /// # Panics
    ///
    /// Panics if `src` has no transmission in flight or `now` is not its
    /// scheduled end time.
    pub fn end_tx_into(&mut self, now: SimTime, src: NodeId, out: &mut Vec<Delivery>) -> Frame {
        let idx = self
            .active
            .iter()
            .position(|a| a.frame.src == src)
            .unwrap_or_else(|| panic!("{src} has no transmission in flight"));
        let active = self.active.swap_remove(idx);
        assert_eq!(active.end, now, "end_tx at the wrong time for {src}");
        out.clear();
        out.extend(self.topology.neighbors(src).iter().map(|&r| Delivery {
            receiver: r,
            clean: !active.corrupted.contains(&r) && !self.is_transmitting(r),
            started: active.start,
        }));
        active.frame
    }
}

impl CollisionChannel for BruteChannel {
    fn topology(&self) -> &Topology {
        BruteChannel::topology(self)
    }

    fn topology_arc(&self) -> &Arc<Topology> {
        BruteChannel::topology_arc(self)
    }

    fn carrier_busy(&self, node: NodeId) -> bool {
        BruteChannel::carrier_busy(self, node)
    }

    fn is_transmitting(&self, node: NodeId) -> bool {
        BruteChannel::is_transmitting(self, node)
    }

    fn active_count(&self) -> usize {
        BruteChannel::active_count(self)
    }

    fn begin_tx(&mut self, now: SimTime, frame: Frame, duration: SimDuration) -> SimTime {
        BruteChannel::begin_tx(self, now, frame, duration)
    }

    fn end_tx_into(&mut self, now: SimTime, src: NodeId, out: &mut Vec<Delivery>) -> Frame {
        BruteChannel::end_tx_into(self, now, src, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbbf_des::SimDuration;
    use pbbf_topology::Grid;

    fn line(n: u32) -> Topology {
        Grid::new(1, n, 1.0).into_topology()
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn clean_delivery_to_all_neighbors() {
        let mut ch = BruteChannel::new(line(3));
        let end = ch.begin_tx(t(0.0), Frame::beacon(NodeId(1)), d(0.01));
        assert!(ch.carrier_busy(NodeId(0)));
        assert!(ch.carrier_busy(NodeId(2)));
        let (_, dl) = ch.end_tx(end, NodeId(1));
        assert_eq!(dl.len(), 2);
        assert!(dl.iter().all(|x| x.clean));
        assert_eq!(ch.active_count(), 0);
    }

    #[test]
    fn overlapping_neighbors_collide() {
        // 0 - 1 - 2: nodes 0 and 2 both transmit; node 1 hears a collision.
        let mut ch = BruteChannel::new(line(3));
        let e0 = ch.begin_tx(t(0.0), Frame::beacon(NodeId(0)), d(0.02));
        let e2 = ch.begin_tx(t(0.01), Frame::beacon(NodeId(2)), d(0.02));
        let (_, d0) = ch.end_tx(e0, NodeId(0));
        assert_eq!(
            d0,
            vec![Delivery {
                receiver: NodeId(1),
                clean: false,
                started: t(0.0)
            }]
        );
        let (_, d2) = ch.end_tx(e2, NodeId(2));
        assert!(!d2[0].clean, "hidden-terminal collision at node 1");
    }

    #[test]
    fn transmitter_cannot_receive() {
        // 0 - 1: both transmit concurrently; neither receives the other.
        let mut ch = BruteChannel::new(line(2));
        let e0 = ch.begin_tx(t(0.0), Frame::beacon(NodeId(0)), d(0.05));
        let e1 = ch.begin_tx(t(0.01), Frame::beacon(NodeId(1)), d(0.01));
        let (_, d1) = ch.end_tx(e1, NodeId(1));
        // Node 0 is still transmitting at 1's end: not clean.
        assert!(!d1[0].clean);
        let (_, d0) = ch.end_tx(e0, NodeId(0));
        assert!(!d0[0].clean, "node 1 transmitted during our frame");
    }

    #[test]
    fn carrier_sense_scope() {
        let mut ch = BruteChannel::new(line(4));
        ch.begin_tx(t(0.0), Frame::beacon(NodeId(0)), d(0.1));
        assert!(ch.carrier_busy(NodeId(0)), "own transmission");
        assert!(ch.carrier_busy(NodeId(1)), "neighbor");
        assert!(!ch.carrier_busy(NodeId(2)), "two hops away");
        assert!(!ch.carrier_busy(NodeId(3)));
    }

    #[test]
    #[should_panic(expected = "already transmitting")]
    fn double_tx_panics() {
        let mut ch = BruteChannel::new(line(2));
        ch.begin_tx(t(0.0), Frame::beacon(NodeId(0)), d(0.1));
        ch.begin_tx(t(0.01), Frame::beacon(NodeId(0)), d(0.1));
    }

    #[test]
    #[should_panic(expected = "no transmission in flight")]
    fn end_without_begin_panics() {
        let mut ch = BruteChannel::new(line(2));
        let _ = ch.end_tx(t(0.0), NodeId(0));
    }
}
