//! The shared broadcast medium with collisions and interference.
//!
//! Two implementations of the same collision model live here:
//!
//! * [`Channel`] — the incremental engine used by the simulators: flat
//!   per-node state maintained on every `begin_tx`/`end_tx` so carrier
//!   sensing is one array read and transmission bookkeeping costs
//!   O(degree), independent of how many transmissions are in flight.
//! * [`brute::BruteChannel`] — the original O(active × degree) reference,
//!   kept (like `unit_disk_edges_brute`) for property tests and benches.
//!
//! Both are driven through the [`CollisionChannel`] trait and must agree
//! bit-for-bit on every carrier-sense answer and delivery outcome; the
//! randomized-schedule property tests in `tests/properties.rs` and the
//! whole-run equivalence tests in `pbbf-net-sim` enforce that.

pub mod brute;
pub mod laned;

use std::sync::Arc;

use pbbf_des::{SimDuration, SimTime};
use pbbf_topology::{NodeId, Topology};

use crate::Frame;

/// One potential reception reported at the end of a transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The neighbor the frame propagated to.
    pub receiver: NodeId,
    /// Whether the frame arrived uncorrupted (no overlapping transmission
    /// audible at the receiver, and the receiver was not itself
    /// transmitting). The MAC must additionally check the receiver was
    /// awake for the whole airtime.
    pub clean: bool,
    /// When the transmission began (for awake-span checks).
    pub started: SimTime,
}

/// The driving interface shared by the incremental [`Channel`] and the
/// reference [`brute::BruteChannel`].
///
/// The MAC calls [`CollisionChannel::begin_tx`] when a transmission
/// starts and [`CollisionChannel::end_tx_into`] at its scheduled end;
/// carrier sensing happens through [`CollisionChannel::carrier_busy`].
/// Implementations must agree exactly — same panics, same delivery
/// outcomes in the same (CSR neighbor) order.
///
/// Both implementations hold their topology behind an [`Arc`] rather
/// than owning a copy: a channel constructed from a cached deployment
/// shares the scenario's CSR adjacency with every other concurrent run
/// instead of paying an O(V + E) clone per run.
pub trait CollisionChannel {
    /// The underlying topology.
    fn topology(&self) -> &Topology;

    /// The shared handle to the underlying topology (cloning it is
    /// reference-count traffic, not an adjacency copy).
    fn topology_arc(&self) -> &Arc<Topology>;

    /// Whether `node` currently senses the channel busy: it is
    /// transmitting itself or can hear an ongoing transmission.
    fn carrier_busy(&self, node: NodeId) -> bool;

    /// Whether `node` is currently transmitting.
    fn is_transmitting(&self, node: NodeId) -> bool;

    /// Number of in-flight transmissions.
    fn active_count(&self) -> usize;

    /// Starts a transmission of `frame` lasting `duration`; returns the
    /// end time the caller must schedule the matching `end_tx_into` at.
    fn begin_tx(&mut self, now: SimTime, frame: Frame, duration: SimDuration) -> SimTime;

    /// Completes `src`'s transmission, writing the per-neighbor delivery
    /// outcomes into `out` (cleared first) and returning the frame. The
    /// caller owns `out`, so steady-state simulation makes no per-`end_tx`
    /// allocation.
    fn end_tx_into(&mut self, now: SimTime, src: NodeId, out: &mut Vec<Delivery>) -> Frame;
}

/// Sentinel mark for "corrupted before any later event could matter".
const CORRUPT: u64 = u64::MAX;

/// Sentinel for "no active transmission" in [`NodeAir::tx_slot`].
const NO_SLOT: u32 = u32::MAX;

/// One node's incremental air state, packed into a single 16-byte record
/// so the O(degree) begin/end loops and the carrier-sense read touch one
/// cache line per node instead of three parallel arrays — at 10 000
/// nodes the split layout cost three scattered loads per neighbor.
#[derive(Debug, Clone, Copy)]
struct NodeAir {
    /// In-flight transmissions audible at the node.
    audible: u32,
    /// Slot of the node's own active transmission, or [`NO_SLOT`].
    tx_slot: u32,
    /// Monotone corruption clock (see the [`Channel`] docs).
    mark: u64,
}

impl NodeAir {
    const IDLE: Self = Self {
        audible: 0,
        tx_slot: NO_SLOT,
        mark: 0,
    };
}

/// One in-flight transmission, stored in a recycled slot.
#[derive(Debug, Clone)]
struct ActiveTx {
    frame: Frame,
    start: SimTime,
    end: SimTime,
    /// Corruption snapshot per receiver, parallel to
    /// `topology.neighbors(src)`: the value `mark[r]` held right after
    /// this transmission registered, or [`CORRUPT`] if the receiver was
    /// already compromised at begin. The delivery is clean iff the mark
    /// never moved again before `end_tx`.
    rx_marks: Vec<u64>,
}

/// The broadcast channel: unit-disk propagation over a [`Topology`] with
/// a no-capture collision model.
///
/// * Every transmission reaches exactly the transmitter's neighbors.
/// * Two transmissions that overlap in time corrupt each other at every
///   receiver that can hear both (including hidden-terminal collisions,
///   where the two transmitters cannot hear each other).
/// * A radio cannot receive while transmitting.
///
/// # Engine
///
/// All queries and updates run over flat per-node state, incrementally
/// maintained across the CSR adjacency — no hashing, no scans of the
/// active list:
///
/// * `audible[n]` counts in-flight transmissions whose source neighbors
///   `n`, so carrier sense is one array read.
/// * `tx_slot[n]` maps a node to its active-transmission slot, so
///   `is_transmitting` and `end_tx` are O(1) lookups.
/// * `mark[n]` is a monotone per-node corruption clock, bumped whenever a
///   transmitter audible at `n` begins or `n` itself starts transmitting.
///   Each transmission snapshots its receivers' marks at begin; a
///   delivery is clean iff its receiver's mark never moved during the
///   airtime. This makes `begin_tx`/`end_tx` O(degree) instead of
///   O(active × degree).
///
/// Slot and mark buffers are recycled through free lists, so steady-state
/// operation allocates nothing.
///
/// The channel is driven by the MAC: [`Channel::begin_tx`] when a
/// transmission starts, [`Channel::end_tx`] when it completes (the caller
/// schedules the end event `airtime` later); `end_tx` reports per-neighbor
/// [`Delivery`] outcomes.
///
/// # Examples
///
/// ```
/// use pbbf_des::{SimDuration, SimTime};
/// use pbbf_radio::{Channel, Frame};
/// use pbbf_topology::{Grid, NodeId};
///
/// let mut ch = Channel::new(Grid::new(1, 3, 1.0).into_topology());
/// let t0 = SimTime::ZERO;
/// let end = ch.begin_tx(t0, Frame::beacon(NodeId(0)), SimDuration::from_millis(10));
/// let (frame, deliveries) = ch.end_tx(end, NodeId(0));
/// assert_eq!(frame.src, NodeId(0));
/// assert!(deliveries.iter().all(|d| d.clean));
/// ```
#[derive(Debug, Clone)]
pub struct Channel {
    /// Shared, not owned: constructing a channel over a cached scenario
    /// is a pointer bump, never an O(V + E) adjacency copy.
    topology: Arc<Topology>,
    /// Active transmissions, slot-addressed; freed slots are recycled.
    slots: Vec<Option<ActiveTx>>,
    free_slots: Vec<u32>,
    /// Per-node audible count, own-transmission slot, and corruption
    /// clock, interleaved for cache locality (see [`NodeAir`]).
    air: Vec<NodeAir>,
    active: usize,
    /// Recycled `rx_marks` buffers, cleared, ready for the next begin.
    spare_marks: Vec<Vec<u64>>,
}

impl Channel {
    /// Creates a channel over `topology` — owned (wrapped into a fresh
    /// [`Arc`]) or already shared (`Arc<Topology>`, no copy either way).
    #[must_use]
    pub fn new(topology: impl Into<Arc<Topology>>) -> Self {
        let topology = topology.into();
        let n = topology.len();
        Self {
            topology,
            slots: Vec::new(),
            free_slots: Vec::new(),
            air: vec![NodeAir::IDLE; n],
            active: 0,
            spare_marks: Vec::new(),
        }
    }

    /// The underlying topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The shared handle to the underlying topology.
    #[must_use]
    pub fn topology_arc(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// Whether `node` currently senses the channel busy: it is
    /// transmitting itself or can hear an ongoing transmission.
    #[must_use]
    pub fn carrier_busy(&self, node: NodeId) -> bool {
        let a = &self.air[node.index()];
        a.tx_slot != NO_SLOT || a.audible > 0
    }

    /// Whether `node` is currently transmitting.
    #[must_use]
    pub fn is_transmitting(&self, node: NodeId) -> bool {
        self.air[node.index()].tx_slot != NO_SLOT
    }

    /// Number of in-flight transmissions.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active
    }

    /// Starts a transmission of `frame` lasting `duration`; returns the
    /// end time the caller must schedule [`Channel::end_tx`] at.
    ///
    /// Collision bookkeeping happens here: the new transmission corrupts,
    /// and is corrupted by, every overlapping transmission at each common
    /// receiver; ongoing receptions at the new transmitter die.
    ///
    /// # Panics
    ///
    /// Panics if the source is already transmitting (a MAC must serialize
    /// its own transmissions).
    pub fn begin_tx(&mut self, now: SimTime, frame: Frame, duration: SimDuration) -> SimTime {
        let src = frame.src;
        assert!(
            self.air[src.index()].tx_slot == NO_SLOT,
            "{src} began a transmission while already transmitting"
        );
        let mut rx_marks = self.spare_marks.pop().unwrap_or_default();
        for &r in self.topology.neighbors(src) {
            let a = &mut self.air[r.index()];
            // Corrupted from the start: the receiver already hears another
            // transmitter, or is mid-transmission itself.
            let corrupt = a.audible > 0 || a.tx_slot != NO_SLOT;
            // Registering bumps the receiver's clock, corrupting every
            // *other* in-flight transmission delivering to it; our own
            // snapshot is taken after the bump so we don't corrupt
            // ourselves.
            a.audible += 1;
            a.mark += 1;
            rx_marks.push(if corrupt { CORRUPT } else { a.mark });
        }
        // A radio cannot receive while transmitting: beginning kills any
        // reception in progress at the source.
        self.air[src.index()].mark += 1;
        let end = now + duration;
        let tx = ActiveTx {
            frame,
            start: now,
            end,
            rx_marks,
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(tx);
                s
            }
            None => {
                self.slots.push(Some(tx));
                (self.slots.len() - 1) as u32
            }
        };
        debug_assert_ne!(slot, NO_SLOT, "slot index collides with sentinel");
        self.air[src.index()].tx_slot = slot;
        self.active += 1;
        end
    }

    /// Completes `src`'s transmission, removing it from the air and
    /// returning the frame plus the per-neighbor delivery outcomes.
    ///
    /// Allocates a fresh delivery vector; the simulators use
    /// [`Channel::end_tx_into`] with a reused buffer instead.
    ///
    /// # Panics
    ///
    /// Panics if `src` has no transmission in flight or `now` is not its
    /// scheduled end time (both indicate MAC/event-loop bugs).
    pub fn end_tx(&mut self, now: SimTime, src: NodeId) -> (Frame, Vec<Delivery>) {
        let mut out = Vec::new();
        let frame = self.end_tx_into(now, src, &mut out);
        (frame, out)
    }

    /// [`Channel::end_tx`] writing into a caller-provided buffer
    /// (cleared first), so steady-state simulation makes no per-`end_tx`
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if `src` has no transmission in flight or `now` is not its
    /// scheduled end time.
    pub fn end_tx_into(&mut self, now: SimTime, src: NodeId, out: &mut Vec<Delivery>) -> Frame {
        let slot = self.air[src.index()].tx_slot;
        assert!(slot != NO_SLOT, "{src} has no transmission in flight");
        self.air[src.index()].tx_slot = NO_SLOT;
        let tx = self.slots[slot as usize]
            .take()
            .expect("slot holds the active transmission");
        self.free_slots.push(slot);
        self.active -= 1;
        assert_eq!(tx.end, now, "end_tx at the wrong time for {src}");
        out.clear();
        let neighbors = self.topology.neighbors(src);
        out.reserve(neighbors.len());
        for (&r, &m) in neighbors.iter().zip(&tx.rx_marks) {
            let a = &mut self.air[r.index()];
            a.audible -= 1;
            out.push(Delivery {
                receiver: r,
                clean: m == a.mark && a.tx_slot == NO_SLOT,
                started: tx.start,
            });
        }
        let ActiveTx {
            frame,
            mut rx_marks,
            ..
        } = tx;
        rx_marks.clear();
        self.spare_marks.push(rx_marks);
        frame
    }
}

impl CollisionChannel for Channel {
    fn topology(&self) -> &Topology {
        Channel::topology(self)
    }

    fn topology_arc(&self) -> &Arc<Topology> {
        Channel::topology_arc(self)
    }

    fn carrier_busy(&self, node: NodeId) -> bool {
        Channel::carrier_busy(self, node)
    }

    fn is_transmitting(&self, node: NodeId) -> bool {
        Channel::is_transmitting(self, node)
    }

    fn active_count(&self) -> usize {
        Channel::active_count(self)
    }

    fn begin_tx(&mut self, now: SimTime, frame: Frame, duration: SimDuration) -> SimTime {
        Channel::begin_tx(self, now, frame, duration)
    }

    fn end_tx_into(&mut self, now: SimTime, src: NodeId, out: &mut Vec<Delivery>) -> Frame {
        Channel::end_tx_into(self, now, src, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbbf_des::SimDuration;
    use pbbf_topology::Grid;

    fn line(n: u32) -> Topology {
        Grid::new(1, n, 1.0).into_topology()
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn clean_delivery_to_all_neighbors() {
        let mut ch = Channel::new(line(3));
        let end = ch.begin_tx(t(0.0), Frame::beacon(NodeId(1)), d(0.01));
        assert!(ch.carrier_busy(NodeId(0)));
        assert!(ch.carrier_busy(NodeId(2)));
        let (_, dl) = ch.end_tx(end, NodeId(1));
        assert_eq!(dl.len(), 2);
        assert!(dl.iter().all(|x| x.clean));
        assert_eq!(ch.active_count(), 0);
    }

    #[test]
    fn overlapping_neighbors_collide() {
        // 0 - 1 - 2: nodes 0 and 2 both transmit; node 1 hears a collision.
        let mut ch = Channel::new(line(3));
        let e0 = ch.begin_tx(t(0.0), Frame::beacon(NodeId(0)), d(0.02));
        let e2 = ch.begin_tx(t(0.01), Frame::beacon(NodeId(2)), d(0.02));
        let (_, d0) = ch.end_tx(e0, NodeId(0));
        assert_eq!(
            d0,
            vec![Delivery {
                receiver: NodeId(1),
                clean: false,
                started: t(0.0)
            }]
        );
        let (_, d2) = ch.end_tx(e2, NodeId(2));
        assert!(!d2[0].clean, "hidden-terminal collision at node 1");
    }

    #[test]
    fn transmitter_cannot_receive() {
        // 0 - 1: both transmit concurrently; neither receives the other.
        let mut ch = Channel::new(line(2));
        let e0 = ch.begin_tx(t(0.0), Frame::beacon(NodeId(0)), d(0.05));
        let e1 = ch.begin_tx(t(0.01), Frame::beacon(NodeId(1)), d(0.01));
        let (_, d1) = ch.end_tx(e1, NodeId(1));
        // Node 0 is still transmitting at 1's end: not clean.
        assert!(!d1[0].clean);
        let (_, d0) = ch.end_tx(e0, NodeId(0));
        assert!(!d0[0].clean, "node 1 transmitted during our frame");
    }

    #[test]
    fn sequential_transmissions_are_clean() {
        let mut ch = Channel::new(line(3));
        let e0 = ch.begin_tx(t(0.0), Frame::beacon(NodeId(0)), d(0.01));
        let (_, d0) = ch.end_tx(e0, NodeId(0));
        assert!(d0.iter().all(|x| x.clean));
        let e2 = ch.begin_tx(t(1.0), Frame::beacon(NodeId(2)), d(0.01));
        let (_, d2) = ch.end_tx(e2, NodeId(2));
        assert!(d2.iter().all(|x| x.clean));
    }

    #[test]
    fn distant_transmitters_do_not_interfere() {
        // 0-1-2-3-4: 0 and 4 transmit; 1 hears only 0, 3 hears only 4.
        let mut ch = Channel::new(line(5));
        let e0 = ch.begin_tx(t(0.0), Frame::beacon(NodeId(0)), d(0.02));
        let e4 = ch.begin_tx(t(0.0), Frame::beacon(NodeId(4)), d(0.02));
        let (_, d0) = ch.end_tx(e0, NodeId(0));
        assert!(d0.iter().find(|x| x.receiver == NodeId(1)).unwrap().clean);
        let (_, d4) = ch.end_tx(e4, NodeId(4));
        assert!(d4.iter().find(|x| x.receiver == NodeId(3)).unwrap().clean);
    }

    #[test]
    fn carrier_sense_scope() {
        let mut ch = Channel::new(line(4));
        ch.begin_tx(t(0.0), Frame::beacon(NodeId(0)), d(0.1));
        assert!(ch.carrier_busy(NodeId(0)), "own transmission");
        assert!(ch.carrier_busy(NodeId(1)), "neighbor");
        assert!(!ch.carrier_busy(NodeId(2)), "two hops away");
        assert!(!ch.carrier_busy(NodeId(3)));
    }

    #[test]
    fn carrier_clears_after_end() {
        let mut ch = Channel::new(line(3));
        let end = ch.begin_tx(t(0.0), Frame::beacon(NodeId(1)), d(0.01));
        let _ = ch.end_tx(end, NodeId(1));
        for n in 0..3 {
            assert!(!ch.carrier_busy(NodeId(n)), "n{n} idle again");
            assert!(!ch.is_transmitting(NodeId(n)));
        }
    }

    #[test]
    fn slots_and_mark_buffers_recycle() {
        // Repeated churn must not grow the slot table beyond the peak
        // concurrency (steady state allocates nothing).
        let mut ch = Channel::new(line(5));
        for round in 0..10 {
            let base = t(f64::from(round));
            let e0 = ch.begin_tx(base, Frame::beacon(NodeId(0)), d(0.01));
            let e4 = ch.begin_tx(base, Frame::beacon(NodeId(4)), d(0.01));
            let _ = ch.end_tx(e0, NodeId(0));
            let _ = ch.end_tx(e4, NodeId(4));
        }
        assert!(ch.slots.len() <= 2, "slot table stays at peak concurrency");
        assert!(ch.spare_marks.len() <= 2, "mark buffers recycle");
        assert_eq!(ch.active_count(), 0);
    }

    #[test]
    fn back_to_back_retransmission_is_clean() {
        // Self-overlap edge case: a node ends one transmission and begins
        // the next at the same instant; the second must deliver clean.
        let mut ch = Channel::new(line(3));
        let e = ch.begin_tx(t(0.0), Frame::beacon(NodeId(1)), d(0.01));
        let _ = ch.end_tx(e, NodeId(1));
        let e2 = ch.begin_tx(e, Frame::beacon(NodeId(1)), d(0.01));
        let (_, dl) = ch.end_tx(e2, NodeId(1));
        assert!(dl.iter().all(|x| x.clean));
    }

    #[test]
    #[should_panic(expected = "already transmitting")]
    fn double_tx_panics() {
        let mut ch = Channel::new(line(2));
        ch.begin_tx(t(0.0), Frame::beacon(NodeId(0)), d(0.1));
        ch.begin_tx(t(0.01), Frame::beacon(NodeId(0)), d(0.1));
    }

    #[test]
    #[should_panic(expected = "no transmission in flight")]
    fn end_without_begin_panics() {
        let mut ch = Channel::new(line(2));
        let _ = ch.end_tx(t(0.0), NodeId(0));
    }
}
