//! Frame formats and airtime.

use pbbf_des::SimDuration;
use pbbf_topology::NodeId;
use serde::{Deserialize, Serialize};

/// Physical-layer constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phy {
    /// Radio bit rate in bits per second (19 200 for Mica2, Section 5).
    pub bitrate_bps: u32,
    /// Bytes of a broadcast ATIM frame (header-only management frame).
    pub atim_bytes: u32,
    /// Bytes of a beacon frame.
    pub beacon_bytes: u32,
    /// Total bytes of a data packet (Table 2: 64, of which 30 payload).
    pub data_bytes: u32,
}

impl Phy {
    /// The paper's configuration: 19.2 kbps, 64-byte data packets, small
    /// management frames.
    #[must_use]
    pub fn mica2() -> Self {
        Self {
            bitrate_bps: 19_200,
            atim_bytes: 20,
            beacon_bytes: 16,
            data_bytes: 64,
        }
    }

    /// Airtime of `bytes` at the configured bit rate.
    ///
    /// # Panics
    ///
    /// Panics if the bit rate is zero.
    #[must_use]
    pub fn airtime(&self, bytes: u32) -> SimDuration {
        assert!(self.bitrate_bps > 0, "zero bit rate");
        let secs = f64::from(bytes) * 8.0 / f64::from(self.bitrate_bps);
        SimDuration::from_secs(secs)
    }

    /// Airtime of a frame of the given kind.
    #[must_use]
    pub fn frame_airtime(&self, kind: &FrameKind) -> SimDuration {
        self.airtime(self.frame_bytes(kind))
    }

    /// Size in bytes of a frame of the given kind.
    #[must_use]
    pub fn frame_bytes(&self, kind: &FrameKind) -> u32 {
        match kind {
            FrameKind::Beacon => self.beacon_bytes,
            FrameKind::Atim { .. } => self.atim_bytes,
            FrameKind::Data { .. } => self.data_bytes,
        }
    }
}

impl Default for Phy {
    fn default() -> Self {
        Self::mica2()
    }
}

/// What a frame is, with its protocol-level content.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrameKind {
    /// A synchronization beacon (modelled for byte overhead only; the
    /// simulators assume perfect synchronization as the paper does).
    Beacon,
    /// A broadcast ATIM announcing pending broadcast data for this beacon
    /// interval.
    Atim {
        /// The update ids the sender will transmit after the window.
        announced: Vec<u64>,
    },
    /// A broadcast data packet carrying the `k` most recent updates known
    /// to the sender (Table 2: `k = 1`).
    Data {
        /// The update ids carried.
        updates: Vec<u64>,
        /// Whether this was a PBBF immediate (unannounced) transmission —
        /// carried for statistics only, not protocol behavior.
        immediate: bool,
    },
}

/// One over-the-air frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// Transmitting node.
    pub src: NodeId,
    /// Content.
    pub kind: FrameKind,
}

impl Frame {
    /// Creates a data frame.
    #[must_use]
    pub fn data(src: NodeId, updates: Vec<u64>, immediate: bool) -> Self {
        Self {
            src,
            kind: FrameKind::Data { updates, immediate },
        }
    }

    /// Creates a broadcast ATIM.
    #[must_use]
    pub fn atim(src: NodeId, announced: Vec<u64>) -> Self {
        Self {
            src,
            kind: FrameKind::Atim { announced },
        }
    }

    /// Creates a beacon.
    #[must_use]
    pub fn beacon(src: NodeId) -> Self {
        Self {
            src,
            kind: FrameKind::Beacon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_airtime() {
        let phy = Phy::mica2();
        // 64 bytes at 19.2 kbps = 26.666... ms.
        let t = phy.airtime(64).as_secs();
        assert!((t - 0.026_666_666).abs() < 1e-6);
    }

    #[test]
    fn frame_airtimes_ordered_by_size() {
        let phy = Phy::mica2();
        let beacon = phy.frame_airtime(&FrameKind::Beacon);
        let atim = phy.frame_airtime(&FrameKind::Atim { announced: vec![1] });
        let data = phy.frame_airtime(&FrameKind::Data {
            updates: vec![1],
            immediate: false,
        });
        assert!(beacon < atim);
        assert!(atim < data);
    }

    #[test]
    fn constructors_fill_kind() {
        let d = Frame::data(NodeId(3), vec![9], true);
        assert_eq!(d.src, NodeId(3));
        assert!(
            matches!(d.kind, FrameKind::Data { ref updates, immediate: true } if updates == &[9])
        );
        let a = Frame::atim(NodeId(1), vec![2, 3]);
        assert!(matches!(a.kind, FrameKind::Atim { ref announced } if announced.len() == 2));
        assert!(matches!(Frame::beacon(NodeId(0)).kind, FrameKind::Beacon));
    }

    #[test]
    fn airtime_zero_bytes_is_zero() {
        let phy = Phy::mica2();
        assert!(phy.airtime(0).is_zero());
    }
}
