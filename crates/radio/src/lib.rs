//! PHY substrate for the realistic (Section-5) PBBF simulator.
//!
//! The paper evaluates PBBF in ns-2 with an 802.11 MAC over a low-rate
//! sensor radio (Mica2 Motes: 19.2 kbps, 81/30/0.003 mW for TX/idle/sleep).
//! This crate provides the physical-layer pieces that simulator needs:
//!
//! * [`Frame`], [`FrameKind`] — the over-the-air frame types (beacons,
//!   broadcast ATIMs, data packets) with byte sizes and airtime at a
//!   configurable bit rate ([`Phy`]).
//! * [`EnergyMeter`] — per-node radio-state energy accounting over the
//!   Table-1 [`PowerProfile`](pbbf_core::PowerProfile).
//! * [`Channel`] — the shared broadcast medium: unit-disk connectivity from
//!   a [`Topology`](pbbf_topology::Topology), carrier sensing, and
//!   collision/interference resolution (overlapping transmissions corrupt
//!   each other at common receivers; a transmitting radio cannot receive).
//!   An incremental engine (per-node carrier counters and
//!   generation-stamped corruption marks over the CSR adjacency); the
//!   original O(active × degree) implementation survives as
//!   [`BruteChannel`] for property tests and benches, behind the shared
//!   [`CollisionChannel`] trait.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod energy;
mod frame;

pub use channel::brute::BruteChannel;
pub use channel::laned::LanedChannel;
pub use channel::{Channel, CollisionChannel, Delivery};
pub use energy::{EnergyMeter, RadioState};
pub use frame::{Frame, FrameKind, Phy};
