//! Tables 1 and 2: the parameter listings.

use pbbf_core::AnalysisParams;
use pbbf_metrics::Table;
use pbbf_net_sim::NetConfig;

/// Table 1: analysis parameter values.
#[must_use]
pub fn table1() -> Table {
    let a = AnalysisParams::table1();
    let mut t = Table::new(["Parameter", "Value"]);
    t.row([
        "N".to_string(),
        format!("{} ({}x{})", a.node_count(), a.grid_side, a.grid_side),
    ]);
    t.row(["P_TX".to_string(), format!("{} mW", a.power.tx * 1e3)]);
    t.row(["P_I".to_string(), format!("{} mW", a.power.idle * 1e3)]);
    t.row(["P_S".to_string(), format!("{} uW", a.power.sleep * 1e6)]);
    t.row(["lambda".to_string(), format!("{} packets/s", a.lambda)]);
    t.row(["L1".to_string(), format!("~{} s", a.l1)]);
    t.row(["T_frame".to_string(), format!("{} s", a.schedule.t_frame())]);
    t.row([
        "T_active".to_string(),
        format!("{} s", a.schedule.t_active()),
    ]);
    t
}

/// Table 2: code-distribution parameter values.
#[must_use]
pub fn table2() -> Table {
    let c = NetConfig::table2();
    let mut t = Table::new(["Parameter", "Value"]);
    t.row(["N".to_string(), format!("{}", c.nodes)]);
    t.row(["q".to_string(), "0.25".to_string()]);
    t.row(["Delta".to_string(), format!("{}", c.delta)]);
    t.row([
        "Total Packet Size".to_string(),
        format!("{} bytes", c.phy.data_bytes),
    ]);
    t.row(["Data Packet Payload".to_string(), "30 bytes".to_string()]);
    t.row(["k".to_string(), format!("{}", c.k)]);
    t.row([
        "Bit rate".to_string(),
        format!("{} kbps", f64::from(c.phy.bitrate_bps) / 1000.0),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_match_paper() {
        let t = table1();
        assert_eq!(t.len(), 8);
        let text = t.render();
        assert!(text.contains("5625 (75x75)"));
        assert!(text.contains("81 mW"));
        assert!(text.contains("30 mW"));
        assert!(text.contains("3 uW"));
        assert!(text.contains("0.01 packets/s"));
        assert!(text.contains("10 s"));
    }

    #[test]
    fn table2_rows_match_paper() {
        let t = table2();
        let text = t.render();
        assert!(text.contains("50"));
        assert!(text.contains("0.25"));
        assert!(text.contains("64 bytes"));
        assert!(text.contains("30 bytes"));
        assert!(text.contains("19.2 kbps"));
    }
}
