//! Effort presets: paper-scale vs quick.

use serde::{Deserialize, Serialize};

/// How much work each experiment spends.
///
/// [`Effort::paper`] matches the paper's methodology (75×75 grids, 500 s
/// ns-2-style runs, ten runs per point); [`Effort::quick`] shrinks every
/// dimension so the full suite regenerates in seconds — the *shapes* of
/// all figures survive the shrink, which is what the test suite asserts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Effort {
    /// Independent runs averaged per data point (paper: 10).
    pub runs: u32,
    /// Grid side for the idealized simulations (paper: 75).
    pub ideal_grid_side: u32,
    /// Updates disseminated per idealized run (paper: 5 in 500 s).
    pub ideal_updates: u32,
    /// Newman–Ziff sweeps per percolation estimate.
    pub nz_runs: u32,
    /// Realistic-simulation duration in seconds (paper: 500).
    pub net_duration_secs: f64,
    /// Number of q values on the x-axis (0..=1 inclusive).
    pub q_points: u32,
    /// Shortest distance probed by the "near" hop-count figure
    /// (paper Fig. 9: 20).
    pub hop_probe_near: u32,
    /// Shortest distance probed by the "far" hop-count figure
    /// (paper Fig. 10: 60).
    pub hop_probe_far: u32,
}

impl Effort {
    /// The paper's methodology.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            runs: 10,
            ideal_grid_side: 75,
            ideal_updates: 5,
            nz_runs: 200,
            net_duration_secs: 500.0,
            q_points: 11,
            hop_probe_near: 20,
            hop_probe_far: 60,
        }
    }

    /// A seconds-scale preset preserving every figure's shape.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            runs: 3,
            ideal_grid_side: 25,
            ideal_updates: 3,
            nz_runs: 40,
            net_duration_secs: 200.0,
            q_points: 6,
            hop_probe_near: 8,
            hop_probe_far: 16,
        }
    }

    /// The q values an x-axis sweep visits: `q_points` evenly spaced
    /// values over `[0, 1]`.
    #[must_use]
    pub fn q_values(&self) -> Vec<f64> {
        assert!(self.q_points >= 2, "need at least q = 0 and q = 1");
        (0..self.q_points)
            .map(|i| f64::from(i) / f64::from(self.q_points - 1))
            .collect()
    }
}

impl Default for Effort {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matches_methodology() {
        let e = Effort::paper();
        assert_eq!(e.runs, 10);
        assert_eq!(e.ideal_grid_side, 75);
        assert_eq!(e.net_duration_secs, 500.0);
        assert_eq!(e.hop_probe_near, 20);
        assert_eq!(e.hop_probe_far, 60);
    }

    #[test]
    fn q_values_span_unit_interval() {
        let e = Effort::quick();
        let qs = e.q_values();
        assert_eq!(qs.len(), 6);
        assert_eq!(qs[0], 0.0);
        assert_eq!(*qs.last().unwrap(), 1.0);
        for w in qs.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn quick_is_smaller_everywhere() {
        let p = Effort::paper();
        let q = Effort::quick();
        assert!(q.runs < p.runs);
        assert!(q.ideal_grid_side < p.ideal_grid_side);
        assert!(q.nz_runs < p.nz_runs);
        assert!(q.net_duration_secs < p.net_duration_secs);
    }
}
