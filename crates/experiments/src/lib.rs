//! Drivers that regenerate every table and figure of the paper.
//!
//! Each `tableN`/`figNN` function reproduces the corresponding exhibit of
//! *"Exploring the Energy-Latency Trade-off for Broadcasts in Energy-Saving
//! Sensor Networks"* (ICDCS 2005) and returns it as a typed
//! [`Table`](pbbf_metrics::Table) or [`Figure`](pbbf_metrics::Figure) with
//! the same axes, legends and rows the paper plots.
//!
//! Every figure function takes an [`Effort`] (paper-scale or a scaled-down
//! `quick` preset for benches/CI) and a seed; results are deterministic
//! per `(effort, seed)`. The [`Experiment`] enum enumerates all exhibits
//! for harnesses that want to run everything.
//!
//! # Examples
//!
//! ```
//! use pbbf_experiments::{fig07, Effort};
//!
//! let fig = fig07(&Effort::quick(), 1);
//! assert_eq!(fig.series.len(), 4); // 80/90/99/100% reliability curves
//! println!("{}", fig.render_text());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod effort;
mod extensions;
mod ideal_figs;
mod net_figs;
mod percolation_figs;
mod registry;
pub mod sweep;
mod tables;
mod tradeoff_fig;

pub use effort::Effort;
pub use extensions::{
    ext_adaptive_convergence, ext_gossip_vs_pbbf, ext_k_tradeoff, ext_latency_tail,
};
pub use ideal_figs::{fig04, fig05, fig08, fig09, fig10, fig11};
pub use net_figs::{fig13, fig14, fig15, fig16, fig17, fig18};
pub use percolation_figs::{fig06, fig07};
pub use registry::{Experiment, Output};
pub use tables::{table1, table2};
pub use tradeoff_fig::fig12;
