//! Extension experiments beyond the paper's figures.
//!
//! Three studies the paper motivates but does not plot:
//!
//! * [`ext_gossip_vs_pbbf`] — Section 2 contrasts gossip (site
//!   percolation, [5]) with PBBF (bond percolation); this exhibit plots
//!   both reliability curves on one axis.
//! * [`ext_adaptive_convergence`] — Section 6 sketches dynamic `p`/`q`
//!   adjustment; this exhibit traces the adaptive controller's mean
//!   parameters over time in the realistic simulator.
//! * [`ext_latency_tail`] — the figures plot mean latencies; deployments
//!   care about tails. This exhibit reports p50/p90/p99 delivery latency
//!   vs `q`.

use pbbf_core::adaptive::AdaptiveConfig;
use pbbf_core::PbbfParams;
use pbbf_des::SimRng;
use pbbf_ideal_sim::{IdealConfig, IdealSim, Mode};
use pbbf_metrics::{Figure, Histogram, Series};
use pbbf_net_sim::{DeploymentCache, NetConfig, NetMode, NetSim};
use pbbf_percolation::NewmanZiff;
use pbbf_topology::Grid;

use crate::Effort;

fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Gossip (site percolation) vs PBBF (bond percolation) reliability on one
/// grid: delivered fraction vs the forwarding knob (`g` for gossip, `q`
/// at fixed `p = 0.75` for PBBF), plus the Newman–Ziff site-sweep
/// prediction for gossip.
#[must_use]
pub fn ext_gossip_vs_pbbf(effort: &Effort, seed: u64) -> Figure {
    let mut cfg = IdealConfig::table1();
    cfg.grid_side = effort.ideal_grid_side;
    cfg.updates = effort.ideal_updates;
    let xs = effort.q_values();

    let mut gossip = Series::new("Gossip (simulated)");
    let mut pbbf = Series::new("PBBF-0.75 (simulated)");
    // Point-level fan-out: every (x value, run) pair of both simulators
    // schedules as one flat job list. Per-job streams depend only on
    // (seed, x index, run index) and per-point sums fold in run order, so
    // the figure is bitwise identical for any thread count.
    let fractions = pbbf_parallel::par_run_grouped(xs.len(), effort.runs as usize, |xi, r| {
        let x = xs[xi];
        let s = mix(seed, (xi as u64) << 32 | r as u64);
        let g = IdealSim::new(
            cfg,
            Mode::Gossip {
                forward_probability: x,
            },
        )
        .run(s)
        .mean_delivered_fraction();
        let params = PbbfParams::new(0.75, x).expect("valid");
        let p = IdealSim::new(cfg, Mode::SleepScheduled(params))
            .run(s)
            .mean_delivered_fraction();
        (g, p)
    });
    for (&x, point) in xs.iter().zip(&fractions) {
        let (mut g_frac, mut p_frac) = (0.0, 0.0);
        for &(g, p) in point {
            g_frac += g;
            p_frac += p;
        }
        gossip.push(x, g_frac / f64::from(effort.runs));
        pbbf.push(x, p_frac / f64::from(effort.runs));
    }

    // Newman–Ziff site-percolation prediction: mean source-cluster
    // fraction when a fraction x of the other sites forward. Each sweep
    // draws an independent substream so the fan-out stays deterministic.
    let grid = Grid::square(effort.ideal_grid_side);
    let nz = NewmanZiff::new(grid.topology(), grid.center());
    let base = SimRng::new(mix(seed, 0xFACE));
    let sweeps: Vec<Vec<f64>> = pbbf_parallel::par_run(effort.nz_runs.max(1) as usize, |i| {
        let mut rng = base.substream(i as u64);
        nz.site_sweep(&mut rng)
    });
    let mut predicted = Series::new("Gossip (site percolation)");
    let n = grid.topology().len();
    for &x in &xs {
        let k = ((x * (n - 1) as f64).round() as usize).min(n - 1);
        let mean: f64 = sweeps.iter().map(|s| s[k]).sum::<f64>() / sweeps.len() as f64;
        predicted.push(x, mean);
    }

    Figure::new(
        "Extension A: gossip (site percolation) vs PBBF (bond percolation)",
        "forwarding knob (g for gossip, q at p = 0.75 for PBBF)",
        "Delivered fraction",
        vec![gossip, predicted, pbbf],
    )
}

/// The adaptive controller's trajectory: mean `p` and `q` across nodes at
/// every beacon interval, averaged over runs, plus the resulting delivery
/// ratio in the legend-free final row.
#[must_use]
pub fn ext_adaptive_convergence(effort: &Effort, seed: u64) -> Figure {
    let mut cfg = NetConfig::table2();
    cfg.duration_secs = effort.net_duration_secs;
    let initial = PbbfParams::new(0.1, 0.3).expect("valid");
    let mode = NetMode::Adaptive(AdaptiveConfig::default_for(initial));
    let sim = NetSim::new(cfg, mode);

    // Runs fan out; traces are folded sequentially in run order below, so
    // the accumulated means match the sequential loop exactly.
    let traces = pbbf_parallel::par_run(effort.runs as usize, |r| {
        sim.run(mix(seed, r as u64)).adaptive_trace
    });
    let mut p_acc: Vec<f64> = Vec::new();
    let mut q_acc: Vec<f64> = Vec::new();
    let mut runs_done = 0u32;
    for trace in traces {
        if p_acc.is_empty() {
            p_acc = vec![0.0; trace.len()];
            q_acc = vec![0.0; trace.len()];
        }
        for (i, &(p, q)) in trace.iter().enumerate() {
            if i < p_acc.len() {
                p_acc[i] += p;
                q_acc[i] += q;
            }
        }
        runs_done += 1;
    }
    let mut p_series = Series::new("mean p");
    let mut q_series = Series::new("mean q");
    for (i, (p, q)) in p_acc.iter().zip(&q_acc).enumerate() {
        let t = i as f64 * cfg.beacon_interval_secs;
        p_series.push(t, p / f64::from(runs_done));
        q_series.push(t, q / f64::from(runs_done));
    }
    Figure::new(
        "Extension B: adaptive PBBF parameter convergence (Section 6 heuristics)",
        "time (s)",
        "mean parameter value across nodes",
        vec![p_series, q_series],
    )
}

/// Delivery-latency tail percentiles vs `q` for PBBF-0.5 in the realistic
/// simulator.
#[must_use]
pub fn ext_latency_tail(effort: &Effort, seed: u64) -> Figure {
    let mut cfg = NetConfig::table2();
    cfg.duration_secs = effort.net_duration_secs;
    let qs = effort.q_values();
    let mut p50 = Series::new("p50");
    let mut p90 = Series::new("p90");
    let mut p99 = Series::new("p99");
    // (q, replica-chunk) fan-out: chunk boundaries are deterministic and
    // per-q histograms fold in run order, so percentiles are
    // thread-count invariant. Each run's deployment resolves through the
    // process-wide registry inside the chunk job and is shared across
    // the q points (the q sweep compares operating points on identical
    // scenarios) — and with the fig13–16 sweeps, which use the same
    // geometry and deployment-seed stream.
    let deploy_seed = mix(seed, crate::net_figs::DEPLOY_SALT);
    let all_stats = pbbf_parallel::par_run_grouped_chunked(
        qs.len(),
        effort.runs as usize,
        crate::net_figs::REPLICA_CHUNK,
        |qi, rs| {
            let mode = NetMode::SleepScheduled(PbbfParams::new(0.5, qs[qi]).expect("valid"));
            let sim = NetSim::new(cfg, mode);
            rs.map(|r| {
                let deployment =
                    DeploymentCache::global().get_or_draw(&cfg, mix(deploy_seed, r as u64));
                sim.run_on(mix(seed, (qi as u64) << 32 | r as u64), &deployment)
            })
            .collect()
        },
    );
    for (&q, point_stats) in qs.iter().zip(&all_stats) {
        let mut hist = Histogram::new(0.0, 120.0, 240);
        for s in point_stats {
            for (u, gen) in s.gen_times.iter().enumerate() {
                for (node, t) in s.receptions[u].iter().enumerate() {
                    if node == s.source.index() {
                        continue;
                    }
                    if let Some(t) = t {
                        hist.record(t.duration_since(*gen).as_secs());
                    }
                }
            }
        }
        if hist.count() > 0 {
            p50.push(q, hist.quantile(0.5));
            p90.push(q, hist.quantile(0.9));
            p99.push(q, hist.quantile(0.99));
        }
    }
    Figure::new(
        "Extension C: delivery-latency tail vs q (PBBF-0.5, realistic sim)",
        "q",
        "delivery latency (s)",
        vec![p50, p90, p99],
    )
}

/// The `k` trade-off the paper describes but omits "for space
/// considerations" (Section 5.1): each packet carries the `k` most recent
/// updates, so a node only needs ~1/k of the packets — delivery ratio
/// rises with `k` at the cost of per-packet byte overhead.
///
/// Plotted: delivery ratio vs `k` for PBBF-0.5 at a lossy operating point
/// (`q = 0.25`), where redundancy across packets matters most.
#[must_use]
pub fn ext_k_tradeoff(effort: &Effort, seed: u64) -> Figure {
    let ks = [1usize, 2, 4, 8];
    let mut ratio = Series::new("delivery ratio");
    let mut payload = Series::new("update payloads per packet");
    // (k, replica-chunk) fan-out: chunk boundaries are deterministic and
    // per-k sums fold in run order (thread-count invariant). `k` does
    // not enter the deployment geometry, so run r's scenario resolves —
    // through the process-wide registry, inside the chunk job — to the
    // same entry across the whole k sweep and across the other
    // Table-2-geometry sweeps of the process.
    let deploy_seed = mix(seed, crate::net_figs::DEPLOY_SALT);
    let ratios = pbbf_parallel::par_run_grouped_chunked(
        ks.len(),
        effort.runs as usize,
        crate::net_figs::REPLICA_CHUNK,
        |ki, rs| {
            let mut cfg = NetConfig::table2();
            cfg.duration_secs = effort.net_duration_secs;
            cfg.k = ks[ki];
            let mode = NetMode::SleepScheduled(PbbfParams::new(0.5, 0.25).expect("valid"));
            let sim = NetSim::new(cfg, mode);
            rs.map(|r| {
                let deployment =
                    DeploymentCache::global().get_or_draw(&cfg, mix(deploy_seed, r as u64));
                sim.run_on(mix(seed, (ki as u64) << 32 | r as u64), &deployment)
                    .mean_delivery_ratio()
            })
            .collect()
        },
    );
    for (&k, point_ratios) in ks.iter().zip(&ratios) {
        let acc: f64 = point_ratios.iter().sum();
        ratio.push(k as f64, acc / f64::from(effort.runs));
        payload.push(k as f64, k as f64);
    }
    Figure::new(
        "Extension D: the k most-recent-updates trade-off (Section 5.1)",
        "k (updates per packet)",
        "updates received / total updates sent at source",
        vec![ratio, payload],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn effort() -> Effort {
        let mut e = Effort::quick();
        e.runs = 2;
        e.ideal_grid_side = 15;
        e.ideal_updates = 2;
        e.nz_runs = 15;
        e.net_duration_secs = 200.0;
        e.q_points = 4;
        e
    }

    #[test]
    fn gossip_vs_pbbf_shapes() {
        let f = ext_gossip_vs_pbbf(&effort(), 1);
        assert_eq!(f.series.len(), 3);
        let g = f.series_named("Gossip (simulated)").unwrap();
        // Bimodal: near zero at g = 0, near one at g = 1.
        assert!(g.points.first().unwrap().y < 0.2);
        assert!(g.points.last().unwrap().y > 0.9);
        // Prediction tracks simulation within coarse tolerance at the
        // endpoints.
        let pred = f.series_named("Gossip (site percolation)").unwrap();
        assert!((pred.points.last().unwrap().y - 1.0).abs() < 0.05);
        // PBBF at q = 1 is fully reliable too (p_edge = 1).
        let pbbf = f.series_named("PBBF-0.75 (simulated)").unwrap();
        assert!(pbbf.points.last().unwrap().y > 0.95);
    }

    #[test]
    fn adaptive_convergence_trace_exists() {
        let f = ext_adaptive_convergence(&effort(), 2);
        let p = f.series_named("mean p").unwrap();
        let q = f.series_named("mean q").unwrap();
        assert!(p.len() > 10, "one point per beacon interval");
        assert_eq!(p.len(), q.len());
        // Parameters stay in range.
        for pt in p.points.iter().chain(&q.points) {
            assert!((0.0..=1.0).contains(&pt.y));
        }
    }

    #[test]
    fn k_improves_delivery_under_losses() {
        let mut e = effort();
        e.net_duration_secs = 300.0;
        let f = ext_k_tradeoff(&e, 4);
        let r = f.series_named("delivery ratio").unwrap();
        assert_eq!(r.len(), 4);
        let k1 = r.y_at(1.0).unwrap();
        let k8 = r.y_at(8.0).unwrap();
        assert!(
            k8 >= k1 - 0.02,
            "larger k cannot hurt delivery: k=1 {k1} vs k=8 {k8}"
        );
    }

    #[test]
    fn latency_tail_ordering() {
        let f = ext_latency_tail(&effort(), 3);
        let p50 = f.series_named("p50").unwrap();
        let p99 = f.series_named("p99").unwrap();
        for (a, b) in p50.points.iter().zip(&p99.points) {
            assert!(b.y >= a.y, "p99 dominates p50");
        }
    }
}
