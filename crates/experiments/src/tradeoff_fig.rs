//! Figure 12 — the energy-latency trade-off frontier at 99% reliability.

use pbbf_core::analysis::tradeoff_frontier;
use pbbf_core::AnalysisParams;
use pbbf_des::SimRng;
use pbbf_metrics::{Figure, Series};
use pbbf_percolation::critical_bond_ratio_par;
use pbbf_topology::Grid;

use crate::Effort;

/// Figure 12: energy vs latency with 99% reliability.
///
/// For each `p`, the minimum reliable `q` comes from the percolation
/// threshold (the paper reads it off Figure 5); Eq. 9 gives the expected
/// link latency at `(p, q_min)` and Eq. 7/8 the energy. Tracing `p`
/// sweeps out the inverse energy–latency frontier.
///
/// The Newman–Ziff threshold sweeps fan out across threads with per-sweep
/// substreams (same caveat as fig06/fig07: the stream layout differs from
/// the old shared sequential RNG, so values for a fixed seed moved when
/// the fan-out landed; thread-count invariance is the guarantee).
#[must_use]
pub fn fig12(effort: &Effort, seed: u64) -> Figure {
    let params = AnalysisParams::table1();
    let grid = Grid::square(30);
    let base = SimRng::new(seed);
    let critical =
        critical_bond_ratio_par(grid.topology(), grid.center(), 0.99, effort.nz_runs, &base);

    // p below (1 - critical) needs no q and pins latency at its p-specific
    // value; the interesting frontier is p from just below the threshold
    // up to 1.
    let p_values: Vec<f64> = (1..=20).map(|i| f64::from(i) / 20.0).collect();
    let frontier = tradeoff_frontier(&params, critical, &p_values);

    let mut s = Series::new("99% reliability frontier");
    let mut pts: Vec<(f64, f64)> = frontier
        .iter()
        .map(|t| (t.link_latency, t.joules_per_update))
        .collect();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0));
    pts.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-9);
    for (lat, joules) in pts {
        s.push(lat, joules);
    }
    Figure::new(
        "Figure 12: Energy-latency trade-off for 99% reliability",
        "Average per-hop update latency (s)",
        "Joules consumed / total updates sent at source",
        vec![s],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_is_inverse_and_bounded() {
        let mut e = Effort::quick();
        e.nz_runs = 30;
        let f = fig12(&e, 1);
        let s = &f.series[0];
        assert!(s.len() >= 5, "frontier has several points");
        // Energy falls as latency rises: the inverse trade-off.
        assert!(s.is_non_increasing(1e-9));
        // Latencies live in [L1, L1 + L2]; energies in (PSM, NO-PSM].
        let params = AnalysisParams::table1();
        for pt in &s.points {
            assert!(pt.x >= params.l1 - 1e-9 && pt.x <= params.l1 + params.l2() + 1e-9);
            assert!(pt.y > 0.29 && pt.y <= 3.01, "joules {}", pt.y);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut e = Effort::quick();
        e.nz_runs = 20;
        assert_eq!(fig12(&e, 7), fig12(&e, 7));
    }
}
