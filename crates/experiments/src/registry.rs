//! The catalogue of every exhibit in the paper.

use pbbf_metrics::{Figure, Table};

use crate::Effort;

/// A regenerated exhibit: a parameter table or a data figure.
#[derive(Debug, Clone, PartialEq)]
pub enum Output {
    /// A parameter listing (Tables 1–2).
    Table(Table),
    /// A multi-series plot (Figures 4–18).
    Figure(Figure),
}

impl Output {
    /// Renders the exhibit as aligned plain text.
    #[must_use]
    pub fn render_text(&self) -> String {
        match self {
            Output::Table(t) => t.render(),
            Output::Figure(f) => f.render_text(),
        }
    }

    /// Renders the exhibit as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        match self {
            Output::Table(t) => t.to_csv(),
            Output::Figure(f) => f.to_csv(),
        }
    }
}

/// Every table and figure of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Experiment {
    Table1,
    Table2,
    Fig04,
    Fig05,
    Fig06,
    Fig07,
    Fig08,
    Fig09,
    Fig10,
    Fig11,
    Fig12,
    Fig13,
    Fig14,
    Fig15,
    Fig16,
    Fig17,
    Fig18,
}

impl Experiment {
    /// All exhibits in paper order.
    #[must_use]
    pub fn all() -> Vec<Experiment> {
        use Experiment::*;
        vec![
            Table1, Table2, Fig04, Fig05, Fig06, Fig07, Fig08, Fig09, Fig10, Fig11, Fig12, Fig13,
            Fig14, Fig15, Fig16, Fig17, Fig18,
        ]
    }

    /// The exhibit's identifier, e.g. `"fig09"`.
    #[must_use]
    pub fn id(&self) -> &'static str {
        match self {
            Experiment::Table1 => "table1",
            Experiment::Table2 => "table2",
            Experiment::Fig04 => "fig04",
            Experiment::Fig05 => "fig05",
            Experiment::Fig06 => "fig06",
            Experiment::Fig07 => "fig07",
            Experiment::Fig08 => "fig08",
            Experiment::Fig09 => "fig09",
            Experiment::Fig10 => "fig10",
            Experiment::Fig11 => "fig11",
            Experiment::Fig12 => "fig12",
            Experiment::Fig13 => "fig13",
            Experiment::Fig14 => "fig14",
            Experiment::Fig15 => "fig15",
            Experiment::Fig16 => "fig16",
            Experiment::Fig17 => "fig17",
            Experiment::Fig18 => "fig18",
        }
    }

    /// Looks an exhibit up by its [`Experiment::id`].
    #[must_use]
    pub fn from_id(id: &str) -> Option<Experiment> {
        Experiment::all().into_iter().find(|e| e.id() == id)
    }

    /// Regenerates the exhibit.
    #[must_use]
    pub fn run(&self, effort: &Effort, seed: u64) -> Output {
        match self {
            Experiment::Table1 => Output::Table(crate::table1()),
            Experiment::Table2 => Output::Table(crate::table2()),
            Experiment::Fig04 => Output::Figure(crate::fig04(effort, seed)),
            Experiment::Fig05 => Output::Figure(crate::fig05(effort, seed)),
            Experiment::Fig06 => Output::Figure(crate::fig06(effort, seed)),
            Experiment::Fig07 => Output::Figure(crate::fig07(effort, seed)),
            Experiment::Fig08 => Output::Figure(crate::fig08(effort, seed)),
            Experiment::Fig09 => Output::Figure(crate::fig09(effort, seed)),
            Experiment::Fig10 => Output::Figure(crate::fig10(effort, seed)),
            Experiment::Fig11 => Output::Figure(crate::fig11(effort, seed)),
            Experiment::Fig12 => Output::Figure(crate::fig12(effort, seed)),
            Experiment::Fig13 => Output::Figure(crate::fig13(effort, seed)),
            Experiment::Fig14 => Output::Figure(crate::fig14(effort, seed)),
            Experiment::Fig15 => Output::Figure(crate::fig15(effort, seed)),
            Experiment::Fig16 => Output::Figure(crate::fig16(effort, seed)),
            Experiment::Fig17 => Output::Figure(crate::fig17(effort, seed)),
            Experiment::Fig18 => Output::Figure(crate::fig18(effort, seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_complete() {
        // 2 tables + 15 figures (Figs 1-3 are protocol diagrams, not data).
        assert_eq!(Experiment::all().len(), 17);
    }

    #[test]
    fn ids_round_trip() {
        for e in Experiment::all() {
            assert_eq!(Experiment::from_id(e.id()), Some(e));
        }
        assert_eq!(Experiment::from_id("fig99"), None);
    }

    #[test]
    fn tables_run_instantly() {
        let e = Effort::quick();
        let t1 = Experiment::Table1.run(&e, 0);
        assert!(t1.render_text().contains("P_TX"));
        assert!(t1.to_csv().contains("Parameter"));
        let t2 = Experiment::Table2.run(&e, 0);
        assert!(t2.render_text().contains("Delta"));
    }
}
