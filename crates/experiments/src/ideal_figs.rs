//! Figures 4, 5, 8, 9, 10, 11 — the Section-4 idealized-simulation sweeps.

use pbbf_core::PbbfParams;
use pbbf_ideal_sim::{IdealConfig, IdealSim, Mode, RunStats};
use pbbf_metrics::{ConfidenceInterval, Figure, Series, Summary};

use crate::Effort;

/// The `p` values of the paper's idealized-simulation legends.
pub(crate) const IDEAL_P_VALUES: [f64; 5] = [0.05, 0.25, 0.375, 0.5, 0.75];

fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn ideal_config(effort: &Effort) -> IdealConfig {
    let mut cfg = IdealConfig::table1();
    cfg.grid_side = effort.ideal_grid_side;
    cfg.updates = effort.ideal_updates;
    cfg
}

fn runs(mode: Mode, effort: &Effort, seed: u64) -> Vec<RunStats> {
    let sim = IdealSim::new(ideal_config(effort), mode);
    // Each run's stream depends only on (seed, run index); the fan-out
    // returns results in index order, matching the sequential loop.
    pbbf_parallel::par_run(effort.runs as usize, |r| sim.run(mix(seed, r as u64)))
}

/// Sweeps the metric over q for every PBBF line, plus flat PSM and NO-PSM
/// baselines (whose behavior does not depend on q).
fn sweep(effort: &Effort, seed: u64, metric: impl Fn(&RunStats) -> Option<f64>) -> Vec<Series> {
    let qs = effort.q_values();
    let mut series = Vec::new();

    for (pi, &p) in IDEAL_P_VALUES.iter().enumerate() {
        let mut s = Series::new(format!("PBBF-{p}"));
        for (qi, &q) in qs.iter().enumerate() {
            let params = PbbfParams::new(p, q).expect("sweep p, q valid");
            let point_seed = mix(seed, (pi as u64) << 32 | qi as u64);
            let vals: Summary = runs(Mode::SleepScheduled(params), effort, point_seed)
                .iter()
                .filter_map(&metric)
                .collect();
            if !vals.is_empty() {
                let ci = ConfidenceInterval::from_summary(&vals, 0.95);
                s.push_with_err(q, ci.mean, ci.half_width);
            }
        }
        series.push(s);
    }

    for (label, mode) in [
        ("PSM", Mode::SleepScheduled(PbbfParams::PSM)),
        ("NO PSM", Mode::AlwaysOn),
    ] {
        let vals: Summary = runs(mode, effort, mix(seed, label.len() as u64))
            .iter()
            .filter_map(&metric)
            .collect();
        let mut s = Series::new(label);
        if !vals.is_empty() {
            let ci = ConfidenceInterval::from_summary(&vals, 0.95);
            for &q in &qs {
                s.push_with_err(q, ci.mean, ci.half_width);
            }
        }
        series.push(s);
    }
    series
}

fn threshold_figure(effort: &Effort, seed: u64, reliability: f64, number: u32) -> Figure {
    let series = sweep(effort, seed, |r| {
        Some(r.fraction_of_updates_with_reliability(reliability))
    });
    Figure::new(
        format!(
            "Figure {number}: Threshold behavior for {:.0}% reliability",
            reliability * 100.0
        ),
        "q",
        format!(
            "Fraction of updates received by {:.0}% of nodes",
            reliability * 100.0
        ),
        series,
    )
}

/// Figure 4: fraction of updates received by ≥90% of nodes vs `q`.
#[must_use]
pub fn fig04(effort: &Effort, seed: u64) -> Figure {
    threshold_figure(effort, seed, 0.9, 4)
}

/// Figure 5: fraction of updates received by ≥99% of nodes vs `q`.
#[must_use]
pub fn fig05(effort: &Effort, seed: u64) -> Figure {
    threshold_figure(effort, seed, 0.99, 5)
}

/// Figure 8: average per-node energy per update (J) vs `q`.
#[must_use]
pub fn fig08(effort: &Effort, seed: u64) -> Figure {
    let series = sweep(effort, seed, |r| Some(r.mean_energy_per_update()));
    Figure::new(
        "Figure 8: Average energy consumption",
        "q",
        "Joules consumed / total updates sent at source",
        series,
    )
}

fn hops_figure(effort: &Effort, seed: u64, distance: u32, number: u32) -> Figure {
    let series = sweep(effort, seed, |r| r.mean_hops_at_distance(distance));
    Figure::new(
        format!("Figure {number}: Average hops traveled to reach a node {distance} hops from the source"),
        "q",
        format!("Average {distance}-hop flooding hop count"),
        series,
    )
}

/// Figure 9: hops traveled by delivered copies to "near" probe nodes
/// (shortest distance 20 at paper scale) vs `q`.
#[must_use]
pub fn fig09(effort: &Effort, seed: u64) -> Figure {
    hops_figure(effort, seed, effort.hop_probe_near, 9)
}

/// Figure 10: hops traveled to "far" probe nodes (shortest distance 60 at
/// paper scale) vs `q`.
#[must_use]
pub fn fig10(effort: &Effort, seed: u64) -> Figure {
    hops_figure(effort, seed, effort.hop_probe_far, 10)
}

/// Figure 11: average per-hop update latency (s) vs `q`.
#[must_use]
pub fn fig11(effort: &Effort, seed: u64) -> Figure {
    let series = sweep(effort, seed, RunStats::mean_per_hop_latency);
    Figure::new(
        "Figure 11: Average per-hop update latency",
        "q",
        "Average per-hop update latency (s)",
        series,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn effort() -> Effort {
        let mut e = Effort::quick();
        e.runs = 2;
        e.ideal_grid_side = 15;
        e.ideal_updates = 2;
        e.q_points = 3;
        e.hop_probe_near = 4;
        e.hop_probe_far = 8;
        e
    }

    #[test]
    fn fig04_has_paper_legends_and_threshold_shape() {
        let f = fig04(&effort(), 1);
        assert_eq!(f.series.len(), 7);
        assert!(f.series_named("PBBF-0.5").is_some());
        assert!(f.series_named("PSM").is_some());
        assert!(f.series_named("NO PSM").is_some());
        // PSM and NO PSM always deliver everything.
        for label in ["PSM", "NO PSM"] {
            let s = f.series_named(label).unwrap();
            assert!(s.points.iter().all(|pt| pt.y > 0.99), "{label}");
        }
        // High p at q=0 fails, at q=1 succeeds: the threshold shape.
        let s = f.series_named("PBBF-0.75").unwrap();
        assert!(s.y_at(0.0).unwrap() < 0.5);
        assert!(s.y_at(1.0).unwrap() > 0.99);
    }

    #[test]
    fn fig05_is_stricter_than_fig04() {
        let e = effort();
        let f4 = fig04(&e, 2);
        let f5 = fig05(&e, 2);
        for (a, b) in f4.series.iter().zip(&f5.series) {
            for (pa, pb) in a.points.iter().zip(&b.points) {
                assert!(pb.y <= pa.y + 1e-9, "{}: 99% cannot beat 90%", a.label);
            }
        }
    }

    #[test]
    fn fig08_energy_shape() {
        let f = fig08(&effort(), 3);
        // Energy rises with q for every PBBF line.
        for p in IDEAL_P_VALUES {
            let s = f.series_named(&format!("PBBF-{p}")).unwrap();
            assert!(s.is_non_decreasing(0.05), "PBBF-{p} energy not rising");
        }
        // PSM is the floor, NO PSM the ceiling.
        let psm = f.series_named("PSM").unwrap().y_at(0.0).unwrap();
        let nopsm = f.series_named("NO PSM").unwrap().y_at(0.0).unwrap();
        assert!(nopsm > psm * 5.0, "PSM {psm} vs NO PSM {nopsm}");
    }

    #[test]
    fn fig09_hops_decrease_toward_shortest_path() {
        let e = effort();
        let f = fig09(&e, 4);
        let d = f64::from(e.hop_probe_near);
        // PSM and NO PSM travel shortest paths exactly.
        for label in ["PSM", "NO PSM"] {
            let s = f.series_named(label).unwrap();
            assert!(s.points.iter().all(|pt| (pt.y - d).abs() < 1e-9), "{label}");
        }
        // PBBF at q=1 is close to shortest-path too (p_edge = 1).
        let s = f.series_named("PBBF-0.5").unwrap();
        let stretched = s.y_at(1.0).unwrap();
        assert!(stretched < d * 1.6, "hops {stretched} vs d {d}");
    }

    #[test]
    fn fig11_latency_ordering() {
        let f = fig11(&effort(), 5);
        let psm = f.series_named("PSM").unwrap().y_at(0.0).unwrap();
        let nopsm = f.series_named("NO PSM").unwrap().y_at(0.0).unwrap();
        assert!(nopsm < psm / 3.0, "flooding beats PSM per hop");
        // High p, q=1: far below PSM.
        let s = f.series_named("PBBF-0.75").unwrap();
        assert!(s.y_at(1.0).unwrap() < psm);
    }
}
