//! Figures 6 and 7 — the percolation analysis.

use pbbf_des::SimRng;
use pbbf_metrics::{Figure, Series};
use pbbf_percolation::{critical_bond_ratio_par, min_q_for_reliability};
use pbbf_topology::Grid;

use crate::Effort;

/// The reliability levels of the paper's percolation figures.
pub(crate) const RELIABILITY_LEVELS: [f64; 4] = [0.80, 0.90, 0.99, 1.00];

/// The grid sizes of Figure 6.
pub(crate) const FIG6_GRID_SIDES: [u32; 4] = [10, 20, 30, 40];

/// Figure 6: critical bond ratio `p_c^bond` for 10×10 … 40×40 grids at
/// 80/90/99/100% reliability, estimated by Newman–Ziff sweeps.
#[must_use]
pub fn fig06(effort: &Effort, seed: u64) -> Figure {
    let mut series: Vec<Series> = RELIABILITY_LEVELS
        .iter()
        .map(|r| Series::new(format!("{:.0}% Reliability", r * 100.0)))
        .collect();
    for &side in &FIG6_GRID_SIDES {
        let grid = Grid::square(side);
        for (si, &rel) in RELIABILITY_LEVELS.iter().enumerate() {
            // Newman–Ziff sweeps fan out across threads; each sweep draws
            // an independent substream of this per-cell base stream.
            let base = SimRng::new(seed).substream(u64::from(side) << 8 | si as u64);
            let c =
                critical_bond_ratio_par(grid.topology(), grid.center(), rel, effort.nz_runs, &base);
            series[si].push(f64::from(side), c);
        }
    }
    Figure::new(
        "Figure 6: Critical bond ratio for various grid sizes",
        "Grid side (NxN)",
        "Fraction of occupied bonds",
        series,
    )
}

/// Figure 7: the minimum `q` for each `p` achieving a reliability level on
/// a 30×30 grid (Remark 1 applied to the Figure-6 thresholds).
#[must_use]
pub fn fig07(effort: &Effort, seed: u64) -> Figure {
    let grid = Grid::square(30);
    let p_values: Vec<f64> = (0..=20).map(|i| f64::from(i) / 20.0).collect();
    let series = RELIABILITY_LEVELS
        .iter()
        .enumerate()
        .map(|(si, &rel)| {
            let base = SimRng::new(seed).substream(si as u64);
            let critical =
                critical_bond_ratio_par(grid.topology(), grid.center(), rel, effort.nz_runs, &base);
            let mut s = Series::new(format!("{:.0}% Reliability", rel * 100.0));
            for &p in &p_values {
                let q = min_q_for_reliability(p, critical).expect("critical <= 1");
                s.push(p, q);
            }
            s
        })
        .collect();
    Figure::new(
        "Figure 7: Relationship between p and q for a given reliability level in a 30x30 grid",
        "p",
        "q",
        series,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig06_thresholds_ordered_by_reliability() {
        let mut e = Effort::quick();
        e.nz_runs = 25;
        let f = fig06(&e, 1);
        assert_eq!(f.series.len(), 4);
        assert_eq!(f.x_values(), vec![10.0, 20.0, 30.0, 40.0]);
        for x in f.x_values() {
            let c80 = f.series_named("80% Reliability").unwrap().y_at(x).unwrap();
            let c99 = f.series_named("99% Reliability").unwrap().y_at(x).unwrap();
            let c100 = f.series_named("100% Reliability").unwrap().y_at(x).unwrap();
            assert!(c80 < c99 && c99 < c100, "ordering at grid {x}");
            assert!((0.4..1.0).contains(&c80), "c80 {c80} plausible");
        }
    }

    #[test]
    fn fig07_boundary_shape() {
        let mut e = Effort::quick();
        e.nz_runs = 25;
        let f = fig07(&e, 2);
        for s in &f.series {
            // q_min grows with p.
            assert!(s.is_non_decreasing(1e-9), "{}", s.label);
            // p = 0 never needs q.
            assert_eq!(s.y_at(0.0), Some(0.0));
        }
        // Stricter reliability needs at least as much q everywhere.
        let s80 = f.series_named("80% Reliability").unwrap();
        let s100 = f.series_named("100% Reliability").unwrap();
        for (a, b) in s80.points.iter().zip(&s100.points) {
            assert!(b.y >= a.y - 1e-9);
        }
    }
}
